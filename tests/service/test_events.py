"""The JSONL event log: schema envelope, tail, file round-trip."""

import json

import pytest

from repro.exceptions import ServiceError
from repro.service import EVENT_KINDS, EVENT_SCHEMA_VERSION, EventLog


class TestEmit:
    def test_envelope_fields_and_clock(self, fake_clock):
        log = EventLog(clock=fake_clock)
        record = log.emit("alarm", bin=7, spe=2.5)
        assert record["schema_version"] == EVENT_SCHEMA_VERSION
        assert record["kind"] == "alarm"
        assert record["time"] == 1000.0
        assert record["bin"] == 7 and record["spe"] == 2.5
        assert log.emit("alarm", bin=8)["time"] == 1001.0
        assert log.emitted == 2

    def test_unknown_kind_rejected(self):
        log = EventLog()
        with pytest.raises(ServiceError, match="unknown event kind"):
            log.emit("not_a_kind")
        assert log.emitted == 0

    def test_reserved_fields_rejected(self):
        log = EventLog()
        for reserved in ("schema_version", "kind", "time"):
            with pytest.raises(ServiceError, match="reserved"):
                log.emit("alarm", **{reserved: 1})

    def test_every_declared_kind_is_emittable(self):
        log = EventLog()
        for kind in EVENT_KINDS:
            log.emit(kind)
        assert [e["kind"] for e in log.tail()] == list(EVENT_KINDS)


class TestTail:
    def test_tail_is_bounded_and_ordered(self):
        log = EventLog(tail_size=3)
        for index in range(5):
            log.emit("alarm", bin=index)
        assert [e["bin"] for e in log.tail()] == [2, 3, 4]
        assert [e["bin"] for e in log.tail(2)] == [3, 4]
        assert log.emitted == 5

    def test_invalid_tail_size(self):
        with pytest.raises(ServiceError):
            EventLog(tail_size=0)


class TestFileSink:
    def test_round_trip_through_jsonl(self, tmp_path, fake_clock):
        path = tmp_path / "events" / "log.jsonl"
        with EventLog(path, clock=fake_clock) as log:
            log.emit("service_start", num_links=4)
            log.emit("alarm", bin=0, spe=1.0)
        records = list(EventLog.read_jsonl(path))
        assert [r["kind"] for r in records] == ["service_start", "alarm"]
        assert records == log.tail()

    def test_lines_are_canonical_json(self, tmp_path, fake_clock):
        path = tmp_path / "log.jsonl"
        log = EventLog(path, clock=fake_clock)
        log.emit("alarm", zebra=1, apple=2)
        log.close()
        line = path.read_text().strip()
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )
        keys = list(json.loads(line))
        assert keys == sorted(keys)

    def test_appends_across_instances(self, tmp_path):
        path = tmp_path / "log.jsonl"
        EventLog(path).emit("service_start")
        log = EventLog(path)
        log.emit("service_stop")
        log.close()
        kinds = [r["kind"] for r in EventLog.read_jsonl(path)]
        assert kinds == ["service_start", "service_stop"]

    def test_memory_only_log_has_no_path(self):
        log = EventLog()
        assert log.path is None
        log.emit("alarm")
        log.close()  # closing a memory log is a no-op
        assert log.tail()[0]["kind"] == "alarm"


class TestFailSoftWrites:
    """A sick disk costs log lines, never the scoring path."""

    def test_oserror_is_counted_and_swallowed(self, tmp_path, fake_clock):
        log = EventLog(tmp_path / "events.jsonl", clock=fake_clock)
        log.emit("alarm", bin=1)
        assert log.write_errors == 0

        # Simulate the disk dying under the open handle.
        class DeadHandle:
            def write(self, _):
                raise OSError(28, "No space left on device")

            def flush(self):
                raise OSError(28, "No space left on device")

            def close(self):
                pass

        log._handle = DeadHandle()
        record = log.emit("alarm", bin=2)  # must not raise
        assert record["bin"] == 2
        assert log.write_errors == 1
        log.emit("alarm", bin=3)
        assert log.write_errors == 2
        # The memory tail kept every event despite the failed writes.
        assert [e["bin"] for e in log.tail()] == [1, 2, 3]
        # Counters: every emit counted, only the first line persisted.
        assert log.emitted == 3
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        assert len(lines) == 1

    def test_memory_only_log_never_counts_write_errors(self):
        log = EventLog()
        for _ in range(5):
            log.emit("alarm", bin=0)
        assert log.write_errors == 0
