"""Detector comparison grid: vectorized baselines + end-to-end wall clock.

The detector layer's performance contract has two halves:

* **Vectorized hot paths** — the AR forecast collapses its per-column,
  per-timestep Python loops into whole-array multiply-adds, and the
  Holt-Winters recursion carries all columns through one batched state
  update instead of one recursion per column.  Both must be
  *bit-identical* to the per-column application (the contract suite
  asserts it; this bench re-checks before timing) and at least **5x**
  faster on a wide OD-flow-sized block.
* **The comparison grid** — a ``ComparisonRunner`` pass (detectors ×
  scenarios over a synthetic world) is timed end to end so the cost of
  the ``repro compare`` workload stays visible across PRs.

Artifacts: ``results/detector_comparison.txt`` (human-readable) and
``results/BENCH_detector_comparison.json`` (machine-readable: speedups,
wall-clock, grid size).

Run standalone:  PYTHONPATH=src python benchmarks/bench_detector_comparison.py
CI smoke:        PYTHONPATH=src python benchmarks/bench_detector_comparison.py --smoke
(the smoke run shrinks every dimension and only checks that the JSON
artifact is produced).
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.autoregressive import ARModel
from repro.baselines.holt_winters import HoltWintersModel

MIN_SPEEDUP = 5.0


def _bench_block(num_bins: int, num_series: int, seed: int = 31337) -> np.ndarray:
    """A positive, diurnal, noisy (t, k) block shaped like OD flows."""
    rng = np.random.default_rng(seed)
    base = 1e7 * (1.5 + np.sin(2.0 * np.pi * np.arange(num_bins) / 144.0))
    scale = rng.uniform(0.2, 2.0, size=num_series)
    noise = 1.0 + 0.08 * rng.standard_normal((num_bins, num_series))
    return np.abs(base[:, None] * scale * noise)


def _time(fn, repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_vectorization(
    num_bins: int = 1008, num_series: int = 121, repeats: int = 3
) -> dict[str, float]:
    """Vectorized vs per-column AR and Holt-Winters on one block."""
    block = _bench_block(num_bins, num_series)
    columns = range(num_series)

    ar = ARModel(order=4, differencing=1)
    hw = HoltWintersModel(season_bins=144)

    def ar_vectorized():
        return ar.predict(block)

    def ar_per_column():
        return np.column_stack([ar._predict_column(block[:, j]) for j in columns])

    def hw_batched():
        return hw.predict(block)

    def hw_per_column():
        return np.column_stack([hw.predict(block[:, j]) for j in columns])

    # Equal-work (and equal-answer) check before timing anything.
    if not np.array_equal(ar_vectorized(), ar_per_column()):
        raise AssertionError("vectorized AR diverged from the column loop")
    if not np.array_equal(hw_batched(), hw_per_column()):
        raise AssertionError("batched Holt-Winters diverged from the column loop")

    ar_loop_time = _time(ar_per_column, repeats)
    ar_vec_time = _time(ar_vectorized, repeats)
    hw_loop_time = _time(hw_per_column, repeats)
    hw_batch_time = _time(hw_batched, repeats)
    return {
        "num_bins": float(num_bins),
        "num_series": float(num_series),
        "ar_loop_seconds": ar_loop_time,
        "ar_vectorized_seconds": ar_vec_time,
        "ar_speedup": ar_loop_time / ar_vec_time,
        "hw_loop_seconds": hw_loop_time,
        "hw_batched_seconds": hw_batch_time,
        "hw_speedup": hw_loop_time / hw_batch_time,
    }


def measure_grid(
    num_bins: int = 432,
    detectors: tuple[str, ...] = ("subspace", "ewma", "fourier", "ar"),
    injection_sizes: tuple[float, ...] = (3.0e7, 1.5e7),
    num_injections: int = 16,
) -> dict:
    """One end-to-end ComparisonRunner pass over a synthetic world."""
    from repro.datasets.synthetic import dataset_from_config
    from repro.pipeline import ComparisonRunner
    from repro.traffic.workloads import workload_for

    config = workload_for("sprint-1").with_overrides(
        name="bench-compare",
        num_bins=num_bins,
        num_anomalies=16,
        traffic_seed=90310,
        anomaly_seed=90311,
    )
    dataset = dataset_from_config(config)
    report = ComparisonRunner(
        [dataset],
        detectors=detectors,
        injection_sizes=injection_sizes,
        num_injections=num_injections,
        workers=1,
    ).run()
    return {
        "num_bins": num_bins,
        "detectors": list(report.detectors),
        "scenarios": list(report.scenarios),
        "num_cells": len(report),
        "elapsed_seconds": report.elapsed_seconds,
        "cells_per_second": len(report) / report.elapsed_seconds,
        "mean_auc": {d: report.mean_auc(d) for d in report.detectors},
        "winner": report.ranking()[0],
    }


def measure(smoke: bool = False) -> dict:
    """The full benchmark record (shrunk in smoke mode)."""
    if smoke:
        vectorization = measure_vectorization(
            num_bins=433, num_series=24, repeats=1
        )
        grid = measure_grid(
            num_bins=288,
            detectors=("subspace", "fourier"),
            injection_sizes=(3.0e7,),
            num_injections=6,
        )
    else:
        vectorization = measure_vectorization()
        grid = measure_grid()
    return {
        "benchmark": "detector_comparison",
        "floor_speedup": MIN_SPEEDUP,
        "smoke": smoke,
        "grid": grid,
        "speedup": {
            "ar": vectorization["ar_speedup"],
            "holt_winters": vectorization["hw_speedup"],
        },
        "wall_clock_seconds": {
            "ar_loop": vectorization["ar_loop_seconds"],
            "ar_vectorized": vectorization["ar_vectorized_seconds"],
            "hw_loop": vectorization["hw_loop_seconds"],
            "hw_batched": vectorization["hw_batched_seconds"],
            "comparison_grid": grid["elapsed_seconds"],
        },
        "vectorization_block": {
            "num_bins": int(vectorization["num_bins"]),
            "num_series": int(vectorization["num_series"]),
        },
    }


def render(stats: dict) -> str:
    block = stats["vectorization_block"]
    grid = stats["grid"]
    wall = stats["wall_clock_seconds"]
    auc = ", ".join(
        f"{name}={value:.4f}" for name, value in grid["mean_auc"].items()
    )
    return "\n".join(
        [
            f"vectorization block: {block['num_bins']} bins x "
            f"{block['num_series']} series",
            f"AR per-column loop:      {wall['ar_loop']:>8.3f} s",
            f"AR vectorized:           {wall['ar_vectorized']:>8.3f} s  "
            f"({stats['speedup']['ar']:.1f}x, floor {MIN_SPEEDUP:.0f}x)",
            f"HW per-column loop:      {wall['hw_loop']:>8.3f} s",
            f"HW batched recursion:    {wall['hw_batched']:>8.3f} s  "
            f"({stats['speedup']['holt_winters']:.1f}x, floor "
            f"{MIN_SPEEDUP:.0f}x)",
            f"comparison grid: {grid['num_cells']} cells "
            f"({' x '.join(grid['detectors'])} over "
            f"{len(grid['scenarios'])} scenarios, {grid['num_bins']} bins) "
            f"in {grid['elapsed_seconds']:.2f} s "
            f"({grid['cells_per_second']:.1f} cells/s)",
            f"grid winner by mean AUC: {grid['winner']} ({auc})",
        ]
    )


def test_detector_comparison(results_dir):
    from conftest import write_json_result, write_result

    stats = measure()
    write_result(results_dir, "detector_comparison", render(stats))
    write_json_result(results_dir, "detector_comparison", stats)
    assert stats["speedup"]["ar"] >= MIN_SPEEDUP
    assert stats["speedup"]["holt_winters"] >= MIN_SPEEDUP
    # The subspace method must win its own comparison grid.
    assert stats["grid"]["winner"] == "subspace"


if __name__ == "__main__":
    import argparse

    from conftest import RESULTS_DIR, write_json_result

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny dimensions; checks artifact production, not the floors",
    )
    arguments = parser.parse_args()
    results = measure(smoke=arguments.smoke)
    print(render(results))
    RESULTS_DIR.mkdir(exist_ok=True)
    path = write_json_result(RESULTS_DIR, "detector_comparison", results)
    if not path.exists():
        raise SystemExit("FAIL: JSON artifact missing")
    if not arguments.smoke:
        for name, speedup in results["speedup"].items():
            if speedup < MIN_SPEEDUP:
                raise SystemExit(
                    f"FAIL: {name} speedup {speedup:.1f}x below "
                    f"{MIN_SPEEDUP:.0f}x"
                )
    print("OK")
