"""Figure 10: subspace vs Fourier vs EWMA residuals on link data.

The paper's §7.3 comparison: apply all three decompositions to the *link*
measurement ensemble and compare how sharply the residual magnitude
separates the known anomalies from normal traffic.  The subspace (spatial
correlation) residual admits a clean threshold; the temporal baselines do
not.
"""

import numpy as np

from repro.validation import fig10_series
from repro.validation.experiments import separability

from conftest import write_result


def test_fig10_basis_comparison(benchmark, sprint1, results_dir):
    data = benchmark(fig10_series, sprint1)
    event_bins = np.array(
        sorted(
            e.time_bin
            for e in sprint1.true_events
            if abs(e.amplitude_bytes) >= 2e7
        )
    )
    lines = [
        f"known anomalies: {event_bins.size} bins; "
        f"subspace threshold {data['threshold']:.3e}",
        "method    det@zero-FA   FA@full-detection",
    ]
    scores = {}
    for method in ("subspace", "fourier", "ewma"):
        result = separability(data[method], event_bins)
        scores[method] = result
        lines.append(
            f"{method:<9} {result['detection_at_zero_fa']:>11.2f}   "
            f"{result['fa_at_full_detection']:>17.4f}"
        )
    write_result(results_dir, "fig10_basis_comparison", "\n".join(lines))

    # The figure's claim, quantified: a threshold with high detection and
    # low false alarms exists for the subspace residual only.
    assert scores["subspace"]["detection_at_zero_fa"] >= 0.6
    assert scores["subspace"]["fa_at_full_detection"] < 0.05
    assert (
        scores["fourier"]["fa_at_full_detection"]
        > scores["subspace"]["fa_at_full_detection"]
    )
    assert (
        scores["ewma"]["fa_at_full_detection"]
        >= scores["subspace"]["fa_at_full_detection"]
    )
