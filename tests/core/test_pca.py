"""Tests for repro.core.pca (§4.2)."""

import numpy as np
import pytest

from repro.core import PCA
from repro.core.pca import _deterministic_signs
from repro.exceptions import ModelError, NotFittedError


@pytest.fixture
def anisotropic_data(rng):
    # 200 samples in R^5 with variance concentrated on two axes.
    latent = rng.normal(size=(200, 5))
    return latent @ np.diag([10.0, 4.0, 1.0, 0.5, 0.1]) + 100.0


class TestFit:
    def test_components_orthonormal(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        v = pca.components
        assert np.allclose(v.T @ v, np.eye(5), atol=1e-10)

    def test_variance_ordering(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        captured = pca.captured_variance()
        assert np.all(np.diff(captured) <= 1e-9)

    def test_mean_computed(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        assert np.allclose(pca.mean, anisotropic_data.mean(axis=0))

    def test_no_centering_option(self, anisotropic_data):
        pca = PCA(center=False).fit(anisotropic_data)
        assert np.allclose(pca.mean, 0.0)

    def test_captured_variance_matches_projection_norm(self, anisotropic_data):
        """The paper's definition: lambda_i = ||Y v_i||^2 on centered Y."""
        pca = PCA().fit(anisotropic_data)
        centered = anisotropic_data - anisotropic_data.mean(axis=0)
        for i in range(5):
            projected = centered @ pca.component(i)
            assert pca.captured_variance()[i] == pytest.approx(
                float(projected @ projected), rel=1e-9
            )

    def test_eigenvalues_are_covariance_eigenvalues(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        covariance = np.cov(anisotropic_data, rowvar=False)
        expected = np.sort(np.linalg.eigvalsh(covariance))[::-1]
        assert np.allclose(pca.eigenvalues(), expected, rtol=1e-9)

    def test_total_variance_conserved(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        centered = anisotropic_data - anisotropic_data.mean(axis=0)
        assert pca.captured_variance().sum() == pytest.approx(
            float(np.sum(centered**2)), rel=1e-9
        )

    def test_deterministic_sign_convention(self, anisotropic_data):
        a = PCA().fit(anisotropic_data)
        b = PCA().fit(anisotropic_data.copy())
        assert np.allclose(a.components, b.components)
        for i in range(5):
            v = a.component(i)
            assert v[np.argmax(np.abs(v))] > 0

    def test_short_wide_matrix_padded(self, rng):
        # Fewer samples than dimensions: trailing axes get zero variance.
        data = rng.normal(size=(4, 10))
        pca = PCA().fit(data)
        assert pca.num_components == 10
        assert np.allclose(pca.captured_variance()[4:], 0.0)


class TestEigensolverRoutes:
    """The economy eigensolver: method knob, auto selection, equivalence."""

    def test_unknown_method_rejected(self):
        with pytest.raises(ModelError, match="method"):
            PCA(method="qr")

    def test_auto_routes_by_aspect_ratio(self, rng):
        tall = rng.normal(size=(200, 5))
        wide = rng.normal(size=(5, 200))
        balanced = rng.normal(size=(12, 8))
        assert PCA().fit(tall).solver == "gram-covariance"
        assert PCA().fit(wide).solver == "gram-sample"
        assert PCA().fit(balanced).solver == "svd"

    def test_forced_methods_route_as_asked(self, rng):
        data = rng.normal(size=(200, 5))
        assert PCA(method="svd").fit(data).solver == "svd"
        assert PCA(method="gram").fit(data).solver == "gram-covariance"
        assert PCA(method="svd-full").fit(data).solver == "svd-full"
        assert PCA(method="gram").fit(data.T).solver == "gram-sample"

    @pytest.mark.parametrize("shape", [(200, 5), (6, 40), (12, 8)])
    def test_routes_agree(self, rng, shape):
        """Every route produces the same decomposition (tall, wide and
        balanced shapes) up to numerical precision."""
        data = rng.normal(size=shape) @ np.diag(
            np.linspace(3.0, 0.5, shape[1])
        ) + 10.0
        reference = PCA(method="svd-full").fit(data)
        k = min(shape[0] - 1, shape[1])  # determined directions
        for method in ("auto", "svd", "gram"):
            pca = PCA(method=method).fit(data)
            assert pca.num_components == shape[1]
            v = pca.components
            assert np.allclose(v.T @ v, np.eye(shape[1]), atol=1e-9)
            assert np.allclose(
                pca.eigenvalues(), reference.eigenvalues(),
                rtol=1e-7, atol=1e-9,
            )
            # Determined axes match up to precision; the sign convention
            # pins them exactly, so the overlap diagonal is +1, not ±1.
            overlap = np.diag(v.T @ reference.components)[:k]
            assert np.allclose(overlap, 1.0, atol=1e-7), method

    def test_routes_agree_on_traffic_data(self, sprint1):
        """The paper-shaped case (t ≫ m): gram vs thin vs full SVD."""
        reference = PCA(method="svd-full").fit(sprint1.link_traffic)
        for method in ("auto", "svd", "gram"):
            pca = PCA(method=method).fit(sprint1.link_traffic)
            assert np.allclose(
                pca.eigenvalues(), reference.eigenvalues(),
                rtol=1e-6, atol=1e-3,
            )
            # The detection pipeline consumes subspace projectors, so
            # compare those rather than individual axes (trailing axes
            # with near-degenerate eigenvalues may rotate freely).
            p_new = pca.components[:, :4]
            p_ref = reference.components[:, :4]
            assert np.allclose(
                p_new @ p_new.T, p_ref @ p_ref.T, atol=1e-8
            )

    def test_gram_sample_recovers_wide_matrix(self, rng):
        data = rng.normal(size=(4, 10))
        pca = PCA(method="gram").fit(data)
        assert pca.solver == "gram-sample"
        assert pca.num_components == 10
        # Reconstruction through the full basis is lossless.
        rebuilt = pca.inverse_transform(pca.transform(data))
        assert np.allclose(rebuilt, data, atol=1e-8)

    def test_refit_is_bit_deterministic(self, rng):
        data = rng.normal(size=(200, 5))
        for method in ("auto", "svd", "gram", "svd-full"):
            a = PCA(method=method).fit(data)
            b = PCA(method=method).fit(data.copy())
            assert np.array_equal(a.components, b.components)
            assert np.array_equal(
                a.captured_variance(), b.captured_variance()
            )


class TestSignFixup:
    """The vectorized deterministic-sign pass (satellite regression)."""

    @staticmethod
    def _loop_reference(components):
        components = components.copy()
        for i in range(components.shape[1]):
            pivot = np.argmax(np.abs(components[:, i]))
            if components[pivot, i] < 0:
                components[:, i] = -components[:, i]
        return components

    @pytest.mark.parametrize("shape", [(5, 5), (40, 12), (3, 17), (1, 1)])
    def test_bit_identical_to_column_loop(self, rng, shape):
        matrix = rng.normal(size=shape)
        expected = self._loop_reference(matrix)
        actual = _deterministic_signs(matrix.copy())
        assert np.array_equal(actual, expected)

    def test_tie_on_magnitude_matches_loop(self):
        # Two entries with equal |value|: argmax picks the first in both
        # implementations, so the column flips iff that entry is negative.
        matrix = np.array([[-0.5, 0.5], [0.5, -0.5], [0.1, 0.1]])
        assert np.array_equal(
            _deterministic_signs(matrix.copy()),
            self._loop_reference(matrix),
        )

    def test_empty_matrix_passthrough(self):
        empty = np.empty((4, 0))
        assert _deterministic_signs(empty.copy()).shape == (4, 0)


class TestFractionsAndDimension:
    def test_fractions_sum_to_one(self, anisotropic_data):
        assert PCA().fit(anisotropic_data).variance_fractions().sum() == pytest.approx(1.0)

    def test_effective_dimension(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        assert pca.effective_dimension(0.5) <= 2
        assert pca.effective_dimension(1.0) <= 5

    def test_effective_dimension_validation(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        with pytest.raises(ModelError):
            pca.effective_dimension(0.0)

    def test_paper_fig3_shape(self, sprint1):
        """Fig. 3: >40 links, but 3-4 components capture the vast
        majority of the variance."""
        pca = PCA().fit(sprint1.link_traffic)
        assert pca.num_components == 49
        assert pca.variance_fractions()[:4].sum() > 0.9


class TestTransforms:
    def test_transform_inverse_roundtrip(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        scores = pca.transform(anisotropic_data)
        rebuilt = pca.inverse_transform(scores)
        assert np.allclose(rebuilt, anisotropic_data, atol=1e-8)

    def test_projection_timeseries_unit_norm(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        u0 = pca.projection_timeseries(anisotropic_data, 0)
        assert np.linalg.norm(u0) == pytest.approx(1.0)

    def test_projection_timeseries_orthogonal(self, anisotropic_data):
        """The u_i of §4.3 are orthogonal by construction."""
        pca = PCA().fit(anisotropic_data)
        u0 = pca.projection_timeseries(anisotropic_data, 0)
        u1 = pca.projection_timeseries(anisotropic_data, 1)
        assert abs(float(u0 @ u1)) < 1e-10

    def test_zero_variance_axis_rejected(self, rng):
        data = np.zeros((10, 3))
        data[:, 0] = rng.normal(size=10)
        pca = PCA().fit(data)
        with pytest.raises(ModelError):
            pca.projection_timeseries(data, 2)


class TestValidation:
    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            PCA().transform(np.ones((2, 2)))

    def test_one_sample_rejected(self):
        with pytest.raises(ModelError):
            PCA().fit(np.ones((1, 3)))

    def test_non_finite_rejected(self):
        data = np.ones((5, 3))
        data[0, 0] = np.inf
        with pytest.raises(ModelError):
            PCA().fit(data)

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ModelError):
            PCA().fit(np.ones(5))

    def test_component_index_out_of_range(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        with pytest.raises(ModelError):
            pca.component(99)


class TestGramRankDeficient:
    """Regression: the (t, t) Gram route on rank-deficient data.

    Squaring the spectrum surfaces eigenvalue rounding dust as
    σ ≈ σ₀·√(t·eps); with the old σ₀·t·eps cutoff those dust columns
    passed as real and their "recovered" axes broke orthonormality.
    """

    def test_rank_one_short_and_wide_stays_orthonormal(self):
        data = np.ones((4, 5))
        data[0, 0] = 0.0  # centered rank 1, t < m -> gram-sample route
        pca = PCA(method="gram").fit(data)
        assert pca.solver == "gram-sample"
        v = pca.components
        assert np.allclose(v.T @ v, np.eye(5), atol=1e-12)
        reference = PCA(method="svd-full").fit(data)
        assert np.allclose(
            pca.eigenvalues(), reference.eigenvalues(), atol=1e-12
        )

    def test_dust_directions_report_zero_variance(self):
        data = np.ones((4, 5))
        data[0, 0] = 0.0
        pca = PCA(method="gram").fit(data)
        assert np.count_nonzero(pca.eigenvalues() > 1e-12) == 1
