"""Traffic generation substrate.

Synthesizes origin-destination (OD) flow timeseries with the two
statistical properties the subspace method relies on (see DESIGN.md §2):

1. **Low effective dimensionality** — all flows share a handful of common
   temporal patterns (diurnal and weekly cycles), so the ensemble of link
   timeseries is well captured by a few principal components (paper Fig. 3).
2. **Spike-shaped volume anomalies** — short-lived, large deviations
   confined to a single OD flow (paper Fig. 1), injected on top of the
   normal traffic.
"""

from repro.traffic.diurnal import DiurnalProfile, fourier_periods_hours, weekly_basis
from repro.traffic.gravity import gravity_means
from repro.traffic.noise import GaussianNoise, LognormalNoise, NoiseModel, NoNoise
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.anomalies import (
    AnomalyEvent,
    AnomalyShape,
    inject_anomalies,
    make_anomaly_events,
)
from repro.traffic.od_flows import ODFlowGenerator
from repro.traffic.workloads import WorkloadConfig, workload_for
from repro.traffic.metrics import (
    average_packet_size_links,
    inject_small_packet_flood,
    packet_count_links,
)

__all__ = [
    "DiurnalProfile",
    "weekly_basis",
    "fourier_periods_hours",
    "gravity_means",
    "NoiseModel",
    "GaussianNoise",
    "LognormalNoise",
    "NoNoise",
    "TrafficMatrix",
    "AnomalyEvent",
    "AnomalyShape",
    "inject_anomalies",
    "make_anomaly_events",
    "ODFlowGenerator",
    "WorkloadConfig",
    "workload_for",
    "packet_count_links",
    "average_packet_size_links",
    "inject_small_packet_flood",
]
