"""Exponentially weighted moving average forecasting (§6.2).

The EWMA prediction for time ``t + 1`` is

    ẑ_{t+1} = α·z_t + (1 − α)·ẑ_t

with ``0 ≤ α ≤ 1`` weighting recent history.  The paper selects α by a
multi-grid search on training data (finding 0.2 ≤ α ≤ 0.3 effective) and
measures anomalies as ``|z_t − ẑ_t|``.

Footnote 4's correction is implemented: a moving-average scheme flags the
bin *after* a spike as a second spike (the spike inflates the forecast).
Running EWMA in both time directions and taking the per-bin *minimum* of
the two deviation estimates suppresses this echo.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import lfilter

from repro.baselines.base import TimeseriesModel
from repro.exceptions import ModelError

__all__ = ["EWMAModel", "ewma_forecast", "grid_search_alpha"]


def ewma_forecast(series: np.ndarray, alpha: float) -> np.ndarray:
    """One-step-ahead EWMA forecasts ``ẑ_t`` for each ``t``.

    ``ẑ_0`` is seeded with ``z_0`` (zero initial surprise); thereafter
    ``ẑ_{t+1} = α·z_t + (1 − α)·ẑ_t``.  Works column-wise on matrices.

    The recursion is an order-1 IIR filter, so it runs as one
    :func:`scipy.signal.lfilter` call instead of a per-bin Python loop.
    The filter's direct-form update performs the same two products and
    one sum per bin as the loop, so the output is bit-identical to
    :func:`_ewma_forecast_loop` (the regression suite pins this).
    """
    if not 0.0 <= alpha <= 1.0:
        raise ModelError(f"alpha must lie in [0, 1], got {alpha}")
    series = np.asarray(series, dtype=np.float64)
    squeeze = series.ndim == 1
    if squeeze:
        series = series[:, None]
    forecasts = np.empty_like(series)
    forecasts[0] = series[0]
    if series.shape[0] > 1:
        # ẑ_{t+1} = α·z_t + (1−α)·ẑ_t  ⇔  y = lfilter([α], [1, −(1−α)], z)
        # with the filter state seeded so that y[0] = α·z_0 + (1−α)·ẑ_0.
        forecasts[1:], _ = lfilter(
            np.array([alpha]),
            np.array([1.0, -(1.0 - alpha)]),
            series[:-1],
            axis=0,
            zi=((1.0 - alpha) * forecasts[0])[None, :],
        )
    return forecasts[:, 0] if squeeze else forecasts


def _ewma_forecast_loop(series: np.ndarray, alpha: float) -> np.ndarray:
    """Reference per-bin recursion (pre-vectorization implementation).

    Kept for the bit-identity regression tests and benchmarks; do not
    use on hot paths.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ModelError(f"alpha must lie in [0, 1], got {alpha}")
    series = np.asarray(series, dtype=np.float64)
    squeeze = series.ndim == 1
    if squeeze:
        series = series[:, None]
    forecasts = np.empty_like(series)
    forecasts[0] = series[0]
    for t in range(1, series.shape[0]):
        forecasts[t] = alpha * series[t - 1] + (1.0 - alpha) * forecasts[t - 1]
    return forecasts[:, 0] if squeeze else forecasts


def grid_search_alpha(
    series: np.ndarray,
    grid: np.ndarray | None = None,
    refinements: int = 2,
) -> float:
    """Multi-grid search for the α minimizing mean squared forecast error.

    Mirrors the paper's parameter-selection protocol ([19]): evaluate a
    coarse grid, then refine around the winner.
    """
    series = np.asarray(series, dtype=np.float64)
    if grid is None:
        grid = np.linspace(0.05, 0.95, 10)

    def mse(alpha: float) -> float:
        forecasts = ewma_forecast(series, alpha)
        return float(np.mean((series - forecasts) ** 2))

    best = min(grid, key=mse)
    width = float(grid[1] - grid[0]) if len(grid) > 1 else 0.1
    for _ in range(refinements):
        width /= 2.0
        local = np.clip(np.linspace(best - width, best + width, 5), 0.0, 1.0)
        best = min(local, key=mse)
    return float(best)


class EWMAModel(TimeseriesModel):
    """EWMA baseline with bidirectional spike-echo suppression.

    Parameters
    ----------
    alpha:
        Smoothing weight; the paper found 0.2-0.3 effective.  Pass None to
        grid-search per call (slower; used by the ground-truth extractor
        when fidelity to the paper's protocol matters).
    bidirectional:
        Apply footnote 4's forward/backward minimum.  When False the plain
        forward residual is returned.
    """

    def __init__(self, alpha: float | None = 0.25, bidirectional: bool = True) -> None:
        if alpha is not None and not 0.0 <= alpha <= 1.0:
            raise ModelError(f"alpha must lie in [0, 1], got {alpha}")
        self.alpha = alpha
        self.bidirectional = bidirectional

    def _alpha_for(self, series: np.ndarray) -> float:
        if self.alpha is not None:
            return self.alpha
        return grid_search_alpha(series)

    def predict(self, series: np.ndarray) -> np.ndarray:
        series = self._check(series)
        return ewma_forecast(series, self._alpha_for(series))

    def anomaly_sizes(self, series: np.ndarray) -> np.ndarray:
        """``|z − ẑ|`` with the bidirectional minimum of footnote 4."""
        series = self._check(series)
        alpha = self._alpha_for(series)
        forward = np.abs(series - ewma_forecast(series, alpha))
        if not self.bidirectional:
            return forward
        reversed_series = series[::-1]
        backward = np.abs(
            reversed_series - ewma_forecast(reversed_series, alpha)
        )[::-1]
        return np.minimum(forward, backward)

    def residual_energy(self, series: np.ndarray) -> np.ndarray:
        """Per-timestep squared deviation magnitude (bidirectional sizes)."""
        sizes = self.anomaly_sizes(series)
        if sizes.ndim == 1:
            return sizes**2
        return np.einsum("ij,ij->i", sizes, sizes)
