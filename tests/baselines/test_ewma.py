"""Tests for repro.baselines.ewma (§6.2, footnote 4)."""

import numpy as np
import pytest

from repro.baselines import EWMAModel
from repro.baselines.ewma import (
    _ewma_forecast_loop,
    ewma_forecast,
    grid_search_alpha,
)
from repro.exceptions import ModelError


class TestVectorizedRecurrence:
    """The lfilter recurrence must be bit-identical to the per-bin loop
    (satellite regression)."""

    @pytest.mark.parametrize(
        "shape", [(1,), (2,), (500,), (1, 3), (2, 3), (500, 49)]
    )
    @pytest.mark.parametrize("alpha", [0.0, 0.25, 0.5, 0.93, 1.0])
    def test_bit_identical_to_loop(self, rng, shape, alpha):
        series = rng.uniform(0.0, 1e8, size=shape)
        assert np.array_equal(
            ewma_forecast(series, alpha), _ewma_forecast_loop(series, alpha)
        )

    def test_loop_reference_validates_alpha(self):
        with pytest.raises(ModelError):
            _ewma_forecast_loop(np.ones(3), alpha=-0.1)

    def test_model_sizes_bit_identical_to_loop(self, rng):
        """End to end through the bidirectional footnote-4 path."""
        series = rng.uniform(0.0, 1e8, size=(200, 7))
        model = EWMAModel(alpha=0.25)
        forward = np.abs(series - _ewma_forecast_loop(series, 0.25))
        backward = np.abs(
            series[::-1] - _ewma_forecast_loop(series[::-1], 0.25)
        )[::-1]
        assert np.array_equal(
            model.anomaly_sizes(series), np.minimum(forward, backward)
        )


class TestForecast:
    def test_recursion(self):
        series = np.array([10.0, 20.0, 30.0])
        forecasts = ewma_forecast(series, alpha=0.5)
        assert forecasts[0] == 10.0
        assert forecasts[1] == pytest.approx(0.5 * 10 + 0.5 * 10)
        assert forecasts[2] == pytest.approx(0.5 * 20 + 0.5 * 10)

    def test_alpha_one_tracks_previous_value(self):
        series = np.array([1.0, 5.0, 2.0, 8.0])
        forecasts = ewma_forecast(series, alpha=1.0)
        assert np.allclose(forecasts[1:], series[:-1])

    def test_alpha_zero_stays_at_seed(self):
        series = np.array([1.0, 5.0, 2.0, 8.0])
        forecasts = ewma_forecast(series, alpha=0.0)
        assert np.allclose(forecasts, 1.0)

    def test_matrix_form_matches_columns(self, rng):
        series = rng.normal(size=(50, 4))
        block = ewma_forecast(series, 0.3)
        for j in range(4):
            assert np.allclose(block[:, j], ewma_forecast(series[:, j], 0.3))

    def test_alpha_validation(self):
        with pytest.raises(ModelError):
            ewma_forecast(np.ones(3), alpha=1.5)


class TestGridSearch:
    def test_prefers_high_alpha_for_random_walk(self, rng):
        walk = np.cumsum(rng.normal(size=2000))
        assert grid_search_alpha(walk) > 0.5

    def test_prefers_low_alpha_for_noise_around_constant(self, rng):
        noise = 100.0 + rng.normal(size=2000)
        assert grid_search_alpha(noise) < 0.3

    def test_result_in_unit_interval(self, rng):
        alpha = grid_search_alpha(rng.normal(size=100))
        assert 0.0 <= alpha <= 1.0


class TestSpikeEchoSuppression:
    def test_bidirectional_minimum_removes_echo(self):
        """Footnote 4: forward-only EWMA marks the bin after a spike as a
        second spike; the bidirectional minimum must not."""
        series = np.full(200, 100.0)
        series[100] = 1100.0
        forward = EWMAModel(alpha=0.3, bidirectional=False)
        both = EWMAModel(alpha=0.3, bidirectional=True)

        sizes_forward = forward.anomaly_sizes(series)
        sizes_both = both.anomaly_sizes(series)
        # Forward-only: large residual echo at bin 101.
        assert sizes_forward[101] > 100.0
        # Bidirectional: the echo is suppressed, the spike remains.
        assert sizes_both[101] < 10.0
        assert sizes_both[100] > 900.0

    def test_spike_size_estimate(self):
        series = np.full(300, 1000.0)
        series[150] += 5e4
        model = EWMAModel(alpha=0.25)
        sizes = model.anomaly_sizes(series)
        assert np.argmax(sizes) == 150
        assert sizes[150] == pytest.approx(5e4, rel=0.1)

    def test_alpha_none_triggers_grid_search(self, rng):
        series = np.cumsum(rng.normal(size=300))
        model = EWMAModel(alpha=None)
        sizes = model.anomaly_sizes(series)
        assert sizes.shape == (300,)

    def test_residual_energy_shape(self, rng):
        series = rng.normal(size=(100, 5)) + 50
        model = EWMAModel(alpha=0.25)
        energy = model.residual_energy(series)
        assert energy.shape == (100,)
        assert np.all(energy >= 0)
