"""Internal helpers shared across the repro package.

These are deliberately small, dependency-light functions for argument
validation and array handling.  They are private to the library (leading
underscore module name); the public API re-exports nothing from here.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import ReproError

__all__ = [
    "as_float_array",
    "as_matrix",
    "as_vector",
    "atomic_pickle_dump",
    "check_fraction",
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "ensure_matrix",
    "require",
    "rng_from",
]


def require(condition: bool, message: str, error: type[ReproError] = ReproError) -> None:
    """Raise ``error(message)`` unless ``condition`` holds.

    A tiny guard used at API boundaries so that user mistakes surface as
    library exceptions with readable messages instead of numpy tracebacks.
    """
    if not condition:
        raise error(message)


def as_float_array(values: Iterable[float] | np.ndarray, name: str = "array") -> np.ndarray:
    """Convert ``values`` to a float64 ndarray, rejecting NaN and inf."""
    array = np.asarray(values, dtype=np.float64)
    if not np.all(np.isfinite(array)):
        raise ReproError(f"{name} must contain only finite values")
    return array


def as_vector(values: Iterable[float] | np.ndarray, name: str = "vector") -> np.ndarray:
    """Convert ``values`` to a finite 1-D float64 vector."""
    array = as_float_array(values, name=name)
    if array.ndim != 1:
        raise ReproError(f"{name} must be 1-dimensional, got shape {array.shape}")
    return array


def as_matrix(values: Iterable[Iterable[float]] | np.ndarray, name: str = "matrix") -> np.ndarray:
    """Convert ``values`` to a finite 2-D float64 matrix."""
    array = as_float_array(values, name=name)
    if array.ndim != 2:
        raise ReproError(f"{name} must be 2-dimensional, got shape {array.shape}")
    return array


def ensure_matrix(
    values,
    dtype: np.dtype | type = np.float64,
    name: str = "matrix",
    error: type[ReproError] = ReproError,
    check_finite: bool = True,
) -> np.ndarray:
    """Validate a ``(t, m)`` measurement block without copying it.

    The single entry point for input coercion on the scoring hot path.
    When ``values`` is already a 2-D ndarray (or ndarray subclass such
    as ``np.memmap``) of ``dtype``, the returned array *shares its
    memory* — ``np.asarray`` only converts, never clones, so memory-
    mapped datasets stream through block scoring and
    :meth:`~repro.pipeline.sharded.TemporalCoordinator.fit_stream`
    zero-copy (the out-of-core regression tests pin this with
    ``np.shares_memory``).  Non-conforming inputs (lists, wrong dtype)
    are converted, which necessarily allocates.

    ``check_finite`` scans for NaN/inf — a streaming read over the
    block, no temporary of its size.  Disable only where the caller
    already guarantees finiteness.
    """
    try:
        array = np.asarray(values, dtype=dtype)
    except (TypeError, ValueError) as err:
        raise error(f"{name} is not numeric: {err}") from err
    if array.ndim != 2:
        raise error(
            f"{name} must be 2-dimensional, got shape {array.shape}"
        )
    if check_finite and not np.all(np.isfinite(array)):
        raise error(f"{name} must contain only finite values")
    return array


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ReproError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number greater than or equal to zero."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ReproError(f"{name} must be a non-negative finite number, got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not np.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ReproError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the open interval (0, 1)."""
    value = float(value)
    if not np.isfinite(value) or not 0.0 < value < 1.0:
        raise ReproError(f"{name} must lie in (0, 1), got {value!r}")
    return value


def rng_from(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a numpy Generator from a seed, an existing generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def unit_norm(vector: np.ndarray, name: str = "vector") -> np.ndarray:
    """Return ``vector`` scaled to unit Euclidean norm.

    Raises :class:`ReproError` for the zero vector, which has no direction.
    """
    vector = as_vector(vector, name=name)
    norm = float(np.linalg.norm(vector))
    if norm == 0.0:
        raise ReproError(f"{name} is the zero vector and cannot be normalized")
    return vector / norm


def pairwise(items: Sequence) -> list[tuple]:
    """Return consecutive pairs ``[(items[0], items[1]), ...]`` of a sequence."""
    return [(items[i], items[i + 1]) for i in range(len(items) - 1)]


def atomic_pickle_dump(path, payload) -> None:
    """Pickle ``payload`` to ``path`` atomically (temp file + rename).

    The write lands in a temporary file in the *same directory* (so the
    rename stays within one filesystem), is fsynced, and replaces the
    destination with ``os.replace`` — a crash at any instant leaves
    either the previous complete file or the new complete file, never a
    torn hybrid.  This is the only way checkpoints are written.
    """
    import os
    import pickle
    import tempfile
    from pathlib import Path

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
