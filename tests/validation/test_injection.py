"""Tests for repro.validation.injection (§6.3)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.validation import InjectionStudy


@pytest.fixture(scope="module")
def study(request):
    return InjectionStudy(request.getfixturevalue("sprint1"))


class TestVectorizedSweep:
    def test_result_shapes(self, study, sprint1):
        result = study.run(3e7, time_bins=np.arange(12))
        assert result.detected.shape == (12, sprint1.num_flows)
        assert result.identified.shape == (12, sprint1.num_flows)
        assert result.estimated_bytes.shape == (12, sprint1.num_flows)

    def test_matches_naive_diagnosis(self, study, sprint1):
        """The vectorized algebra must agree with the literal per-cell
        diagnosis path on every checked cell."""
        time_bins = np.array([30, 400, 900])
        flows = np.array([0, 17, 60, 111, 168])
        result = study.run(3e7, time_bins=time_bins, flow_indices=flows)
        for ti, t in enumerate(time_bins):
            for fi, flow in enumerate(flows):
                detected, identified, estimated = study.run_naive_cell(
                    3e7, int(t), int(flow)
                )
                assert result.detected[ti, fi] == detected
                if identified:
                    # The naive path reports the *winner's* estimate; when
                    # the injected flow won, both paths must agree.
                    assert result.identified[ti, fi]
                    assert result.estimated_bytes[ti, fi] == pytest.approx(
                        estimated, rel=1e-9
                    )

    def test_large_injections_mostly_detected(self, study):
        """Paper Table 3: large Sprint injections detected ~93%."""
        result = study.run(3e7)
        assert result.detection_rate > 0.85

    def test_small_injections_rarely_detected(self, study):
        """Paper Table 3: small Sprint injections detected ~15%."""
        result = study.run(1.5e7)
        assert result.detection_rate < 0.35

    def test_identification_rate_high_for_large(self, study):
        result = study.run(3e7)
        assert result.identification_rate > 0.8

    def test_quantification_error_in_paper_band(self, study):
        """Paper Table 3: ~18% mean error for large Sprint injections;
        anything under ~35% preserves the claim."""
        result = study.run(3e7)
        assert result.mean_quantification_error < 0.35

    def test_detection_rate_axes(self, study):
        result = study.run(3e7, time_bins=np.arange(24))
        by_flow = result.detection_rate_by_flow()
        by_time = result.detection_rate_by_time()
        assert by_flow.shape == (169,)
        assert by_time.shape == (24,)
        assert by_flow.mean() == pytest.approx(result.detection_rate)
        assert by_time.mean() == pytest.approx(result.detection_rate)

    def test_detection_rate_stable_over_time(self, study):
        """Paper Fig. 8: detection rate is fairly constant across the
        day despite traffic nonstationarity."""
        result = study.run(3e7)
        by_time = result.detection_rate_by_time()
        assert by_time.std() < 0.12

    def test_large_flows_harder(self, study, sprint1):
        """Paper Fig. 9: fixed-size injections are detected less often
        in large OD flows."""
        result = study.run(3e7)
        rates = result.detection_rate_by_flow()
        means = sprint1.od_traffic.flow_means()
        order = np.argsort(means)
        small_rate = rates[order[:50]].mean()
        large_rate = rates[order[-20:]].mean()
        assert large_rate < small_rate

    def test_chunking_invariant(self, study):
        a = study.run(3e7, time_bins=np.arange(20), chunk_bins=3)
        b = study.run(3e7, time_bins=np.arange(20), chunk_bins=20)
        assert np.array_equal(a.detected, b.detected)
        assert np.array_equal(a.identified, b.identified)
        assert np.allclose(a.estimated_bytes, b.estimated_bytes, equal_nan=True)


class TestValidation:
    def test_zero_size_rejected(self, study):
        with pytest.raises(ValidationError):
            study.run(0.0)

    def test_bad_time_bins(self, study):
        with pytest.raises(ValidationError):
            study.run(1e7, time_bins=np.array([99999]))
        with pytest.raises(ValidationError):
            study.run(1e7, time_bins=np.array([], dtype=np.int64))

    def test_bad_flows(self, study):
        with pytest.raises(ValidationError):
            study.run(1e7, flow_indices=np.array([9999]))

    def test_bad_chunk(self, study):
        with pytest.raises(ValidationError):
            study.run(1e7, chunk_bins=0)
