"""Tests for repro.pipeline.sharded (the sharded detection plane)."""

import json

import numpy as np
import pytest

from repro.core import SPEDetector
from repro.exceptions import ModelError, ValidationError
from repro.pipeline.sharded import (
    FUSION_MODES,
    SpatialCoordinator,
    TemporalCoordinator,
    partition_links,
    temporal_fit_matches_monolithic,
)


@pytest.fixture(scope="module")
def tall_block():
    rng = np.random.default_rng(9)
    t, m = 2600, 18
    base = 1e7 * (1.4 + np.sin(2 * np.pi * np.arange(t) / 144.0))[:, None]
    block = np.abs(
        base
        * rng.uniform(0.5, 2.0, size=m)
        * (1.0 + 0.08 * rng.standard_normal((t, m)))
    )
    block[1200] *= 2.5
    block[2000, :6] *= 3.0
    return block


class TestTemporal:
    def test_exact_match_monolithic_pinned(self, tall_block):
        """The acceptance gate: a model fitted from merged chunk stats
        is bit-identical to the monolithic gram fit."""
        fit = TemporalCoordinator(num_shards=5, workers=1).fit(tall_block)
        assert temporal_fit_matches_monolithic(fit, tall_block)
        reference = SPEDetector(svd_method="gram").fit(tall_block)
        assert np.array_equal(
            fit.pca.components, reference.model.pca.components
        )
        assert np.array_equal(fit.pca.mean, reference.model.pca.mean)
        assert fit.detector.threshold == reference.threshold
        assert fit.detector.normal_rank == reference.normal_rank

    def test_serial_equals_parallel(self, tall_block):
        serial = TemporalCoordinator(num_shards=4, workers=1).fit(tall_block)
        parallel = TemporalCoordinator(num_shards=4, workers=3).fit(
            tall_block
        )
        assert np.array_equal(
            serial.pca.components, parallel.pca.components
        )
        assert serial.detector.threshold == parallel.detector.threshold
        assert serial.detector.normal_rank == parallel.detector.normal_rank

    def test_shard_count_does_not_change_the_model(self, tall_block):
        fits = [
            TemporalCoordinator(num_shards=n, workers=1).fit(tall_block)
            for n in (1, 3, 8)
        ]
        for fit in fits[1:]:
            assert np.array_equal(
                fits[0].pca.components, fit.pca.components
            )
            assert fits[0].detector.threshold == fit.detector.threshold

    def test_detection_matches_monolithic_end_to_end(self, tall_block):
        fit = TemporalCoordinator(num_shards=4, workers=1).fit(tall_block)
        reference = SPEDetector(svd_method="gram").fit(tall_block)
        ours = fit.detector.detect(tall_block)
        theirs = reference.detect(tall_block)
        assert np.array_equal(ours.flags, theirs.flags)
        assert np.allclose(ours.spe, theirs.spe, rtol=1e-12)
        assert ours.flags[1200] and ours.flags[2000]

    def test_explicit_rank_skips_separation_pass(self, tall_block):
        fit = TemporalCoordinator(
            num_shards=3, workers=1, normal_rank=2
        ).fit(tall_block)
        assert fit.detector.normal_rank == 2
        assert fit.separation is None
        assert all(
            timing.moments_seconds == 0.0
            for timing in fit.report.worker_timings
        )

    def test_detector_records_requested_configuration(self, tall_block):
        """The packaged detector carries the coordinator's parameters —
        rank None when separation chose it — so refitting from them
        reproduces an equivalently configured monolithic fit."""
        fit = TemporalCoordinator(
            num_shards=3, workers=1, threshold_sigma=2.5
        ).fit(tall_block)
        assert fit.detector.requested_rank is None
        assert fit.detector.threshold_sigma == 2.5
        assert fit.separation is not None

    def test_equivalence_check_rejects_forged_rank(self, tall_block):
        """The exactness gate is not circular: a fit whose rank diverges
        from the monolithic separation rule must fail the checker."""
        from dataclasses import replace

        from repro.core import SPEDetector as SPE
        from repro.core.subspace import SubspaceModel

        fit = TemporalCoordinator(num_shards=3, workers=1).fit(tall_block)
        wrong_rank = fit.detector.normal_rank + 2
        forged_model = SubspaceModel.with_rank(fit.pca, wrong_rank)
        forged_detector = SPE.from_model(
            forged_model, confidence=fit.detector.confidence
        )
        forged = replace(fit, detector=forged_detector)
        assert not temporal_fit_matches_monolithic(forged, tall_block)

    def test_fit_stream_matches_in_memory_fit(self, tall_block):
        def chunks():
            for start in range(0, tall_block.shape[0], 333):
                yield tall_block[start : start + 333]

        stream = TemporalCoordinator().fit_stream(chunks)
        memory = TemporalCoordinator(num_shards=4, workers=1).fit(
            tall_block
        )
        assert np.array_equal(stream.pca.components, memory.pca.components)
        assert stream.detector.threshold == memory.detector.threshold
        assert stream.detector.normal_rank == memory.detector.normal_rank

    def test_fit_stream_rejects_unstable_source(self, tall_block):
        calls = []

        def flaky():
            calls.append(None)
            rows = tall_block if len(calls) == 1 else tall_block[:-5]
            for start in range(0, rows.shape[0], 500):
                yield rows[start : start + 500]

        with pytest.raises(ModelError, match="changed between passes"):
            TemporalCoordinator().fit_stream(flaky)

    def test_fit_stream_rejects_empty_source(self):
        with pytest.raises(ModelError, match="no chunks"):
            TemporalCoordinator().fit_stream(lambda: iter(()))

    def test_fit_stream_skips_empty_chunks(self, tall_block):
        """A zero-row shard (e.g. an empty file) is ignored by both
        passes instead of crashing the separation pass."""

        def chunks():
            yield tall_block[:900]
            yield tall_block[:0]
            yield tall_block[900:]

        stream = TemporalCoordinator().fit_stream(chunks)
        memory = TemporalCoordinator(num_shards=2, workers=1).fit(
            tall_block
        )
        assert np.array_equal(stream.pca.components, memory.pca.components)
        assert stream.detector.threshold == memory.detector.threshold

    def test_validation(self, tall_block):
        with pytest.raises(ValidationError):
            TemporalCoordinator(num_shards=0)
        with pytest.raises(ValidationError):
            TemporalCoordinator(workers=0)
        with pytest.raises(ModelError):
            TemporalCoordinator().fit(tall_block[0])

    def test_report_shape_and_byte_stability(self, tall_block):
        serial = TemporalCoordinator(num_shards=4, workers=1).fit(
            tall_block
        )
        parallel = TemporalCoordinator(num_shards=4, workers=2).fit(
            tall_block
        )
        a = serial.report.to_json(include_timings=False)
        b = parallel.report.to_json(include_timings=False)
        assert json.dumps(a, sort_keys=True) == json.dumps(
            b, sort_keys=True
        )
        assert a["schema_version"] == 1
        assert a["mode"] == "temporal"
        assert a["grid"]["num_shards"] == 4
        assert "elapsed_seconds" not in a

    def test_report_timing_breakdown(self, tall_block):
        fit = TemporalCoordinator(num_shards=3, workers=1).fit(tall_block)
        payload = fit.report.to_json(include_timings=True)
        assert payload["elapsed_seconds"] > 0
        assert len(payload["worker_timings"]) == 3
        for entry in payload["worker_timings"]:
            assert set(entry) == {
                "worker",
                "start",
                "size",
                "stats_seconds",
                "moments_seconds",
            }
            assert entry["stats_seconds"] >= 0
        assert sum(e["size"] for e in payload["worker_timings"]) == (
            tall_block.shape[0]
        )
        assert payload["merge_seconds"] >= 0
        assert payload["fit_seconds"] >= 0


class TestPartitionLinks:
    def test_contiguous_covers_all_links_once(self):
        zones = partition_links(10, 3)
        combined = np.concatenate(zones)
        assert sorted(combined.tolist()) == list(range(10))
        assert [z.size for z in zones] == [4, 3, 3]

    def test_round_robin_stripes(self):
        zones = partition_links(7, 3, scheme="round-robin")
        assert zones[0].tolist() == [0, 3, 6]
        assert zones[1].tolist() == [1, 4]
        combined = np.concatenate(zones)
        assert sorted(combined.tolist()) == list(range(7))

    def test_validation(self):
        with pytest.raises(ValidationError):
            partition_links(4, 0)
        with pytest.raises(ValidationError):
            partition_links(2, 3)
        with pytest.raises(ValidationError):
            partition_links(4, 2, scheme="random")


class TestSpatial:
    @pytest.fixture(scope="class")
    def fit(self, tall_block):
        return SpatialCoordinator(num_zones=3, workers=1).fit(tall_block)

    def test_zone_structure(self, fit, tall_block):
        model = fit.model
        assert model.num_zones == 3
        assert model.num_links == tall_block.shape[1]
        assert len(model.zone_ranks) == 3
        spe = model.zone_spe(tall_block)
        assert spe.shape == (tall_block.shape[0], 3)
        assert np.all(spe >= 0)

    def test_fused_scores_per_mode(self, fit, tall_block):
        model = fit.model
        spe = model.zone_spe(tall_block)
        ratios = spe / model.zone_thresholds()
        assert np.array_equal(
            model.fuse(spe, "union"), ratios.max(axis=1)
        )
        assert np.array_equal(model.fuse(spe, "rescore"), spe.sum(axis=1))
        vote = model.fuse(spe, "vote")
        assert np.all(vote <= model.fuse(spe, "union"))
        with pytest.raises(ModelError, match="unknown fusion"):
            model.fuse(spe, "quorum")

    def test_union_alarm_iff_any_zone_alarms(self, fit, tall_block):
        model = fit.model
        spe = model.zone_spe(tall_block)
        per_zone = spe > model.zone_thresholds()
        assert np.array_equal(
            model.alarms(tall_block, "union"), per_zone.any(axis=1)
        )
        votes_needed = model.votes
        assert np.array_equal(
            model.alarms(tall_block, "vote"),
            per_zone.sum(axis=1) >= votes_needed,
        )

    def test_rescore_threshold_is_pooled_q_statistic(self, fit):
        from repro.core import q_threshold

        model = fit.model
        pooled = model.pooled_residual_eigenvalues()
        assert model.rescore_threshold() == q_threshold(
            pooled, confidence=model.confidence
        )
        assert model.rescore_threshold(0.95) < model.rescore_threshold(
            0.9999
        )

    def test_detects_the_injected_anomalies(self, fit, tall_block):
        for fusion in FUSION_MODES:
            alarms = fit.model.alarms(tall_block, fusion)
            assert alarms[1200] or alarms[2000], fusion

    def test_serial_equals_parallel(self, tall_block):
        serial = SpatialCoordinator(num_zones=3, workers=1).fit(tall_block)
        parallel = SpatialCoordinator(num_zones=3, workers=2).fit(
            tall_block
        )
        for fusion in FUSION_MODES:
            assert np.array_equal(
                serial.model.fused_score(tall_block, fusion),
                parallel.model.fused_score(tall_block, fusion),
            )

    def test_report_fields(self, fit, tall_block):
        payload = fit.report.to_json()
        assert payload["mode"] == "spatial"
        assert len(payload["model"]["normal_rank"]) == 3
        assert set(payload["fusion_thresholds"]) == set(FUSION_MODES)
        assert payload["fuse_seconds"] >= 0
        stable = fit.report.to_json(include_timings=False)
        assert "fuse_seconds" not in stable
        assert "worker_timings" not in stable

    def test_validation(self, tall_block):
        with pytest.raises(ValidationError):
            SpatialCoordinator(num_zones=0)
        with pytest.raises(ValidationError):
            SpatialCoordinator(votes=0)
        with pytest.raises(ValidationError):
            SpatialCoordinator(num_zones=2, votes=5).fit(tall_block)
        with pytest.raises(ValidationError):
            SpatialCoordinator(num_zones=100).fit(tall_block)
        with pytest.raises(ModelError):
            fit = SpatialCoordinator(num_zones=2).fit(tall_block)
            fit.model.zone_spe(tall_block[:, :5])
