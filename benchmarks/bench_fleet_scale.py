"""Multi-tenant fleet: tenant-scaling curve + per-tenant p99 isolation.

PR 9's scheduling contract, measured head-on:

* **Batched-vs-serial parity** — at every tenant count the stacked
  scoring kernel must be *bit-identical* to scoring each tenant
  serially.  Any mismatch fails the bench (and the CI smoke) outright.
* **Batched throughput floor** — at the largest tenant count the
  stacked kernel must beat the serial per-tenant loop by
  **>= MIN_BATCHED_SPEEDUP**.  The per-tenant kernel is tiny by design,
  so the serial loop's cost is dominated by Python dispatch — the
  scheduler, not BLAS, is the bottleneck the batching removes.  The
  curve records the dispatch-overhead fraction at every tenant count so
  the crossover is visible in the artifact.
* **Per-tenant p99 isolation floor** — scoring latency is sampled per
  tenant over many rounds; the slowest tenant's p99 must stay within
  **MAX_P99_ISOLATION_RATIO x** the median tenant's p99.  One tenant's
  position in the schedule must never starve another.

BLAS threading is pinned to one thread per process (set below, before
numpy loads) so the measured ratios are scheduling effects, not
thread-count drift; the pinning is recorded in the artifact's
environment block.

Artifacts: ``results/fleet_scale.txt`` (human-readable) and
``results/BENCH_fleet_scale.json`` (machine-readable: scaling curve,
floors, enforcement, per-tenant latency quantiles, thread environment).

Run standalone:  PYTHONPATH=src python benchmarks/bench_fleet_scale.py
CI smoke:        PYTHONPATH=src python benchmarks/bench_fleet_scale.py --smoke
"""

from __future__ import annotations

import os

for _var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
):
    os.environ.setdefault(_var, "1")

import time

import numpy as np

MIN_BATCHED_SPEEDUP = 1.2
MAX_P99_ISOLATION_RATIO = 25.0
#: At the largest tenant count, at most this fraction of the *batched*
#: wall clock may be dispatch (everything that is not the stacked
#: kernel: plan lookup, buffer fills, alarm assembly).  The precomputed
#: score plan exists to hold this down; the ceiling fails the bench if
#: dispatch creep re-grows around the kernel.
MAX_BATCHED_DISPATCH_OVERHEAD = 0.60
FULL_TENANT_COUNTS = (8, 32, 128, 512)
SMOKE_TENANT_COUNTS = (4, 16, 64)


def _time(fn, repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _build_fleet(num_tenants: int, warmup_rows: int, links: int):
    from repro.pipeline.fleet import FleetManager, synthetic_tenant_traffic

    fleet = FleetManager(workers=1, fault_policy="fail-fast")
    for index in range(num_tenants):
        tenant_id = f"tenant-{index:04d}"
        fleet.add_tenant(
            tenant_id,
            synthetic_tenant_traffic(tenant_id, warmup_rows, links=links),
        )
    return fleet


def _score_blocks(fleet, score_rows: int, links: int, start_row: int):
    from repro.pipeline.fleet import synthetic_tenant_traffic

    return {
        tenant_id: synthetic_tenant_traffic(
            tenant_id, score_rows, links=links, start_row=start_row
        )
        for tenant_id in fleet.tenants
    }


def measure_tenant_count(
    num_tenants: int,
    warmup_rows: int,
    score_rows: int,
    links: int,
    latency_rounds: int,
    repeats: int,
) -> dict:
    """One point on the scaling curve: fit, score both ways, sample p99."""
    fleet = _build_fleet(num_tenants, warmup_rows, links)

    fit_start = time.perf_counter()
    fit_report = fleet.fit(strict=True)
    fit_seconds = time.perf_counter() - fit_start
    if not fit_report.clean:
        raise AssertionError(f"fleet fit lost tenants at n={num_tenants}")

    blocks = _score_blocks(fleet, score_rows, links, start_row=warmup_rows)

    batched = fleet.score(blocks, batch=True)
    plan = dict(fleet.last_score_plan)
    serial = fleet.score(blocks, batch=False)
    parity_ok = all(
        np.array_equal(batched[t].spe, serial[t].spe)
        and np.array_equal(batched[t].flags, serial[t].flags)
        for t in fleet.tenants
    )

    batched_seconds = _time(lambda: fleet.score(blocks, batch=True), repeats)
    serial_seconds = _time(lambda: fleet.score(blocks, batch=False), repeats)
    batched_speedup = serial_seconds / batched_seconds
    # The stacked call is (almost) pure kernel; the serial loop adds one
    # scheduler dispatch per tenant on the same flops.  The fraction of
    # the serial wall clock that batching removes is therefore the
    # scheduler's share of the bill.
    dispatch_overhead_fraction = max(
        0.0, 1.0 - batched_seconds / serial_seconds
    )

    # The batched path's own overhead: time the bare stacked kernel on
    # the cached plan's parameter stacks and compare with the planned
    # dispatch (which adds plan lookup, buffer fills, and alarm
    # assembly on top of the same kernel call).
    from repro.core.subspace import score_block_stacked

    fleet.score(blocks, batch=True)  # ensure the plan is built and warm
    warm_plan = next(reversed(fleet._plan_cache.values()))
    stacked_groups = [g for g in warm_plan.groups if g.stacked]
    kernel_inputs = [
        (np.stack([blocks[t] for t in group.members]), group)
        for group in stacked_groups
    ]

    def run_kernels():
        for stacked, group in kernel_inputs:
            score_block_stacked(
                stacked,
                group.means,
                projectors=group.projectors,
                thresholds=group.thresholds,
                dtype=group.dtype,
                chunk_rows=fleet.chunk_rows,
            )

    kernel_seconds = _time(run_kernels, repeats)
    batched_dispatch_overhead_fraction = max(
        0.0, 1.0 - kernel_seconds / batched_seconds
    )

    # Per-tenant latency sampling: each round scores every tenant on its
    # own dispatch, so a tenant starved by the schedule shows up as an
    # inflated p99 relative to the median tenant.  The order is shuffled
    # every round (fixed seed) so OS noise lands on random tenants
    # instead of whichever id happens to sit at a resonant position; a
    # warmup round absorbs cold caches.
    rng = np.random.default_rng(20040830)
    tenant_ids = list(fleet.tenants)
    samples = {tenant_id: [] for tenant_id in tenant_ids}
    for round_index in range(latency_rounds + 1):
        order = rng.permutation(len(tenant_ids))
        for position in order:
            tenant_id = tenant_ids[position]
            single = {tenant_id: blocks[tenant_id]}
            start = time.perf_counter()
            fleet.score(single)
            elapsed = time.perf_counter() - start
            if round_index > 0:
                samples[tenant_id].append(elapsed)
    p99 = {
        tenant_id: float(np.quantile(times, 0.99))
        for tenant_id, times in samples.items()
    }
    p99_values = np.array(sorted(p99.values()))
    median_p99 = float(np.median(p99_values))
    max_p99 = float(p99_values[-1])
    isolation_ratio = max_p99 / median_p99 if median_p99 > 0 else float("inf")

    return {
        "tenants": num_tenants,
        "warmup_rows": warmup_rows,
        "score_rows": score_rows,
        "links": links,
        "fit_seconds": fit_seconds,
        "batched_score_seconds": batched_seconds,
        "serial_score_seconds": serial_seconds,
        "batched_speedup": batched_speedup,
        "dispatch_overhead_fraction": dispatch_overhead_fraction,
        "stacked_kernel_seconds": kernel_seconds,
        "batched_dispatch_overhead_fraction": (
            batched_dispatch_overhead_fraction
        ),
        "scheduler_bound": dispatch_overhead_fraction > 0.5,
        "parity_ok": bool(parity_ok),
        "score_plan": plan,
        "latency_rounds": latency_rounds,
        "per_tenant_p99_seconds": {
            "median": median_p99,
            "max": max_p99,
            "min": float(p99_values[0]),
        },
        "p99_isolation_ratio": isolation_ratio,
    }


def measure(smoke: bool = False) -> dict:
    """The full benchmark record (smaller grid in smoke mode)."""
    # Small per-round score windows are the fleet's design point (many
    # tenants, a few fresh rows each): the per-tenant kernel is tiny, so
    # the serial loop's bill is dispatch and batching pays it off.
    if smoke:
        tenant_counts = SMOKE_TENANT_COUNTS
        warmup_rows, score_rows, links = 96, 16, 16
        latency_rounds, repeats = 30, 2
    else:
        tenant_counts = FULL_TENANT_COUNTS
        warmup_rows, score_rows, links = 192, 16, 16
        latency_rounds, repeats = 120, 3
    curve = [
        measure_tenant_count(
            num_tenants,
            warmup_rows=warmup_rows,
            score_rows=score_rows,
            links=links,
            latency_rounds=latency_rounds,
            repeats=repeats,
        )
        for num_tenants in tenant_counts
    ]
    largest = curve[-1]
    return {
        "benchmark": "fleet_scale",
        "smoke": smoke,
        "floors": {
            "batched_speedup": MIN_BATCHED_SPEEDUP,
            "p99_isolation_ratio_max": MAX_P99_ISOLATION_RATIO,
            "dispatch_overhead_fraction_max": (
                MAX_BATCHED_DISPATCH_OVERHEAD
            ),
        },
        "floor_enforced": {
            "batched_speedup": True,
            "p99_isolation": True,
            "batched_dispatch_overhead": True,
        },
        "enforcement": {
            "cpu_count": os.cpu_count() or 1,
            "reason": "batched-speedup and p99-isolation floors enforced "
            "at every tenant count (single-process, no CPU precondition)",
        },
        "curve": curve,
        "scheduler_bottleneck": {
            "tenants": largest["tenants"],
            "dispatch_overhead_fraction": largest[
                "dispatch_overhead_fraction"
            ],
            "scheduler_bound": largest["scheduler_bound"],
        },
    }


def check_floors(stats: dict) -> list[str]:
    """Violations (empty = pass): parity always, floors as enforced."""
    failures: list[str] = []
    for point in stats["curve"]:
        n = point["tenants"]
        if not point["parity_ok"]:
            failures.append(
                f"tenants={n}: batched scoring diverged from serial"
            )
        if (
            stats["floor_enforced"]["p99_isolation"]
            and point["p99_isolation_ratio"]
            > stats["floors"]["p99_isolation_ratio_max"]
        ):
            failures.append(
                f"tenants={n}: p99 isolation ratio "
                f"{point['p99_isolation_ratio']:.1f}x above the "
                f"{stats['floors']['p99_isolation_ratio_max']:.0f}x ceiling"
            )
    largest = stats["curve"][-1]
    if (
        stats["floor_enforced"]["batched_speedup"]
        and largest["batched_speedup"] < stats["floors"]["batched_speedup"]
    ):
        failures.append(
            f"tenants={largest['tenants']}: batched speedup "
            f"{largest['batched_speedup']:.2f}x below the "
            f"{stats['floors']['batched_speedup']:.1f}x floor"
        )
    ceiling = stats["floors"].get("dispatch_overhead_fraction_max")
    if (
        stats["floor_enforced"].get("batched_dispatch_overhead")
        and ceiling is not None
        and largest["batched_dispatch_overhead_fraction"] > ceiling
    ):
        failures.append(
            f"tenants={largest['tenants']}: "
            f"{largest['batched_dispatch_overhead_fraction'] * 100:.0f}% "
            f"of the batched wall clock is dispatch, ceiling is "
            f"{ceiling * 100:.0f}%"
        )
    return failures


def render(stats: dict) -> str:
    lines = [
        "fleet scaling curve (batched vs serial scoring, per-tenant p99):"
    ]
    for point in stats["curve"]:
        lines.append(
            f"  {point['tenants']:>4} tenants: fit "
            f"{point['fit_seconds']:>7.3f} s | score "
            f"{point['batched_score_seconds'] * 1e3:>8.2f} ms batched vs "
            f"{point['serial_score_seconds'] * 1e3:>8.2f} ms serial "
            f"({point['batched_speedup']:.2f}x, dispatch "
            f"{point['dispatch_overhead_fraction'] * 100:.0f}% serial / "
            f"{point['batched_dispatch_overhead_fraction'] * 100:.0f}%"
            " batched) | "
            f"p99 iso {point['p99_isolation_ratio']:.1f}x"
        )
    bottleneck = stats["scheduler_bottleneck"]
    lines.append(
        f"at {bottleneck['tenants']} tenants the scheduler is "
        + (
            "the bottleneck"
            if bottleneck["scheduler_bound"]
            else "not yet the bottleneck"
        )
        + f" ({bottleneck['dispatch_overhead_fraction'] * 100:.0f}% of the "
        "serial wall clock is dispatch)"
    )
    lines.append(
        f"floors: batched >= {stats['floors']['batched_speedup']:.1f}x at "
        f"the largest count, p99 isolation <= "
        f"{stats['floors']['p99_isolation_ratio_max']:.0f}x, batched "
        f"dispatch <= "
        f"{stats['floors']['dispatch_overhead_fraction_max'] * 100:.0f}% "
        "(all enforced)"
    )
    return "\n".join(lines)


def test_fleet_scale(results_dir):
    """Pytest entry: re-runs the bench in a thread-pinned subprocess."""
    import json
    import subprocess
    import sys
    from pathlib import Path

    env = dict(os.environ)
    for var in (
        "OMP_NUM_THREADS",
        "OPENBLAS_NUM_THREADS",
        "MKL_NUM_THREADS",
    ):
        env[var] = "1"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(__file__).resolve().parent.parent / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    outcome = subprocess.run(
        [sys.executable, __file__, "--smoke"],
        env=env,
        capture_output=True,
        text=True,
    )
    print(outcome.stdout)
    assert outcome.returncode == 0, outcome.stdout + outcome.stderr
    payload = json.loads(
        (results_dir / "BENCH_fleet_scale.json").read_text()
    )
    assert not check_floors(payload)
    assert payload["floor_enforced"]["p99_isolation"]


if __name__ == "__main__":
    import argparse

    from conftest import RESULTS_DIR, write_json_result, write_result

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller tenant grid and fewer repeats; parity and floors "
        "still apply",
    )
    arguments = parser.parse_args()
    results = measure(smoke=arguments.smoke)
    print(render(results))
    RESULTS_DIR.mkdir(exist_ok=True)
    write_result(RESULTS_DIR, "fleet_scale", render(results))
    path = write_json_result(RESULTS_DIR, "fleet_scale", results)
    if not path.exists():
        raise SystemExit("FAIL: JSON artifact missing")
    failures = check_floors(results)
    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))
    print("OK")
