"""Supervised worker pool for the sharded detection plane.

``multiprocessing.Pool`` gives the coordinators fan-out but no fault
semantics: a worker that dies mid-task poisons the pool, a task that
hangs hangs ``pool.map`` forever, and nothing records what went wrong.
:class:`SupervisedPool` replaces it on the parallel fit paths with the
supervision loop a production detection plane needs:

* **per-task deadlines** — a task that exceeds its deadline is killed
  (the whole worker process, since a stuck numpy kernel cannot be
  interrupted) and the task is retried on a fresh worker;
* **worker-death detection** — each worker's process sentinel is
  multiplexed into the same ``multiprocessing.connection.wait`` call
  that collects results, so a crash (OOM kill, segfault, ``os._exit``)
  is observed immediately, not at join time;
* **bounded retry with exponential backoff + jitter** — every task gets
  ``1 + max_retries`` attempts; re-dispatch waits
  ``min(backoff_max, backoff_base·2^(attempt-1))`` scaled by a seeded
  jitter draw, so storms of correlated failures spread out but test
  runs stay deterministic;
* **task reassignment** — a retried task runs on any surviving (or
  freshly respawned) worker, never pinned to the one that failed;
* a typed :class:`FaultReport` — per-task attempts, timeouts, retries,
  reassignments, worker deaths, and permanently lost tasks — that the
  coordinators attach to their :class:`~repro.pipeline.sharded.ShardReport`.

Tasks and results travel over per-worker duplex pipes; the traffic
matrix itself still travels by fork inheritance or shared memory
exactly as before (see :mod:`repro.pipeline.sharded`), so the
supervised pool adds only control-plane overhead — the fault-free path
is benchmarked against the bare pool in
``benchmarks/bench_fault_overhead.py`` with a ≤10% overhead floor.

Fault injection for tests and the chaos harness rides the same
machinery: a picklable :class:`~repro.pipeline.faults.FaultPlan` is
handed to every worker at spawn, and the worker consults it per
``(stage, task, attempt)`` before running the real kernel (see
:mod:`repro.pipeline.faults`).
"""

from __future__ import annotations

import os
import random
import time
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from multiprocessing import connection as mp_connection

from repro.exceptions import SupervisionError, ValidationError

__all__ = [
    "FAULT_POLICIES",
    "FaultReport",
    "PoolRun",
    "SupervisedPool",
    "TaskFault",
]

#: Degraded-mode policies of the supervised fit paths.
#:
#: ``fail-fast``
#:     No retries; the first lost task aborts the fit.
#: ``retry``
#:     Up to ``max_retries`` re-dispatches per task (backoff + jitter);
#:     a task that exhausts its budget aborts the fit.  A retried-to-
#:     success run is bit-identical to the fault-free run.
#: ``partial``
#:     Same retry budget, but exhausted tasks are *dropped*: the fit
#:     proceeds from the surviving sufficient statistics and records
#:     the ``coverage`` fraction.
FAULT_POLICIES = ("fail-fast", "retry", "partial")

#: Exit code a worker uses for an injected crash (distinguishable from
#: a real segfault's negative signal code in the fault report detail).
_INJECTED_CRASH_EXIT = 17


@dataclass(frozen=True)
class TaskFault:
    """One observed fault on one task attempt."""

    task: int
    attempt: int
    kind: str  # "timeout" | "worker_death" | "error"
    worker: int
    detail: str = ""

    def to_json(self) -> dict:
        return {
            "task": self.task,
            "attempt": self.attempt,
            "kind": self.kind,
            "worker": self.worker,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class FaultReport:
    """Typed account of everything that went wrong (or didn't).

    Attached to :class:`~repro.pipeline.sharded.ShardReport` by the
    coordinators and merged across the stats/moments passes.  A clean
    run has ``attempts == tasks`` and empty ``faults``.
    """

    tasks: int = 0
    attempts: int = 0
    timeouts: int = 0
    retries: int = 0
    reassignments: int = 0
    worker_deaths: int = 0
    lost_tasks: tuple[int, ...] = ()
    faults: tuple[TaskFault, ...] = ()

    @property
    def clean(self) -> bool:
        """True when every task succeeded on its first attempt."""
        return not self.faults and not self.lost_tasks

    def merge(self, other: "FaultReport") -> "FaultReport":
        """Combine the accounts of two pool runs (stats + moments)."""
        return FaultReport(
            tasks=self.tasks + other.tasks,
            attempts=self.attempts + other.attempts,
            timeouts=self.timeouts + other.timeouts,
            retries=self.retries + other.retries,
            reassignments=self.reassignments + other.reassignments,
            worker_deaths=self.worker_deaths + other.worker_deaths,
            lost_tasks=self.lost_tasks + other.lost_tasks,
            faults=self.faults + other.faults,
        )

    def to_json(self) -> dict:
        return {
            "tasks": self.tasks,
            "attempts": self.attempts,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "reassignments": self.reassignments,
            "worker_deaths": self.worker_deaths,
            "lost_tasks": list(self.lost_tasks),
            "faults": [fault.to_json() for fault in self.faults],
        }


@dataclass(frozen=True)
class PoolRun:
    """Outcome of one :meth:`SupervisedPool.run` call.

    ``results[i]`` is task ``i``'s return value, or ``None`` when the
    task was permanently lost (``i`` then appears in
    ``report.lost_tasks``; the caller's fault policy decides whether
    that is fatal).
    """

    results: list
    report: FaultReport


def _worker_main(conn, worker_id: int, fault_plan) -> None:
    """Worker loop: receive ``(stage, task, attempt, fn, payload)``,
    consult the fault plan, run the kernel, send the outcome back."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent vanished
            return
        if message is None:
            return
        stage, task, attempt, fn, payload = message
        if fault_plan is not None:
            action = fault_plan.action_for(stage, task, attempt)
            if action is not None:
                if action.action == "crash":
                    os._exit(_INJECTED_CRASH_EXIT)
                if action.action == "hang":
                    time.sleep(action.seconds)
                elif action.action == "error":
                    conn.send((task, attempt, "error", "injected task error"))
                    continue
        try:
            result = fn(payload)
        except BaseException as err:  # noqa: BLE001 - report, don't die
            conn.send(
                (task, attempt, "error", f"{type(err).__name__}: {err}")
            )
        else:
            conn.send((task, attempt, "ok", result))


class _Worker:
    """One supervised worker process plus its control pipe."""

    def __init__(self, ctx, worker_id: int, fault_plan) -> None:
        self.id = worker_id
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, worker_id, fault_plan),
            name=f"repro-supervised-{worker_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        # (task, attempt, deadline | None) while busy, else None.
        self.assignment: tuple[int, int, float | None] | None = None

    @property
    def sentinel(self):
        return self.process.sentinel

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, ValueError):  # pragma: no cover - already dead
            pass
        self.process.join()
        self.conn.close()

    def stop(self) -> None:
        """Ask the worker to exit; escalate to kill if it doesn't."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.kill()
            self.process.join()
        self.conn.close()


class SupervisedPool:
    """Deadline/retry/death-aware replacement for ``Pool.map``.

    Use as a context manager; workers are spawned at ``__enter__`` and
    torn down at ``__exit__``.  One pool may serve several :meth:`run`
    calls (the coordinators reuse it across the stats and moments
    passes), with workers killed by faults respawned transparently.

    Parameters
    ----------
    workers:
        Worker processes to keep alive.
    deadline:
        Per-task wall-clock budget in seconds; ``None`` disables
        deadlines (a hung worker then hangs the run — required to be
        set when the fault plan injects hangs).
    max_retries:
        Additional attempts after the first, per task.
    backoff_base, backoff_max, jitter, seed:
        Retry delay parameters: attempt ``a``'s re-dispatch waits
        ``min(backoff_max, backoff_base·2^(a-1)) · (1 + jitter·u)``
        with ``u`` drawn from a ``random.Random(seed)`` — deterministic
        for a fixed seed.
    fault_plan:
        Optional :class:`~repro.pipeline.faults.FaultPlan` handed to
        every worker (fault injection for tests/chaos).
    mp_context:
        Multiprocessing context; default is the platform default (fork
        on Linux, matching the coordinators' zero-copy inheritance).
    """

    def __init__(
        self,
        workers: int,
        deadline: float | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        jitter: float = 0.25,
        seed: int = 0,
        fault_plan=None,
        mp_context=None,
    ) -> None:
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if deadline is not None and deadline <= 0:
            raise ValidationError(f"deadline must be > 0, got {deadline}")
        if max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if fault_plan is not None and deadline is None:
            if any(f.action == "hang" for f in fault_plan.faults):
                raise ValidationError(
                    "a fault plan that injects hangs requires a deadline "
                    "(otherwise the hang is unbounded)"
                )
        if mp_context is None:
            import multiprocessing

            mp_context = multiprocessing.get_context()
        self.workers = int(workers)
        self.deadline = deadline
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self.fault_plan = fault_plan
        self._ctx = mp_context
        self._rng = random.Random(seed)
        self._pool: dict[int, _Worker] = {}
        self._next_worker_id = 0
        self._entered = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "SupervisedPool":
        self._entered = True
        while len(self._pool) < self.workers:
            self._spawn()
        return self

    def __exit__(self, *exc_info) -> None:
        self._entered = False
        for worker in list(self._pool.values()):
            worker.stop()
        self._pool.clear()

    def _spawn(self) -> _Worker:
        worker = _Worker(self._ctx, self._next_worker_id, self.fault_plan)
        self._next_worker_id += 1
        self._pool[worker.id] = worker
        return worker

    def _backoff_delay(self, attempt: int) -> float:
        base = min(
            self.backoff_max, self.backoff_base * (2 ** (attempt - 1))
        )
        return base * (1.0 + self.jitter * self._rng.random())

    # ------------------------------------------------------------------
    def run(
        self,
        fn: Callable,
        payloads: Sequence,
        stage: str = "",
    ) -> PoolRun:
        """Run ``fn`` over ``payloads``; return ordered results + report.

        ``fn`` must be a picklable module-level callable.  ``stage``
        labels the run for fault-plan matching (the coordinators use
        ``"stats"`` / ``"moments"`` / ``"zones"``).
        """
        if not self._entered:
            raise SupervisionError(
                "SupervisedPool must be entered (use it as a context "
                "manager) before run()"
            )
        payloads = list(payloads)
        total = len(payloads)
        results: list = [None] * total
        completed = [False] * total
        faults: list[TaskFault] = []
        lost: list[int] = []
        attempts = timeouts = retries = reassignments = deaths = 0
        resolved = 0

        pending: deque[tuple[int, int]] = deque(
            (task, 1) for task in range(total)
        )
        # (due_monotonic, task, attempt) awaiting their backoff delay.
        delayed: list[tuple[float, int, int]] = []

        def schedule_retry(task: int, attempt: int) -> None:
            nonlocal retries, resolved
            if attempt >= 1 + self.max_retries:
                lost.append(task)
                resolved += 1
                return
            retries += 1
            due = time.monotonic() + self._backoff_delay(attempt)
            delayed.append((due, task, attempt + 1))

        def dispatch(worker: _Worker, task: int, attempt: int) -> bool:
            nonlocal attempts
            try:
                worker.conn.send((stage, task, attempt, fn, payloads[task]))
            except (BrokenPipeError, OSError):
                # The worker died while idle; replace it and let the
                # caller re-dispatch elsewhere.
                self._pool.pop(worker.id, None)
                worker.kill()
                self._spawn()
                return False
            attempts += 1
            deadline = (
                None
                if self.deadline is None
                else time.monotonic() + self.deadline
            )
            worker.assignment = (task, attempt, deadline)
            return True

        def fail_attempt(
            worker: _Worker, kind: str, detail: str, respawn: bool
        ) -> None:
            """Account one failed attempt and schedule its retry."""
            nonlocal timeouts, deaths, reassignments
            task, attempt, _ = worker.assignment
            worker.assignment = None
            faults.append(
                TaskFault(
                    task=task,
                    attempt=attempt,
                    kind=kind,
                    worker=worker.id,
                    detail=detail,
                )
            )
            if kind == "timeout":
                timeouts += 1
            elif kind == "worker_death":
                deaths += 1
            if respawn:
                self._pool.pop(worker.id, None)
                worker.kill()
                self._spawn()
                reassignments += 1
            schedule_retry(task, attempt)

        while resolved < total:
            now = time.monotonic()
            if delayed:
                due_now = [item for item in delayed if item[0] <= now]
                for item in due_now:
                    delayed.remove(item)
                    pending.append((item[1], item[2]))
            idle = [w for w in self._pool.values() if w.assignment is None]
            while pending and idle:
                task, attempt = pending.popleft()
                worker = idle.pop()
                if not dispatch(worker, task, attempt):
                    pending.appendleft((task, attempt))
                    idle = [
                        w
                        for w in self._pool.values()
                        if w.assignment is None
                    ]

            busy = [w for w in self._pool.values() if w.assignment is not None]
            if not busy:
                if pending:
                    continue  # a dispatch failed; fresh workers are up
                if delayed:
                    next_due = min(item[0] for item in delayed)
                    time.sleep(max(0.0, next_due - time.monotonic()))
                    continue
                break  # nothing in flight, nothing queued: all resolved

            wait_until: float | None = None
            for worker in busy:
                deadline = worker.assignment[2]
                if deadline is not None:
                    wait_until = (
                        deadline
                        if wait_until is None
                        else min(wait_until, deadline)
                    )
            for due, _, _ in delayed:
                wait_until = due if wait_until is None else min(wait_until, due)
            timeout = (
                None
                if wait_until is None
                else max(0.0, wait_until - time.monotonic())
            )
            watch: dict = {}
            for worker in busy:
                watch[worker.conn] = worker
                watch[worker.sentinel] = worker
            ready = mp_connection.wait(list(watch), timeout=timeout)

            handled: set[int] = set()
            for handle in ready:
                worker = watch[handle]
                if worker.id in handled or worker.assignment is None:
                    continue
                handled.add(worker.id)
                if handle is worker.conn:
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        fail_attempt(
                            worker,
                            "worker_death",
                            "result pipe closed mid-task",
                            respawn=True,
                        )
                        continue
                    task, attempt, status, value = message
                    worker.assignment = None
                    if status == "ok":
                        if not completed[task]:
                            completed[task] = True
                            results[task] = value
                            resolved += 1
                    else:
                        faults.append(
                            TaskFault(
                                task=task,
                                attempt=attempt,
                                kind="error",
                                worker=worker.id,
                                detail=str(value),
                            )
                        )
                        schedule_retry(task, attempt)
                else:  # the process sentinel fired: the worker died
                    exitcode = worker.process.exitcode
                    fail_attempt(
                        worker,
                        "worker_death",
                        f"worker exited with code {exitcode}",
                        respawn=True,
                    )

            now = time.monotonic()
            for worker in list(self._pool.values()):
                if worker.assignment is None or worker.id in handled:
                    continue
                deadline = worker.assignment[2]
                if deadline is not None and now >= deadline:
                    fail_attempt(
                        worker,
                        "timeout",
                        f"task exceeded its {self.deadline:.3g}s deadline",
                        respawn=True,
                    )

        report = FaultReport(
            tasks=total,
            attempts=attempts,
            timeouts=timeouts,
            retries=retries,
            reassignments=reassignments,
            worker_deaths=deaths,
            lost_tasks=tuple(sorted(lost)),
            faults=tuple(faults),
        )
        return PoolRun(results=results, report=report)


def raise_if_lost(
    run: PoolRun, what: str, policy: str
) -> None:
    """Raise :class:`SupervisionError` when lost tasks are fatal.

    Under ``partial`` lost tasks are tolerated (the caller drops their
    shards and records coverage); under ``fail-fast``/``retry`` any
    loss aborts the fit.
    """
    if policy == "partial" or not run.report.lost_tasks:
        return
    lost = ", ".join(str(task) for task in run.report.lost_tasks)
    raise SupervisionError(
        f"{what}: task(s) {lost} exhausted their retry budget under the "
        f"{policy!r} fault policy "
        f"({run.report.worker_deaths} worker death(s), "
        f"{run.report.timeouts} timeout(s))",
        report=run.report,
    )


def resolve_policy(policy: str | None, default: str) -> str:
    """Validate a fault policy, falling back to ``default``."""
    resolved = default if policy is None else policy
    if resolved not in FAULT_POLICIES:
        raise ValidationError(
            f"unknown fault policy {resolved!r}; "
            f"choose from {FAULT_POLICIES}"
        )
    return resolved
