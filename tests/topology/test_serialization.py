"""Tests for repro.topology.serialization."""

import pytest

from repro.exceptions import TopologyError
from repro.topology import (
    abilene,
    network_from_dict,
    network_from_json,
    network_to_dict,
    network_to_json,
    toy_network,
)


class TestRoundTrip:
    def test_dict_round_trip_preserves_structure(self):
        original = abilene()
        rebuilt = network_from_dict(network_to_dict(original))
        assert rebuilt.name == original.name
        assert rebuilt.pop_names == original.pop_names
        assert [link.name for link in rebuilt.links] == [
            link.name for link in original.links
        ]

    def test_dict_round_trip_preserves_attributes(self):
        original = abilene()
        rebuilt = network_from_dict(network_to_dict(original))
        for a, b in zip(original.pops, rebuilt.pops):
            assert a == b
        for a, b in zip(original.links, rebuilt.links):
            assert a == b

    def test_json_round_trip(self):
        original = toy_network()
        rebuilt = network_from_json(network_to_json(original))
        assert rebuilt.pop_names == original.pop_names
        assert rebuilt.num_links == original.num_links

    def test_link_indices_survive_round_trip(self):
        original = abilene()
        rebuilt = network_from_json(network_to_json(original))
        for link in original.links:
            assert rebuilt.link_index(link.name) == original.link_index(link.name)


class TestErrors:
    def test_wrong_version_rejected(self):
        payload = network_to_dict(toy_network())
        payload["format_version"] = 99
        with pytest.raises(TopologyError, match="version"):
            network_from_dict(payload)

    def test_missing_field_rejected(self):
        payload = network_to_dict(toy_network())
        del payload["links"]
        with pytest.raises(TopologyError):
            network_from_dict(payload)

    def test_invalid_json_rejected(self):
        with pytest.raises(TopologyError, match="invalid topology JSON"):
            network_from_json("{not json")

    def test_non_object_json_rejected(self):
        with pytest.raises(TopologyError, match="object"):
            network_from_json("[1, 2, 3]")
