"""The multi-tenant fleet as a registry detector.

:class:`FleetSubspaceDetector` partitions the link set into per-tenant
column groups, fits one independent subspace model per tenant on a
shared :class:`~repro.pipeline.fleet.FleetManager`, and scores with the
fleet's batched scheduler (same-width tenants ride a single stacked
kernel call).  Wrapping the fleet in the unified
:class:`~repro.detectors.base.Detector` contract lets the comparison
engine rank per-tenant modeling head-to-head against the monolithic
``subspace`` detector and the zone-fused ``sharded-subspace`` plane.

The fused statistic is the worst per-tenant threshold ratio
``max_k SPE_k / δ²_k`` — an alarm fires when *some* tenant's model
flags its slice.  The ratio has no closed-form limit, so
``threshold_at`` calibrates an empirical training-score quantile, the
same calibration the ``union``/``vote`` fusion modes and the temporal
baselines use.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import ResidualEnergyDetector
from repro.exceptions import ModelError
from repro.pipeline.fleet import FleetManager
from repro.pipeline.sharded import partition_links

__all__ = ["FleetSubspaceDetector"]


class FleetSubspaceDetector(ResidualEnergyDetector):
    """Per-tenant subspace models behind the fleet scheduler.

    Parameters
    ----------
    confidence:
        Default confidence level (per-tenant Q-limits and the fused
        operating point).
    tenants:
        Link partitions / tenant models (clamped to the link count at
        fit time).
    scheme:
        Link partition scheme (``"contiguous"`` or ``"round-robin"``).
    threshold_sigma, normal_rank:
        Per-tenant model parameters.
    workers:
        Shared-pool workers for the tenant fits (1 = in-process; the
        fitted models are identical either way).
    """

    def __init__(
        self,
        confidence: float = 0.999,
        tenants: int = 2,
        scheme: str = "contiguous",
        threshold_sigma: float = 3.0,
        normal_rank: int | None = None,
        workers: int = 1,
    ) -> None:
        super().__init__(name="fleet-subspace", confidence=confidence)
        if tenants < 1:
            raise ModelError(f"tenants must be >= 1, got {tenants}")
        self.tenants = tenants
        self.scheme = scheme
        self.threshold_sigma = threshold_sigma
        self.normal_rank = normal_rank
        self.workers = workers
        self._fleet: FleetManager | None = None
        self._zones: tuple[np.ndarray, ...] | None = None
        self._train_scores: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._fleet is not None

    @property
    def fleet(self) -> FleetManager:
        """The fitted fleet (per-tenant versioned models + scheduler)."""
        self._require_fitted()
        return self._fleet

    def _tenant_blocks(self, block: np.ndarray) -> dict[str, np.ndarray]:
        return {
            f"zone-{i:03d}": np.ascontiguousarray(block[:, zone])
            for i, zone in enumerate(self._zones)
        }

    def fit(self, measurements: np.ndarray) -> "FleetSubspaceDetector":
        block = self._as_block(measurements)
        self._zones = partition_links(
            block.shape[1], min(self.tenants, block.shape[1]), self.scheme
        )
        fleet = FleetManager(
            workers=self.workers,
            confidence=self.confidence,
            threshold_sigma=self.threshold_sigma,
            normal_rank=self.normal_rank,
        )
        self._fleet = fleet
        for tenant_id, tenant_block in self._tenant_blocks(block).items():
            fleet.add_tenant(tenant_id, tenant_block)
        fleet.fit(strict=True)
        self._train_scores = self._fused(block)
        return self

    def _fused(self, block: np.ndarray) -> np.ndarray:
        alarms = self._fleet.score(self._tenant_blocks(block))
        # A tenant whose normal subspace spans its whole slice has an
        # exactly-zero projector and threshold: its SPE is identically
        # 0 and it can never alarm — its ratio is 0, never 0/0.
        ratios = np.stack(
            [
                a.spe / a.threshold
                if a.threshold > 0
                else np.where(a.spe > 0, np.inf, 0.0)
                for a in alarms.values()
            ]
        )
        return ratios.max(axis=0)

    def score(self, measurements: np.ndarray) -> np.ndarray:
        self._require_fitted()
        block = self._as_block(measurements)
        if block.shape[1] != sum(len(z) for z in self._zones):
            raise ModelError(
                f"measurements have {block.shape[1]} links, fleet was "
                f"fitted on {sum(len(z) for z in self._zones)}"
            )
        return self._fused(block)

    def threshold_at(self, confidence: float) -> float:
        self._require_fitted()
        return float(np.quantile(self._train_scores, confidence))
