"""Online (streaming) application of the subspace method (§7.1).

The paper envisions the method as a first-level online monitoring tool:
the expensive part — the decomposition — runs occasionally (the
projection matrix ``P Pᵀ`` is stable week to week), while each arriving
measurement vector costs only one matrix-vector product.

:class:`OnlineSubspaceDetector` is the **per-arrival adapter** over the
library's single streaming engine — the exponentially weighted
incremental tracker behind
:class:`~repro.pipeline.streaming.StreamingDetector`.  It used to carry
its own sliding-window refit loop (a second, drift-prone streaming
implementation); it now warms up a batch model, seeds the tracker from
the batch moments, and feeds each arrival through the identical
score → identify → fold path the windowed pipeline uses, one-row
windows at a time.  ``window_bins`` sets the effective memory (the
exponential forgetting factor is ``1 / window_bins``) and
``refit_interval`` the eigendecomposition refresh cadence.  Contract
tests pin the two surfaces to each other so they cannot drift apart
again.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError, NotFittedError
from repro.routing.routing_matrix import RoutingMatrix

__all__ = ["OnlineSubspaceDetector", "StreamDiagnosis"]


@dataclass(frozen=True)
class StreamDiagnosis:
    """Outcome for one streamed measurement vector.

    Attributes
    ----------
    index:
        Arrival counter (0-based, counting from the start of streaming).
    spe, threshold:
        The arrival's squared prediction error and the current limit.
    is_anomalous:
        Whether detection fired.
    flow_index, od_pair, estimated_bytes:
        Identification/quantification results — only populated when
        detection fired and a routing matrix was supplied.
    model_age:
        Arrivals processed since the eigendecomposition last refreshed.
    """

    index: int
    spe: float
    threshold: float
    is_anomalous: bool
    flow_index: int | None
    od_pair: tuple[str, str] | None
    estimated_bytes: float | None
    model_age: int


class OnlineSubspaceDetector:
    """Per-arrival streaming diagnosis on the incremental tracker.

    Parameters
    ----------
    window_bins:
        Effective model memory in arrivals — one week of 10-minute bins
        (1008) in the paper's setting.  The warm-up model is fitted on
        the trailing ``window_bins`` rows of the warm-up block, and the
        tracker forgets with factor ``1 / window_bins``.
    refit_interval:
        Refresh the tracked eigendecomposition every this many arrivals
        (None = keep the warm-up basis forever; §7.1 notes weekly
        stability).  The refresh is an ``m × m`` eigensolve of the
        tracked moments — the streaming analog of the old full refit.
    confidence, threshold_sigma, normal_rank:
        Forwarded to the warm-up batch fit
        (:class:`~repro.core.detection.SPEDetector` parameters).
    routing:
        Optional routing matrix enabling identification/quantification
        of flagged arrivals.
    """

    def __init__(
        self,
        window_bins: int = 1008,
        refit_interval: int | None = 144,
        confidence: float = 0.999,
        threshold_sigma: float = 3.0,
        normal_rank: int | None = None,
        routing: RoutingMatrix | None = None,
    ) -> None:
        if window_bins < 2:
            raise ModelError(f"window_bins must be >= 2, got {window_bins}")
        if refit_interval is not None and refit_interval < 1:
            raise ModelError(
                f"refit_interval must be >= 1 or None, got {refit_interval}"
            )
        self.window_bins = window_bins
        self.refit_interval = refit_interval
        self.routing = routing
        self.confidence = confidence
        self.threshold_sigma = threshold_sigma
        self.normal_rank = normal_rank
        self._streaming = None  # StreamingDetector once warmed up
        self._arrivals = 0

    # ------------------------------------------------------------------
    def warm_up(self, measurements: np.ndarray) -> "OnlineSubspaceDetector":
        """Fit the batch model and seed the tracker from its moments."""
        from repro.pipeline.pipeline import DetectionPipeline

        measurements = np.asarray(measurements, dtype=np.float64)
        if measurements.ndim != 2:
            raise ModelError(
                f"warm-up data must be (t, m), got shape {measurements.shape}"
            )
        if measurements.shape[0] < 2:
            raise ModelError("warm-up needs at least 2 measurement vectors")
        window = measurements[-self.window_bins :]
        pipeline = DetectionPipeline(
            confidence=self.confidence,
            threshold_sigma=self.threshold_sigma,
            normal_rank=self.normal_rank,
        ).fit(window, routing=self.routing)
        self._streaming = pipeline.streaming(
            forgetting=1.0 / self.window_bins,
            refresh_interval=self.refit_interval,
        )
        return self

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """True once :meth:`warm_up` has run."""
        return self._streaming is not None

    @property
    def threshold(self) -> float:
        """Current SPE limit."""
        if self._streaming is None:
            raise NotFittedError("warm_up must be called before streaming")
        return self._streaming.threshold

    def process(self, measurement: np.ndarray) -> StreamDiagnosis:
        """Score one arriving measurement vector and fold it in.

        The vector is scored against the *pre-arrival* model — a one-row
        window through the shared streaming engine — then folded into
        the exponentially weighted statistics.  Anomalous arrivals are
        still admitted: with a week of effective memory a single spike
        barely perturbs the eigenstructure, and excluding flagged bins
        would make the model blind to slow drifts.
        """
        if self._streaming is None:
            raise NotFittedError("warm_up must be called before streaming")
        measurement = np.asarray(measurement, dtype=np.float64)
        if measurement.ndim != 1:
            raise ModelError(
                f"streamed measurements must be vectors, got {measurement.shape}"
            )
        model_age = self._streaming.tracker.since_refresh
        window = self._streaming.process_window(
            measurement[None, :], refresh=False
        )
        flagged = bool(window.flags[0])
        flow_index: int | None = None
        od_pair: tuple[str, str] | None = None
        estimated: float | None = None
        if flagged and window.od_pairs:
            flow_index = int(window.flow_indices[0])
            od_pair = window.od_pairs[0]
            estimated = float(window.estimated_bytes[0])
        outcome = StreamDiagnosis(
            index=self._arrivals,
            spe=float(window.spe[0]),
            threshold=window.threshold,
            is_anomalous=flagged,
            flow_index=flow_index,
            od_pair=od_pair,
            estimated_bytes=estimated,
            model_age=model_age,
        )
        self._arrivals += 1
        return outcome

    def process_block(self, measurements: np.ndarray) -> list[StreamDiagnosis]:
        """Stream a ``(t, m)`` block row by row."""
        measurements = np.asarray(measurements, dtype=np.float64)
        if measurements.ndim != 2:
            raise ModelError(
                f"expected a (t, m) block, got shape {measurements.shape}"
            )
        return [self.process(row) for row in measurements]
