"""Tests for repro.routing.ecmp."""

import pytest

from repro.exceptions import RoutingError
from repro.routing import SPFRouting, ecmp_link_fractions
from repro.routing.ecmp import ecmp_routes
from repro.topology import Network, toy_network
from repro.topology.builders import ring_network


class TestECMPLinkFractions:
    def test_single_path_gets_full_fraction(self):
        net = toy_network()
        fractions = ecmp_link_fractions(net, "a", "b")
        assert fractions == {"a->b": 1.0}

    def test_even_split_on_ring(self):
        net = ring_network(4)
        fractions = ecmp_link_fractions(net, "p0", "p2")
        assert fractions["p0->p1"] == pytest.approx(0.5)
        assert fractions["p0->p3"] == pytest.approx(0.5)
        assert fractions["p1->p2"] == pytest.approx(0.5)
        assert fractions["p3->p2"] == pytest.approx(0.5)

    def test_flow_conservation_at_destination(self):
        net = ring_network(6)
        fractions = ecmp_link_fractions(net, "p0", "p3")
        into_destination = sum(
            fraction
            for link, fraction in fractions.items()
            if link.endswith("->p3")
        )
        assert into_destination == pytest.approx(1.0)

    def test_same_pop_flow(self):
        net = toy_network()
        assert ecmp_link_fractions(net, "a", "a") == {"a=a": 1.0}

    def test_unreachable_raises(self):
        net = Network.from_edges("split", ["a", "b", "c", "d"], [("a", "b"), ("c", "d")])
        with pytest.raises(RoutingError, match="no path"):
            ecmp_link_fractions(net, "a", "c")

    def test_per_node_splitting_semantics(self):
        # Diamond with a doubled upper branch:
        #   s -> u1 -> t and s -> u2 -> t and u1 also reaches t via w
        # Construct: s-u1, s-u2, u1-t, u2-t, u1-w, w-t with weights making
        # u1->w->t equal cost to u1->t (2 hops vs 1? no) - use weights.
        net = Network("diamond")
        from repro.topology import PoP

        for name in ("s", "u1", "u2", "w", "t"):
            net.add_pop(PoP(name))
        net.add_bidirectional("s", "u1")
        net.add_bidirectional("s", "u2")
        net.add_bidirectional("u1", "t", weight=2.0)
        net.add_bidirectional("u2", "t", weight=2.0)
        net.add_bidirectional("u1", "w")
        net.add_bidirectional("w", "t")
        net.add_intra_pop_links()
        # s->t: via u1 (1+2=3), via u2 (1+2=3), via u1,w (1+1+1=3): all equal.
        fractions = ecmp_link_fractions(net, "s", "t")
        # s splits 1/2 to u1 and u2; u1 splits its half into quarters.
        assert fractions["s->u1"] == pytest.approx(0.5)
        assert fractions["s->u2"] == pytest.approx(0.5)
        assert fractions["u1->t"] == pytest.approx(0.25)
        assert fractions["u1->w"] == pytest.approx(0.25)
        assert fractions["u2->t"] == pytest.approx(0.5)


class TestECMPRoutes:
    def test_fractions_sum_to_one(self):
        net = ring_network(4)
        routes = ecmp_routes(net, "p0", "p2")
        assert sum(r.fraction for r in routes) == pytest.approx(1.0)
        assert len(routes) == 2

    def test_spf_with_ecmp_enabled(self):
        net = ring_network(4)
        table = SPFRouting(net, ecmp=True).compute()
        routes = table.routes("p0", "p2")
        assert len(routes) == 2
        assert {r.fraction for r in routes} == {0.5}

    def test_route_fraction_is_product_of_branching(self):
        net = ring_network(4)
        routes = ecmp_routes(net, "p0", "p2")
        for route in routes:
            assert route.fraction == pytest.approx(0.5)
