"""Table 3: results on diagnosing synthetic volume anomalies.

Runs the §6.3 injection sweeps (every OD flow x every timestep of a day)
at the paper's large and small sizes for Sprint and Abilene, and renders
the four-row table.
"""

from repro.validation import render_table3
from repro.validation.experiments import run_synthetic_experiment

from conftest import write_result


def test_table3_synthetic(benchmark, sprint1, abilene_ds, results_dir):
    def run():
        rows = []
        for dataset in (sprint1, abilene_ds):
            large, small, _ = run_synthetic_experiment(dataset)
            rows.append((large, small))
        return rows

    pairs = benchmark(run)
    flat = [row for pair in pairs for row in pair]
    write_result(results_dir, "table3_synthetic", render_table3(flat))

    for large, small in pairs:
        # Paper Table 3 shape:
        #   large: detection ~90%+, identification high, quant ~20%.
        assert large.detection_rate > 0.85
        assert large.identification_rate > 0.65
        assert large.quantification_error < 0.35
        #   small: rarely detected (the desired false-anomaly rejection).
        assert small.detection_rate < 0.35
        assert large.detection_rate > 3 * small.detection_rate


def test_injection_sweep_cost(benchmark, sprint1):
    """Cost of one full vectorized day x all-flows sweep (24 336 cells)."""
    from repro.validation import InjectionStudy

    study = InjectionStudy(sprint1)
    result = benchmark(study.run, 3.0e7)
    assert result.detected.shape == (144, 169)
