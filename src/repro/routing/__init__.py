"""Routing substrate.

The paper relates link traffic to OD-flow traffic through the routing
matrix ``A`` (``y = Ax``, §4.1): ``A[i, j] = 1`` when OD flow ``j``
traverses link ``i``.  This subpackage computes shortest paths over a
:class:`~repro.topology.network.Network` with an IS-IS-like shortest-path-
first protocol, materializes routing tables, and builds the routing matrix
(binary for single-path routing, fractional under ECMP).
"""

from repro.routing.paths import all_shortest_paths, path_links, shortest_path
from repro.routing.tables import Route, RoutingTable
from repro.routing.protocol import SPFRouting
from repro.routing.ecmp import ecmp_link_fractions
from repro.routing.routing_matrix import RoutingMatrix, build_routing_matrix
from repro.routing.events import LinkFailure, WeightChange, apply_events

__all__ = [
    "shortest_path",
    "all_shortest_paths",
    "path_links",
    "Route",
    "RoutingTable",
    "SPFRouting",
    "ecmp_link_fractions",
    "RoutingMatrix",
    "build_routing_matrix",
    "LinkFailure",
    "WeightChange",
    "apply_events",
]
