"""Unified detector layer.

One protocol — ``fit(X)``, ``score(X) → per-timestep residual energy``,
``detect(X, confidence) → alarms`` — covers the paper's subspace method
and all five temporal baselines, each reachable by name through the
registry:

>>> from repro import detectors
>>> det = detectors.get("subspace", confidence=0.999)
>>> det = detectors.get("ewma")

The layer exists to make the paper's central *comparative* claim (§6.2,
Fig. 10) a first-class workload: anything that can rank detectors —
the :class:`~repro.pipeline.compare.ComparisonRunner` grid, the ROC
harness, the CLI — talks to this interface and never to a concrete
model class.  See ``docs/detectors.md`` for the guide and the registry
recipe for adding detectors.
"""

from repro.detectors.base import Detector, DetectorAlarms, ResidualEnergyDetector
from repro.detectors.registry import (
    aliases,
    available,
    get,
    get_factory,
    register,
    resolve_names,
)
from repro.detectors.sharded import ShardedSubspaceDetector
from repro.detectors.streaming import StreamingSubspaceDetector
from repro.detectors.subspace import SubspaceDetector
from repro.detectors.temporal import TemporalDetector

__all__ = [
    "Detector",
    "DetectorAlarms",
    "ResidualEnergyDetector",
    "ShardedSubspaceDetector",
    "StreamingSubspaceDetector",
    "SubspaceDetector",
    "TemporalDetector",
    "aliases",
    "available",
    "get",
    "get_factory",
    "register",
    "resolve_names",
]
