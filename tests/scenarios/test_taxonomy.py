"""Anomaly-taxonomy compilation: families, shapes, and ground truth."""

import numpy as np
import pytest

from repro.exceptions import TrafficError, ValidationError
from repro.scenarios import FAMILIES, FamilySpec, compile_family
from repro.traffic.anomalies import AnomalyEvent, AnomalyShape


@pytest.fixture
def world(toy_routing):
    """Routing + synthetic flow means for a 4-PoP world."""
    rng = np.random.default_rng(99)
    means = rng.uniform(5e7, 2e8, size=toy_routing.num_flows)
    return toy_routing, means


def compile_on(world, spec, seed=7, num_bins=288):
    routing, means = world
    rng = np.random.default_rng(seed)
    return compile_family(spec, routing, means, num_bins, rng)


class TestFamilySpecValidation:
    def test_taxonomy_has_all_families(self):
        assert set(FAMILIES) == {
            "spike",
            "ddos-ramp",
            "flash-crowd",
            "ingress-outage",
            "routing-shift",
            "port-scan",
            "multi-flow",
        }

    def test_unknown_family(self):
        with pytest.raises(ValidationError, match="unknown anomaly family"):
            FamilySpec(family="earthquake")

    def test_nonpositive_magnitude(self):
        with pytest.raises(ValidationError, match="magnitude"):
            FamilySpec(family="spike", magnitude=0.0)

    def test_spike_is_single_bin(self):
        with pytest.raises(ValidationError, match="exactly one bin"):
            FamilySpec(family="spike", duration_bins=3)

    def test_flash_crowd_needs_two_bins(self):
        with pytest.raises(ValidationError, match="duration_bins >= 2"):
            FamilySpec(family="flash-crowd", duration_bins=1)

    def test_start_range(self):
        with pytest.raises(ValidationError, match="start"):
            FamilySpec(family="spike", start=1.0)

    def test_span_accounts_for_stagger(self):
        spec = FamilySpec(
            family="multi-flow", duration_bins=4, num_flows=3, stagger_bins=2
        )
        assert spec.span_bins == 4 + 2 * 2

    def test_routing_shift_span_uses_two_members(self):
        spec = FamilySpec(
            family="routing-shift", duration_bins=5, stagger_bins=3
        )
        assert spec.span_bins == 5 + 3

    def test_routing_shift_rejects_extra_flows(self):
        with pytest.raises(ValidationError, match="num_flows"):
            FamilySpec(family="routing-shift", num_flows=3)


class TestFamilyCompilation:
    def test_spike_compiles_to_single_spike_event(self, world):
        events, truth = compile_on(
            world, FamilySpec(family="spike", magnitude=10.0)
        )
        assert len(events) == 1
        assert events[0].shape is AnomalyShape.SPIKE
        assert events[0].duration_bins == 1
        assert truth.family == "spike"
        assert truth.start_bin == events[0].time_bin

    def test_magnitude_scales_the_flow_mean(self, world):
        _, means = world
        events, _ = compile_on(
            world, FamilySpec(family="spike", magnitude=10.0)
        )
        flow = events[0].flow_index
        assert events[0].amplitude_bytes == pytest.approx(10.0 * means[flow])

    def test_ddos_ramp_converges_on_one_destination(self, world):
        routing, _ = world
        events, truth = compile_on(
            world,
            FamilySpec(
                family="ddos-ramp",
                duration_bins=6,
                num_flows=3,
                stagger_bins=2,
            ),
        )
        assert len(events) == 3
        destinations = {
            routing.od_pairs[e.flow_index][1] for e in events
        }
        assert len(destinations) == 1
        assert all(e.shape is AnomalyShape.RAMP for e in events)
        assert truth.onsets == (
            truth.onsets[0],
            truth.onsets[0] + 2,
            truth.onsets[0] + 4,
        )

    def test_flash_crowd_bursts_simultaneously(self, world):
        routing, _ = world
        events, truth = compile_on(
            world,
            FamilySpec(family="flash-crowd", duration_bins=8, num_flows=3),
        )
        assert all(e.shape is AnomalyShape.BURST for e in events)
        assert len(set(truth.onsets)) == 1
        destinations = {routing.od_pairs[e.flow_index][1] for e in events}
        assert len(destinations) == 1

    def test_ingress_outage_removes_traffic_from_one_origin(self, world):
        routing, means = world
        events, _ = compile_on(
            world,
            FamilySpec(
                family="ingress-outage",
                magnitude=0.9,
                duration_bins=4,
                num_flows=3,
            ),
        )
        origins = {routing.od_pairs[e.flow_index][0] for e in events}
        assert len(origins) == 1
        for event in events:
            assert event.amplitude_bytes < 0
            assert event.amplitude_bytes == pytest.approx(
                -0.9 * means[event.flow_index]
            )

    def test_routing_shift_moves_matched_bytes(self, world):
        routing, means = world
        events, truth = compile_on(
            world,
            FamilySpec(
                family="routing-shift", magnitude=0.7, duration_bins=5
            ),
        )
        assert len(events) == 2
        donor, recipient = events
        assert donor.amplitude_bytes == -recipient.amplitude_bytes
        assert donor.amplitude_bytes == pytest.approx(
            -0.7 * means[donor.flow_index]
        )
        # Same origin, different destination.
        assert (
            routing.od_pairs[donor.flow_index][0]
            == routing.od_pairs[recipient.flow_index][0]
        )
        assert (
            routing.od_pairs[donor.flow_index][1]
            != routing.od_pairs[recipient.flow_index][1]
        )
        assert sum(truth.amplitudes) == pytest.approx(0.0)

    def test_multi_flow_touches_distinct_flows(self, world):
        events, truth = compile_on(
            world,
            FamilySpec(
                family="multi-flow",
                duration_bins=4,
                num_flows=3,
                stagger_bins=3,
            ),
        )
        assert len({e.flow_index for e in events}) == 3
        # Staggered but overlapping spans.
        assert truth.end_bin - truth.start_bin + 1 == 4 + 2 * 3
        first, second = events[0], events[1]
        assert second.time_bin <= first.last_bin + 1

    def test_gap_bins_between_staggered_onsets_are_not_truth(self, world):
        """With onsets staggered wider than the duration, the untouched
        gap bins must not count as anomalous ground truth."""
        events, truth = compile_on(
            world,
            FamilySpec(
                family="multi-flow",
                duration_bins=1,
                num_flows=3,
                stagger_bins=10,
            ),
        )
        perturbed = {e.time_bin for e in events}
        assert set(truth.bins.tolist()) == perturbed
        assert truth.bins.size == 3  # not the 21-bin envelope

    def test_compilation_is_deterministic(self, world):
        spec = FamilySpec(family="multi-flow", duration_bins=3, num_flows=2)
        assert compile_on(world, spec, seed=5) == compile_on(
            world, spec, seed=5
        )
        events_a, _ = compile_on(world, spec, seed=5)
        events_b, _ = compile_on(world, spec, seed=6)
        assert events_a != events_b

    def test_explicit_start_pins_the_onset(self, world):
        spec = FamilySpec(family="spike", start=0.5)
        events_a, _ = compile_on(world, spec, seed=1)
        events_b, _ = compile_on(world, spec, seed=2)
        assert events_a[0].time_bin == events_b[0].time_bin

    def test_trace_too_short_for_span(self, world):
        spec = FamilySpec(
            family="multi-flow", duration_bins=40, num_flows=3,
            stagger_bins=40,
        )
        with pytest.raises(ValidationError, match="cannot host"):
            compile_on(world, spec, num_bins=64)

    def test_too_many_member_flows(self, world):
        with pytest.raises(ValidationError, match="eligible"):
            compile_on(
                world,
                FamilySpec(
                    family="ingress-outage", duration_bins=2, num_flows=9
                ),
            )


class TestBurstShape:
    def test_burst_rises_then_decays(self):
        event = AnomalyEvent(
            time_bin=0,
            flow_index=0,
            amplitude_bytes=1e8,
            shape=AnomalyShape.BURST,
            duration_bins=9,
        )
        deltas = event.deltas()
        assert deltas.shape == (9,)
        peak = int(np.argmax(deltas))
        assert deltas[peak] == pytest.approx(1e8)
        # Monotone rise to the peak, halving decay afterwards.
        assert np.all(np.diff(deltas[: peak + 1]) > 0)
        assert np.allclose(deltas[peak + 1 :] * 2, deltas[peak:-1])

    def test_burst_needs_two_bins(self):
        with pytest.raises(TrafficError, match="at least two bins"):
            AnomalyEvent(
                time_bin=0,
                flow_index=0,
                amplitude_bytes=1e8,
                shape=AnomalyShape.BURST,
                duration_bins=1,
            )
