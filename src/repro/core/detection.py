"""Volume-anomaly detection (§5.1).

:class:`SPEDetector` packages the full detection pipeline: fit a PCA on
the training measurements, separate the subspaces with the 3-sigma rule,
compute the Q-statistic threshold, and flag any timestep whose squared
prediction error exceeds it.

An important property the paper emphasizes: the test never references the
mean traffic level, so the same detector configuration applies to networks
of any size and utilization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pca import PCA
from repro.core.qstatistic import q_threshold
from repro.core.subspace import SubspaceModel
from repro.exceptions import ModelError, NotFittedError

__all__ = ["SPEDetector", "DetectionResult"]


@dataclass(frozen=True)
class DetectionResult:
    """Detection output for a block of measurements.

    Attributes
    ----------
    spe:
        Squared prediction error ``‖ỹ‖²`` per timestep.
    threshold:
        The Q-statistic limit ``δ²_α`` used.
    flags:
        Boolean per-timestep anomaly indicators (``spe > threshold``).
    confidence:
        The confidence level the threshold corresponds to.
    """

    spe: np.ndarray
    threshold: float
    flags: np.ndarray
    confidence: float

    @property
    def anomalous_bins(self) -> np.ndarray:
        """Indices of flagged timesteps."""
        return np.nonzero(self.flags)[0]

    @property
    def num_alarms(self) -> int:
        """Number of flagged timesteps."""
        return int(np.count_nonzero(self.flags))

    def alarm_rate(self) -> float:
        """Fraction of timesteps flagged."""
        if self.flags.size == 0:
            return 0.0
        return self.num_alarms / self.flags.size


class SPEDetector:
    """Subspace detector: PCA + separation + Q-statistic threshold.

    Parameters
    ----------
    confidence:
        ``1 − α`` for the Q-statistic limit (paper uses 0.995 / 0.999).
    threshold_sigma:
        Deviation multiplier of the axis-separation rule (paper uses 3).
    normal_rank:
        Explicit normal-subspace rank; None (default) applies the
        separation rule.
    min_normal_rank, max_normal_rank:
        Clamps forwarded to the separation rule.
    svd_method:
        Eigensolver route forwarded to :class:`~repro.core.pca.PCA`
        (``"auto"`` picks the economy path for the matrix shape).
    dtype:
        Scoring precision (``"float64"`` default, or ``"float32"``),
        forwarded to :class:`~repro.core.pca.PCA`.  The fit — and with
        it the separation rank and the Q-statistic threshold — always
        runs in float64; float32 only changes the per-row projection
        arithmetic, with SPE error bounded by
        :func:`~repro.core.subspace.float32_spe_band`.

    Examples
    --------
    >>> from repro.datasets import build_dataset
    >>> ds = build_dataset("abilene")
    >>> detector = SPEDetector().fit(ds.link_traffic)
    >>> result = detector.detect(ds.link_traffic)
    >>> bool(result.num_alarms < ds.num_bins * 0.05)
    True
    """

    def __init__(
        self,
        confidence: float = 0.999,
        threshold_sigma: float = 3.0,
        normal_rank: int | None = None,
        min_normal_rank: int = 1,
        max_normal_rank: int | None = None,
        svd_method: str = "auto",
        dtype: np.dtype | type | str = np.float64,
    ) -> None:
        if not 0.0 < confidence < 1.0:
            raise ModelError(f"confidence must lie in (0, 1), got {confidence}")
        self.confidence = confidence
        self.threshold_sigma = threshold_sigma
        self.requested_rank = normal_rank
        self.min_normal_rank = min_normal_rank
        self.max_normal_rank = max_normal_rank
        self.svd_method = svd_method
        self.dtype = np.dtype(dtype)
        self._model: SubspaceModel | None = None
        self._threshold: float | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_model(
        cls,
        model: SubspaceModel,
        confidence: float = 0.999,
        **kwargs,
    ) -> "SPEDetector":
        """A fitted detector wrapped around an existing subspace model.

        The sharded engine fits its model from merged sufficient
        statistics and distributed separation moments, then packages it
        through here so downstream consumers (pipelines, comparison
        grids) see an ordinary fitted :class:`SPEDetector`.

        ``kwargs`` (``threshold_sigma``, ``normal_rank``,
        ``min_normal_rank``, ``max_normal_rank``) record the
        *configuration the model was fitted under* — in particular
        ``normal_rank`` stays ``None`` when a separation rule chose the
        rank — so refitting a fresh detector from this one's parameters
        reproduces an equivalently configured fit rather than pinning
        the already-computed rank.
        """
        detector = cls(confidence=confidence, **kwargs)
        detector._model = model
        # The model's PCA owns the scoring precision; keep the
        # detector's record of it consistent.
        detector.dtype = model.dtype
        detector._threshold = q_threshold(
            model.residual_eigenvalues(), confidence=confidence
        )
        return detector

    def fit(self, measurements: np.ndarray) -> "SPEDetector":
        """Fit PCA, separate subspaces, and compute the SPE limit."""
        pca = PCA(method=self.svd_method, dtype=self.dtype).fit(measurements)
        if self.requested_rank is not None:
            model = SubspaceModel.with_rank(pca, self.requested_rank)
        else:
            model = SubspaceModel.from_pca(
                pca,
                measurements,
                threshold_sigma=self.threshold_sigma,
                min_normal_rank=self.min_normal_rank,
                max_normal_rank=self.max_normal_rank,
            )
        self._model = model
        self._threshold = q_threshold(
            model.residual_eigenvalues(), confidence=self.confidence
        )
        return self

    # ------------------------------------------------------------------
    def _require_fitted(self) -> SubspaceModel:
        if self._model is None or self._threshold is None:
            raise NotFittedError("SPEDetector.fit must be called first")
        return self._model

    @property
    def model(self) -> SubspaceModel:
        """The fitted subspace model."""
        return self._require_fitted()

    @property
    def threshold(self) -> float:
        """The fitted Q-statistic limit ``δ²_α``."""
        self._require_fitted()
        return self._threshold

    @property
    def normal_rank(self) -> int:
        """The fitted normal-subspace rank ``r``."""
        return self._require_fitted().normal_rank

    def threshold_at(self, confidence: float) -> float:
        """The SPE limit at another confidence level (same subspaces)."""
        model = self._require_fitted()
        return q_threshold(model.residual_eigenvalues(), confidence=confidence)

    # ------------------------------------------------------------------
    def spe(self, measurements: np.ndarray) -> np.ndarray | float:
        """SPE of one measurement vector or a matrix of them."""
        return self._require_fitted().spe(measurements)

    def detect(
        self,
        measurements: np.ndarray,
        confidence: float | None = None,
    ) -> DetectionResult:
        """Flag anomalous timesteps in a ``(t, m)`` measurement block.

        ``confidence`` overrides the fitted level without refitting.
        """
        model = self._require_fitted()
        measurements = np.asarray(measurements, dtype=np.float64)
        if measurements.ndim == 1:
            measurements = measurements[None, :]
        if confidence is None:
            threshold = self._threshold
            level = self.confidence
        else:
            threshold = self.threshold_at(confidence)
            level = confidence
        # One fused kernel pass: SPE and the threshold comparison come
        # out of the same chunked sweep (no full-block residual
        # temporary), bit-identical to model.spe + elementwise compare.
        scored = model.score_block(measurements, threshold=float(threshold))
        return DetectionResult(
            spe=scored.spe,
            threshold=float(threshold),
            flags=scored.flags,
            confidence=level,
        )
