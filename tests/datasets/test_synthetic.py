"""Tests for repro.datasets.synthetic (paper Table 1 dimensions)."""

import numpy as np
import pytest

from repro.datasets import build_dataset
from repro.datasets.synthetic import dataset_from_config
from repro.exceptions import TrafficError
from repro.topology.builders import ring_network
from repro.traffic.workloads import workload_for


class TestPresetDatasets:
    def test_sprint1_table1_dimensions(self, sprint1):
        assert sprint1.network.num_pops == 13
        assert sprint1.num_links == 49
        assert sprint1.num_bins == 1008
        assert sprint1.bin_seconds == 600.0

    def test_abilene_table1_dimensions(self, abilene_ds):
        assert abilene_ds.network.num_pops == 11
        assert abilene_ds.num_links == 41
        assert abilene_ds.num_bins == 1008

    def test_deterministic_rebuild(self):
        a = build_dataset("sprint-1")
        b = build_dataset("sprint-1")
        assert np.array_equal(a.link_traffic, b.link_traffic)
        assert a.true_events == b.true_events

    def test_weeks_differ(self, sprint1):
        sprint2 = build_dataset("sprint-2")
        assert not np.array_equal(sprint1.link_traffic[:100], sprint2.link_traffic[:100])

    def test_ground_truth_present(self, sprint1):
        assert len(sprint1.true_events) >= 30
        sizes = [abs(e.amplitude_bytes) for e in sprint1.true_events]
        # The anomaly mix spans the knee: some above 2e7, most below.
        assert sum(1 for s in sizes if s >= 2e7) >= 5
        assert sum(1 for s in sizes if s < 2e7) >= 20

    def test_unknown_preset_rejected(self):
        with pytest.raises(TrafficError):
            build_dataset("geant")

    def test_link_loads_realistic_scale(self, sprint1):
        """Paper Fig. 1 shows link loads of 1e7..3e8 bytes per bin."""
        busy_links = sprint1.link_traffic.mean(axis=0)
        inter_pop = [
            i
            for i, name in enumerate(sprint1.routing.link_names)
            if "->" in name
        ]
        assert np.median(busy_links[inter_pop]) > 1e7
        assert busy_links.max() < 5e9


class TestCustomConfig:
    def test_custom_network_override(self):
        config = workload_for("sprint-1").with_overrides(
            name="ring-world", num_bins=288, num_anomalies=4
        )
        network = ring_network(6)
        # Give the ring PoPs population weights (defaults are 1.0 already).
        ds = dataset_from_config(config, network=network)
        assert ds.num_links == network.num_links
        assert ds.num_flows == 36

    def test_ecmp_routing(self):
        config = workload_for("sprint-1").with_overrides(
            name="ecmp-world", num_bins=144, num_anomalies=2
        )
        ds = dataset_from_config(config, ecmp=True)
        # ECMP matrices may be fractional but must still be consistent.
        assert np.allclose(
            ds.od_traffic.link_loads(ds.routing), ds.link_traffic
        )

    def test_effective_events_match_injection(self, small_dataset):
        # Every recorded event's spike must be visible in the OD matrix.
        for event in small_dataset.true_events:
            flow = small_dataset.od_traffic.values[:, event.flow_index]
            window = flow[max(0, event.time_bin - 2) : event.time_bin + 3]
            if event.amplitude_bytes > 0:
                assert flow[event.time_bin] == window.max()
