"""Tests for the fault-tolerance layer: supervised pool, fault policies,
degraded fits, stream resume, and the chaos harness.

Everything here injects faults deterministically through
:mod:`repro.pipeline.faults`, so a failure replays exactly; the
bit-identity assertions compare full model state (mean, components,
spectrum, rank, threshold) rather than summaries.
"""

import json
import pickle

import numpy as np
import pytest

from repro.exceptions import (
    CheckpointError,
    ModelError,
    SupervisionError,
    ValidationError,
)
from repro.pipeline.faults import FaultInjector, FaultPlan, WorkerFault
from repro.pipeline.sharded import (
    SpatialCoordinator,
    TemporalCoordinator,
)
from repro.pipeline.supervision import (
    FaultReport,
    SupervisedPool,
    TaskFault,
    raise_if_lost,
    resolve_policy,
)


def _square(value):
    return value * value


def _explode(value):
    raise RuntimeError(f"kernel error on {value}")


@pytest.fixture(scope="module")
def tall_block():
    rng = np.random.default_rng(11)
    t, m = 1400, 12
    base = 1e7 * (1.3 + np.sin(2 * np.pi * np.arange(t) / 144.0))[:, None]
    block = np.abs(
        base
        * rng.uniform(0.5, 2.0, size=m)
        * (1.0 + 0.08 * rng.standard_normal((t, m)))
    )
    block[700] *= 2.5
    return block


def same_model(a, b) -> bool:
    """Bit-exact detector equality."""
    pa, pb = a.model.pca, b.model.pca
    return (
        np.array_equal(pa.mean, pb.mean)
        and np.array_equal(pa.components, pb.components)
        and np.array_equal(pa.captured_variance(), pb.captured_variance())
        and a.normal_rank == b.normal_rank
        and a.threshold == b.threshold
    )


class TestSupervisedPool:
    def test_clean_run_is_ordered_and_clean(self):
        with SupervisedPool(workers=2) as pool:
            run = pool.run(_square, list(range(8)), stage="stats")
        assert run.results == [n * n for n in range(8)]
        assert run.report.clean
        assert run.report.tasks == 8
        assert run.report.attempts == 8

    def test_run_outside_context_is_refused(self):
        pool = SupervisedPool(workers=1)
        with pytest.raises(SupervisionError):
            pool.run(_square, [1])

    def test_killed_worker_is_detected_and_task_reassigned(self):
        plan = FaultInjector.kill_worker(task=1, stage="stats", attempts=1)
        with SupervisedPool(
            workers=2, fault_plan=plan, backoff_base=0.01
        ) as pool:
            run = pool.run(_square, [3, 4, 5], stage="stats")
        assert run.results == [9, 16, 25]
        report = run.report
        assert report.worker_deaths == 1
        assert report.retries == 1
        assert not report.lost_tasks
        assert [f.kind for f in report.faults] == ["worker_death"]
        assert report.faults[0].task == 1

    def test_deadline_bounds_a_hung_task(self):
        plan = FaultInjector.hang_task(
            task=0, stage="stats", attempts=1, seconds=60.0
        )
        with SupervisedPool(
            workers=1, deadline=1.0, fault_plan=plan, backoff_base=0.01
        ) as pool:
            run = pool.run(_square, [7], stage="stats")
        assert run.results == [49]
        assert run.report.timeouts == 1
        assert [f.kind for f in run.report.faults] == ["timeout"]

    def test_kernel_error_is_typed_and_retried(self):
        plan = FaultInjector.fail_task(task=2, stage="stats", attempts=1)
        with SupervisedPool(
            workers=2, fault_plan=plan, backoff_base=0.01
        ) as pool:
            run = pool.run(_square, [1, 2, 3], stage="stats")
        assert run.results == [1, 4, 9]
        assert [f.kind for f in run.report.faults] == ["error"]

    def test_exhausted_retries_lose_the_task_not_the_run(self):
        plan = FaultInjector.fail_task(task=0, stage="stats", attempts=99)
        with SupervisedPool(
            workers=1, max_retries=1, fault_plan=plan, backoff_base=0.01
        ) as pool:
            run = pool.run(_square, [5, 6], stage="stats")
        assert run.results == [None, 36]
        assert run.report.lost_tasks == (0,)

    def test_caller_errors_surface_with_the_task_payload(self):
        with SupervisedPool(workers=1, max_retries=0) as pool:
            run = pool.run(_explode, [42], stage="stats")
        assert run.results == [None]
        assert run.report.lost_tasks == (0,)
        assert "kernel error on 42" in run.report.faults[0].detail

    def test_hang_plan_without_deadline_is_rejected(self):
        plan = FaultInjector.hang_task(task=0)
        with pytest.raises(ValidationError):
            SupervisedPool(workers=1, fault_plan=plan)

    def test_pool_survives_across_runs(self):
        plan = FaultInjector.kill_worker(task=0, stage="stats", attempts=1)
        with SupervisedPool(
            workers=2, fault_plan=plan, backoff_base=0.01
        ) as pool:
            first = pool.run(_square, [1, 2], stage="stats")
            second = pool.run(_square, [3, 4], stage="moments")
        assert first.results == [1, 4]
        assert second.results == [9, 16]
        assert second.report.clean  # the fault was stats-stage only

    def test_validation(self):
        with pytest.raises(ValidationError):
            SupervisedPool(workers=0)
        with pytest.raises(ValidationError):
            SupervisedPool(workers=1, deadline=0.0)
        with pytest.raises(ValidationError):
            SupervisedPool(workers=1, max_retries=-1)


class TestFaultReport:
    def test_merge_accumulates_every_field(self):
        fault = TaskFault(task=1, attempt=2, kind="timeout", worker=0)
        a = FaultReport(tasks=2, attempts=3, timeouts=1, retries=1,
                        faults=(fault,))
        b = FaultReport(tasks=1, attempts=1, lost_tasks=(0,))
        merged = a.merge(b)
        assert merged.tasks == 3
        assert merged.attempts == 4
        assert merged.timeouts == 1
        assert merged.lost_tasks == (0,)
        assert merged.faults == (fault,)
        assert not merged.clean

    def test_to_json_round_trips_through_json(self):
        report = FaultReport(
            tasks=1,
            attempts=2,
            retries=1,
            faults=(TaskFault(task=0, attempt=1, kind="error", worker=3),),
        )
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["faults"][0]["kind"] == "error"
        assert payload["retries"] == 1

    def test_raise_if_lost_honors_policy(self):
        from repro.pipeline.supervision import PoolRun

        lossy = PoolRun(results=[None], report=FaultReport(lost_tasks=(0,)))
        raise_if_lost(lossy, "chunk", "partial")  # tolerated
        with pytest.raises(SupervisionError):
            raise_if_lost(lossy, "chunk", "retry")

    def test_resolve_policy_validates(self):
        assert resolve_policy(None, "retry") == "retry"
        assert resolve_policy("partial", "retry") == "partial"
        with pytest.raises(ValidationError):
            resolve_policy("best-effort", "retry")

    def test_fault_plan_matching_window(self):
        fault = WorkerFault(task=2, stage="stats", first_attempt=1,
                            attempts=2)
        plan = FaultPlan(faults=(fault,))
        assert plan.action_for("stats", 2, 1) is fault
        assert plan.action_for("stats", 2, 2) is fault
        assert plan.action_for("stats", 2, 3) is None
        assert plan.action_for("moments", 2, 1) is None
        assert plan.action_for("stats", 1, 1) is None
        with pytest.raises(ValidationError):
            WorkerFault(task=0, action="melt")


class TestTemporalFaultPolicies:
    def test_retry_after_crash_is_bit_identical(self, tall_block):
        clean = TemporalCoordinator(num_shards=4, workers=1).fit(tall_block)
        plan = FaultInjector.kill_worker(task=1, stage="stats", attempts=1)
        fit = TemporalCoordinator(
            num_shards=4,
            workers=2,
            fault_policy="retry",
            max_retries=2,
            backoff_base=0.01,
            fault_plan=plan,
        ).fit(tall_block)
        assert same_model(fit.detector, clean.detector)
        assert fit.report.coverage == 1.0
        assert fit.report.fault.worker_deaths == 1
        # A healed run is bit-identical but its scars stay visible.
        payload = fit.report.to_json()
        assert payload["fault"]["worker_deaths"] == 1
        assert payload["fault"]["lost_tasks"] == []

    def test_partial_records_coverage_and_lost_chunk(self, tall_block):
        plan = FaultInjector.kill_worker(task=1, stage="stats", attempts=99)
        fit = TemporalCoordinator(
            num_shards=4,
            workers=2,
            fault_policy="partial",
            max_retries=1,
            backoff_base=0.01,
            fault_plan=plan,
        ).fit(tall_block)
        assert fit.report.coverage < 1.0
        assert 1 in fit.report.fault.lost_tasks
        payload = fit.report.to_json()
        assert payload["model"]["coverage"] == fit.report.coverage
        assert payload["fault"]["lost_tasks"] == [1]
        # The degraded model still detects on the surviving rows.
        assert fit.detector.threshold > 0

    def test_fail_fast_aborts_typed(self, tall_block):
        plan = FaultInjector.kill_worker(task=0, stage="stats", attempts=99)
        with pytest.raises(SupervisionError):
            TemporalCoordinator(
                num_shards=4,
                workers=2,
                fault_policy="fail-fast",
                fault_plan=plan,
            ).fit(tall_block)

    def test_clean_report_json_is_byte_stable(self, tall_block):
        fit = TemporalCoordinator(
            num_shards=4, workers=2, fault_policy="retry"
        ).fit(tall_block)
        payload = fit.report.to_json()
        assert payload["model"]["coverage"] == 1.0
        assert "fault" not in payload

    def test_policy_validation(self, tall_block):
        with pytest.raises(ValidationError):
            TemporalCoordinator(num_shards=2, fault_policy="optimistic")
        coordinator = TemporalCoordinator(num_shards=2)
        with pytest.raises(ValidationError):
            coordinator.fit(tall_block, fault_policy="optimistic")


class TestStreamFaults:
    CHUNK = 200

    def fit_clean(self, block):
        return TemporalCoordinator(num_shards=2, workers=1).fit(block)

    def coordinator(self, policy="retry"):
        return TemporalCoordinator(
            num_shards=2,
            workers=1,
            fault_policy=policy,
            max_retries=1,
            backoff_base=0.01,
        )

    def test_duplicate_chunk_folds_exactly_once(self, tall_block):
        source = FaultInjector.chunk_source(
            tall_block, self.CHUNK, fault="duplicate"
        )
        fit = self.coordinator().fit_stream(
            source, expected_rows=tall_block.shape[0]
        )
        assert same_model(fit.detector, self.fit_clean(tall_block).detector)
        assert fit.report.coverage == 1.0

    def test_delayed_chunk_is_reordered_exactly(self, tall_block):
        source = FaultInjector.chunk_source(
            tall_block, self.CHUNK, fault="delay"
        )
        fit = self.coordinator().fit_stream(
            source, expected_rows=tall_block.shape[0]
        )
        assert same_model(fit.detector, self.fit_clean(tall_block).detector)

    def test_dropped_chunk_is_recovered_by_retry(self, tall_block):
        source = FaultInjector.chunk_source(
            tall_block, self.CHUNK, fault="drop"
        )
        fit = self.coordinator().fit_stream(
            source, expected_rows=tall_block.shape[0]
        )
        assert same_model(fit.detector, self.fit_clean(tall_block).detector)
        assert fit.report.fault is not None
        assert fit.report.fault.retries >= 1

    def test_permanent_drop_degrades_under_partial(self, tall_block):
        source = FaultInjector.chunk_source(
            tall_block, self.CHUNK, fault="drop", drop_always=True
        )
        fit = self.coordinator("partial").fit_stream(
            source, expected_rows=tall_block.shape[0]
        )
        assert fit.report.coverage < 1.0
        assert fit.report.fault is not None

    def test_permanent_drop_aborts_under_fail_fast(self, tall_block):
        source = FaultInjector.chunk_source(
            tall_block, self.CHUNK, fault="drop", drop_always=True
        )
        with pytest.raises(SupervisionError):
            TemporalCoordinator(
                num_shards=2, workers=1, fault_policy="fail-fast"
            ).fit_stream(source, expected_rows=tall_block.shape[0])

    def test_legacy_errors_are_preserved(self, tall_block):
        with pytest.raises(ModelError, match="yielded no chunks"):
            TemporalCoordinator(num_shards=2, workers=1).fit_stream(
                lambda: iter(())
            )

    def test_resume_from_checkpoint_is_bit_identical(
        self, tall_block, tmp_path
    ):
        path = tmp_path / "stream.ckpt"
        half = tall_block.shape[0] // 2

        def first_half():
            for start in range(0, half, self.CHUNK):
                yield (start, tall_block[start : start + self.CHUNK])

        # Interrupted run: only the first half arrives, partial policy
        # persists what was covered.
        self.coordinator("partial").fit_stream(
            first_half,
            checkpoint_path=path,
            expected_rows=tall_block.shape[0],
        )
        assert path.exists()

        def full():
            for start in range(0, tall_block.shape[0], self.CHUNK):
                yield (start, tall_block[start : start + self.CHUNK])

        fit = self.coordinator().fit_stream(
            full, checkpoint_path=path, expected_rows=tall_block.shape[0]
        )
        assert same_model(fit.detector, self.fit_clean(tall_block).detector)

    def test_corrupt_checkpoint_recovers_fresh_with_fault(
        self, tall_block, tmp_path
    ):
        path = tmp_path / "stream.ckpt"
        source = FaultInjector.chunk_source(tall_block, self.CHUNK)
        self.coordinator().fit_stream(
            source, checkpoint_path=path,
            expected_rows=tall_block.shape[0],
        )
        FaultInjector.corrupt_checkpoint(path, mode="truncate")
        fit = self.coordinator().fit_stream(
            source, checkpoint_path=path,
            expected_rows=tall_block.shape[0],
        )
        assert same_model(fit.detector, self.fit_clean(tall_block).detector)
        kinds = [f.kind for f in fit.report.fault.faults]
        assert "corrupt_checkpoint" in kinds

    def test_checkpoint_tile_mismatch_is_a_model_error(
        self, tall_block, tmp_path
    ):
        path = tmp_path / "stream.ckpt"
        source = FaultInjector.chunk_source(tall_block, self.CHUNK)
        TemporalCoordinator(
            num_shards=2, workers=1, tile_rows=256
        ).fit_stream(source, checkpoint_path=path)
        with pytest.raises(ModelError, match="tile_rows"):
            TemporalCoordinator(
                num_shards=2, workers=1, tile_rows=512
            ).fit_stream(source, checkpoint_path=path)

    def test_negative_start_row_is_rejected(self, tall_block):
        def source():
            yield (-1, tall_block[:10])

        with pytest.raises(ModelError):
            TemporalCoordinator(num_shards=2, workers=1).fit_stream(source)


class TestSpatialZoneLoss:
    def test_partial_fit_survives_a_dead_zone(self, tall_block):
        plan = FaultInjector.kill_worker(task=1, stage="zones", attempts=99)
        fit = SpatialCoordinator(
            num_zones=3,
            workers=2,
            normal_rank=2,
            fault_policy="partial",
            max_retries=1,
            backoff_base=0.01,
            fault_plan=plan,
        ).fit(tall_block)
        model = fit.model
        assert model.coverage < 1.0
        assert model.dead_zones == (1,)
        assert len(model.detectors) == 2
        # Full-width scoring still works on the degraded plane.
        fused = model.fused_score(tall_block, "rescore")
        assert np.all(np.isfinite(fused))
        assert fit.report.coverage == model.coverage

    def test_without_zones_rescales_the_quorum(self, tall_block):
        fit = SpatialCoordinator(
            num_zones=4, workers=1, normal_rank=2, votes=2
        ).fit(tall_block)
        degraded = fit.model.without_zones([3])
        assert degraded.dead_zones == (3,)
        assert degraded.coverage < 1.0
        assert 1 <= degraded.votes <= 3
        report = degraded.alarm_report(tall_block)
        assert report["coverage"] == degraded.coverage
        assert report["dead_zones"] == [3]
        assert len(report["alarms"]) == tall_block.shape[0]

    def test_without_zones_validates(self, tall_block):
        fit = SpatialCoordinator(
            num_zones=2, workers=1, normal_rank=2
        ).fit(tall_block)
        with pytest.raises(ModelError):
            fit.model.without_zones([7])
        with pytest.raises(ModelError):
            fit.model.without_zones([0, 1])  # nobody left

    def test_retry_heals_a_transient_zone_crash(self, tall_block):
        clean = SpatialCoordinator(
            num_zones=3, workers=1, normal_rank=2
        ).fit(tall_block)
        plan = FaultInjector.kill_worker(task=0, stage="zones", attempts=1)
        fit = SpatialCoordinator(
            num_zones=3,
            workers=2,
            normal_rank=2,
            fault_policy="retry",
            max_retries=2,
            backoff_base=0.01,
            fault_plan=plan,
        ).fit(tall_block)
        assert fit.report.coverage == 1.0
        assert all(
            same_model(a, b)
            for a, b in zip(fit.model.detectors, clean.model.detectors)
        )


class TestStreamCheckpointFormat:
    def test_checkpoint_is_a_versioned_pickle(self, tall_block, tmp_path):
        from repro.pipeline.sharded import STREAM_CHECKPOINT_SCHEMA_VERSION

        path = tmp_path / "stream.ckpt"
        source = FaultInjector.chunk_source(tall_block, 200)
        TemporalCoordinator(num_shards=2, workers=1).fit_stream(
            source, checkpoint_path=path
        )
        payload = pickle.loads(path.read_bytes())
        assert payload["schema_version"] == STREAM_CHECKPOINT_SCHEMA_VERSION
        assert [tuple(span) for span in payload["intervals"]] == [
            (0, tall_block.shape[0])
        ]

    def test_bad_schema_is_a_checkpoint_error(self, tmp_path):
        path = tmp_path / "stream.ckpt"
        path.write_bytes(pickle.dumps({"schema_version": 999}))
        coordinator = TemporalCoordinator(num_shards=2, workers=1)
        with pytest.raises(CheckpointError):
            coordinator._load_stream_checkpoint(path)


class TestChaosHarness:
    def test_retry_matrix_smoke(self):
        from repro.pipeline.chaos import run_chaos_suite

        report = run_chaos_suite(
            policy="retry",
            max_scenarios=1,
            deadline=2.0,
            faults=("kill_worker", "drop_chunk", "corrupt_checkpoint"),
            probe_degraded_recall=False,
        )
        assert report.all_ok, report.table()
        assert {o.plane for o in report} == {
            "temporal", "spatial", "stream", "service"
        }
        payload = report.to_json()
        assert payload["failures"] == 0
        assert report.table()  # renders without raising

    def test_partial_matrix_smoke(self):
        from repro.pipeline.chaos import run_chaos_suite

        report = run_chaos_suite(
            policy="partial",
            max_scenarios=1,
            deadline=2.0,
            faults=("fail_task", "drop_chunk"),
            probe_degraded_recall=False,
        )
        assert report.all_ok, report.table()

    def test_degraded_recall_gate(self):
        from repro.pipeline.chaos import measure_degraded_recall
        from repro.scenarios.suite import get_suite

        probe = measure_degraded_recall(suite=get_suite("core")[:2])
        assert probe["coverage"] < 1.0
        assert probe["within_tolerance"], probe

    def test_unknown_inputs_are_rejected(self):
        from repro.pipeline.chaos import run_chaos_suite

        with pytest.raises(ValidationError):
            run_chaos_suite(policy="yolo")
        with pytest.raises(ValidationError):
            run_chaos_suite(faults=("melt_cpu",))
        with pytest.raises(ValidationError):
            run_chaos_suite(planes=("orbital",))
