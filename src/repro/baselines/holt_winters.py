"""Additive Holt–Winters (triple exponential smoothing).

Mentioned in §6.2 alongside EWMA as a forecasting-class anomaly detector
(used by [5, 19]).  The additive-seasonality variant maintains level,
trend, and a seasonal profile of period ``season_bins`` (one day = 144
ten-minute bins):

    level_t  = α (z_t − season_{t−s}) + (1 − α)(level_{t−1} + trend_{t−1})
    trend_t  = β (level_t − level_{t−1}) + (1 − β) trend_{t−1}
    season_t = γ (z_t − level_t) + (1 − γ) season_{t−s}

with the one-step forecast ``ẑ_t = level_{t−1} + trend_{t−1} + season_{t−s}``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import TimeseriesModel
from repro.exceptions import ModelError

__all__ = ["HoltWintersModel"]


def _sequential_mean(block: np.ndarray) -> np.ndarray:
    """Column means via strictly sequential row accumulation.

    ``block.mean(axis=0)`` changes its floating-point grouping with the
    column count, so a wide matrix and a single extracted column round
    differently in the last bit.  Summing row by row gives the same
    result for every column layout, which is what keeps the batched
    Holt-Winters recursion bit-identical to its per-column application.
    """
    total = np.zeros(block.shape[1], dtype=np.float64)
    for row in block:
        total += row
    return total / block.shape[0]


class HoltWintersModel(TimeseriesModel):
    """Additive Holt-Winters forecaster.

    Parameters
    ----------
    season_bins:
        Seasonal period in bins (144 = one day of 10-minute bins).
    alpha, beta, gamma:
        Level, trend, and seasonal smoothing weights in [0, 1].
    """

    def __init__(
        self,
        season_bins: int = 144,
        alpha: float = 0.25,
        beta: float = 0.01,
        gamma: float = 0.30,
    ) -> None:
        if season_bins < 1:
            raise ModelError(f"season_bins must be >= 1, got {season_bins}")
        for name, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not 0.0 <= value <= 1.0:
                raise ModelError(f"{name} must lie in [0, 1], got {value}")
        self.season_bins = season_bins
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma

    def predict(self, series: np.ndarray) -> np.ndarray:
        series = self._check(series)
        squeeze = series.ndim == 1
        matrix = series[:, None] if squeeze else series
        t, k = matrix.shape
        s = self.season_bins
        if t < 2 * s:
            raise ModelError(
                f"need at least two seasons ({2 * s} bins) to initialize "
                f"Holt-Winters, got {t}"
            )

        # Classical initialization: first-season mean as level, mean
        # first-to-second-season increment as trend, first-season
        # deviations as the seasonal profile.  The means accumulate rows
        # sequentially so the recursion is bit-identical whether columns
        # are processed together or one at a time (numpy's pairwise mean
        # groups differently per shape); the contract suite relies on it.
        first_mean = _sequential_mean(matrix[:s])
        level = first_mean
        trend = (_sequential_mean(matrix[s : 2 * s]) - first_mean) / s
        season = matrix[:s] - level  # (s, k)

        forecasts = np.empty_like(matrix)
        # The warm-up season forecasts use the initial state directly.
        forecasts[:s] = level + season
        season = season.copy()
        for time in range(s, t):
            season_index = time % s
            forecasts[time] = level + trend + season[season_index]
            observed = matrix[time]
            previous_level = level
            level = self.alpha * (observed - season[season_index]) + (
                1.0 - self.alpha
            ) * (level + trend)
            trend = self.beta * (level - previous_level) + (1.0 - self.beta) * trend
            season[season_index] = (
                self.gamma * (observed - level)
                + (1.0 - self.gamma) * season[season_index]
            )
        return forecasts[:, 0] if squeeze else forecasts
