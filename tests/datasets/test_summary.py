"""Tests for repro.datasets.summary (paper Table 1)."""

from repro.datasets import dataset_summary, summary_table


class TestSummary:
    def test_row_fields(self, small_dataset):
        row = dataset_summary(small_dataset)
        assert row.name == "sprint-small"
        assert row.num_pops == 13
        assert row.num_links == 49
        assert row.bin_minutes == 10.0
        assert row.period_days == 2.0
        assert row.num_flows == 169

    def test_table_rendering(self, small_dataset):
        text = summary_table([small_dataset])
        assert "Dataset" in text
        assert "sprint-small" in text
        assert "49" in text
        assert "10 min" in text

    def test_paper_table1_values(self, sprint1, abilene_ds):
        text = summary_table([sprint1, abilene_ds])
        lines = text.splitlines()
        assert any("sprint-1" in row and "13" in row and "49" in row for row in lines)
        assert any("abilene" in row and "11" in row and "41" in row for row in lines)
        assert all("7.0 d" in row for row in lines[1:])
