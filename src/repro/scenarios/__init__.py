"""Declarative scenario suites with exact, machine-checked ground truth.

The subsystem compiles named :class:`ScenarioSpec` descriptions —
topology, traffic model, anomaly taxonomy, seed — into fully
materialized datasets and diagnoses them end-to-end:

>>> from repro import scenarios
>>> spec = scenarios.get_spec("spike-classic")
>>> compiled = scenarios.compile_scenario(spec)
>>> compiled.dataset.num_flows
16

See ``docs/scenarios.md`` for the taxonomy, the spec format and the
golden-file refresh workflow.
"""

from repro.scenarios.runner import (
    EventOutcome,
    ScenarioOutcome,
    ScenarioRunner,
    SuiteReport,
    canonical_json,
    run_suite,
    streaming_matches_batch,
    suite_datasets,
)
from repro.scenarios.spec import (
    TOPOLOGY_NAMES,
    CompiledScenario,
    ScenarioSpec,
    TrafficModel,
    compile_scenario,
    resolve_topology,
)
from repro.scenarios.suite import (
    CORE_SUITE,
    get_spec,
    get_suite,
    register_suite,
    spec_names,
    suite_names,
)
from repro.scenarios.taxonomy import (
    FAMILIES,
    FamilySpec,
    ScenarioEvent,
    compile_family,
)
from repro.scenarios.fusion import (
    FusionScenarioScore,
    FusionSuiteReport,
    run_fusion_suite,
)

__all__ = [
    "CORE_SUITE",
    "FAMILIES",
    "TOPOLOGY_NAMES",
    "CompiledScenario",
    "EventOutcome",
    "FamilySpec",
    "FusionScenarioScore",
    "FusionSuiteReport",
    "run_fusion_suite",
    "ScenarioEvent",
    "ScenarioOutcome",
    "ScenarioRunner",
    "ScenarioSpec",
    "SuiteReport",
    "TrafficModel",
    "canonical_json",
    "compile_family",
    "compile_scenario",
    "get_spec",
    "get_suite",
    "register_suite",
    "resolve_topology",
    "run_suite",
    "spec_names",
    "streaming_matches_batch",
    "suite_datasets",
    "suite_names",
]
