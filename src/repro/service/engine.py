"""The always-on detection engine (transport-agnostic core).

:class:`DetectionService` is everything the daemon does minus the HTTP:
validate one arriving row, score it against the *pinned active model
version*, identify/quantify it when flagged, fold it into the drift
tracker and the refit statistics, and keep every step observable through
Prometheus metrics and the JSONL event log.  The HTTP layer
(:mod:`repro.service.http`) is a thin adapter over this object, which is
what makes the fault-injection and parity suites fast: they drive the
engine directly and only exercise sockets where transport behavior
itself is under test.

Parity contract
---------------
Every accepted row is scored by the fused
:meth:`~repro.core.subspace.SubspaceModel.score_block` kernel against
the pinned version — the same row-decomposable projection the batch
path runs — so the SPE, flag, and
threshold of stream bin ``b`` are bit-identical to row ``b`` of a batch
:meth:`DetectionPipeline.detect
<repro.pipeline.pipeline.DetectionPipeline.detect>` under the same
model.  Model versions themselves refit through merged sufficient
statistics, bit-identical to an offline fit on the same prefix; together
the two guarantees give exact service-vs-batch alarm parity across any
hot-swap boundary, which the property tests replay.

The exponentially weighted :class:`~repro.core.incremental.\
IncrementalSubspaceTracker` is deliberately *not* on the scoring path:
it folds every arrival to expose drift telemetry (its own adaptive
threshold, the principal angle to the active version's subspace) that
tells operators when the refit cadence is too slow.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, replace

import numpy as np

from repro.core.identification import identify_block
from repro.core.incremental import IncrementalSubspaceTracker
from repro.exceptions import IngestError, ServiceError
from repro.routing.routing_matrix import RoutingMatrix
from repro.service.events import EventLog
from repro.service.lifecycle import ModelLifecycleManager, ModelVersion
from repro.service.metrics import MetricsRegistry

__all__ = [
    "ServiceConfig",
    "DetectionService",
    "RowOutcome",
    "BlockResult",
    "ERROR_REASONS",
]

#: Every reason the error counter may carry, transport reasons included.
#: The fault suite asserts each injected fault lands on exactly one.
ERROR_REASONS = (
    "malformed_json",
    "bad_payload",
    "wrong_width",
    "non_finite",
    "duplicate_bin",
    "out_of_order_bin",
    "too_many_rows",
    "body_too_large",
    "read_timeout",
    "client_disconnect",
    "bad_request",
    "refit_failed",
    "checkpoint_failed",
)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the always-on service.

    Attributes
    ----------
    confidence, threshold_sigma, normal_rank, min_normal_rank,
    max_normal_rank, tile_rows:
        Model parameters, forwarded to the lifecycle manager.
    refit_interval:
        Automatically refit after this many rows ingested since the
        active version was trained; ``None`` leaves refits manual
        (``POST /refit``).
    synchronous_refit:
        Run automatic refits inline in the ingesting call instead of on
        a background thread.  Slower, but the swap boundary becomes a
        deterministic function of the row stream — the parity property
        tests rely on it.
    forgetting, tracker_refresh_interval:
        Drift-tracker parameters (see
        :class:`~repro.core.incremental.IncrementalSubspaceTracker`).
    max_rows_per_request, max_body_bytes, read_timeout:
        Transport guards enforced by the HTTP layer.
    checkpoint_path:
        Where :meth:`DetectionService.checkpoint` persists the lifecycle
        (atomic temp-file-and-rename writes); ``None`` disables
        checkpointing.  A service built via
        :meth:`DetectionService.from_checkpoint` restarts warm from this
        file — same model version, same stream position.
    checkpoint_interval:
        Automatically checkpoint after this many ingested rows
        (requires ``checkpoint_path``); ``None`` leaves checkpoints
        manual (``POST /checkpoint`` or SIGTERM).
    dtype:
        Scoring precision, ``"float64"`` (default) or ``"float32"``.
        Fits — rank, threshold, components — always run in float64;
        float32 only changes the per-row projection arithmetic, with
        SPE error bounded by
        :func:`~repro.core.subspace.float32_spe_band`.
    """

    confidence: float = 0.999
    threshold_sigma: float = 3.0
    normal_rank: int | None = None
    min_normal_rank: int = 1
    max_normal_rank: int | None = None
    tile_rows: int = 1024
    refit_interval: int | None = None
    synchronous_refit: bool = False
    forgetting: float = 1.0 / 1008.0
    tracker_refresh_interval: int | None = 36
    max_rows_per_request: int = 4096
    max_body_bytes: int = 8_000_000
    read_timeout: float = 10.0
    dtype: str = "float64"
    checkpoint_path: str | None = None
    checkpoint_interval: int | None = None

    def with_overrides(self, **overrides) -> "ServiceConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class RowOutcome:
    """Scoring outcome for one accepted row.

    ``bin`` is the stream-relative index (0 for the first ingested row;
    warmup rows are never scored and own no bins).  Identification
    fields are ``None`` without a routing matrix or when unflagged.
    """

    bin: int
    spe: float
    threshold: float
    flag: bool
    model_version: int
    flow_index: int | None = None
    od_pair: tuple[str, str] | None = None
    magnitude: float | None = None
    estimated_bytes: float | None = None

    def to_json(self) -> dict:
        payload = {
            "bin": self.bin,
            "spe": self.spe,
            "threshold": self.threshold,
            "flag": self.flag,
            "model_version": self.model_version,
        }
        if self.flow_index is not None:
            payload["flow_index"] = self.flow_index
            payload["od_pair"] = list(self.od_pair)
            payload["magnitude"] = self.magnitude
            payload["estimated_bytes"] = self.estimated_bytes
        return payload


@dataclass(frozen=True)
class BlockResult:
    """Outcome of one :meth:`DetectionService.ingest_block` call.

    ``outcomes`` covers the accepted prefix (possibly the whole block).
    On a mid-block rejection ``rejected`` carries the same
    :class:`~repro.exceptions.IngestError` the per-row path would have
    raised for that row, and ``rejected_index`` its position in the
    submitted block — the split point is exactly where a per-row replay
    would stop, and the error counter/event log are already updated
    when the result is returned.
    """

    outcomes: tuple[RowOutcome, ...]
    rejected: IngestError | None = None
    rejected_index: int | None = None

    @property
    def accepted(self) -> int:
        """Rows ingested by this call (length of the accepted prefix)."""
        return len(self.outcomes)

    @property
    def alarms(self) -> int:
        """Accepted rows whose SPE exceeded the threshold."""
        return sum(1 for outcome in self.outcomes if outcome.flag)


class DetectionService:
    """Score → diagnose → fold → account, one row at a time.

    Build via :meth:`from_warmup`.  All entry points are thread-safe;
    rows are serialized through one lock so stream bins are assigned in
    arrival order.  :meth:`ingest_block` is the batched fast path: the
    same contract per row, amortized control-plane work per block.
    """

    def __init__(
        self,
        lifecycle: ModelLifecycleManager,
        routing: RoutingMatrix | None = None,
        config: ServiceConfig | None = None,
        event_log: EventLog | None = None,
        latency_clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if not lifecycle.is_bootstrapped:
            raise ServiceError(
                "the lifecycle must be bootstrapped before serving"
            )
        self.config = config or ServiceConfig()
        self.lifecycle = lifecycle
        self.events = event_log if event_log is not None else EventLog()
        self._latency_clock = latency_clock
        self._lock = threading.RLock()
        self._num_links = lifecycle.num_links
        self._warmup_rows = lifecycle.rows
        self._stream_rows = 0
        self._routing = routing
        self._directions: np.ndarray | None = None
        self._quant_ratio: np.ndarray | None = None
        if routing is not None:
            if routing.num_links != self._num_links:
                raise ServiceError(
                    f"routing matrix covers {routing.num_links} links but "
                    f"the warmup block has {self._num_links}"
                )
            self._directions = routing.normalized_columns()
            self._quant_ratio = routing.quantification_ratios()
        self._refit_thread: threading.Thread | None = None
        self._last_refit_error: str | None = None
        self._build_metrics()
        self._tracker = self._seed_tracker(lifecycle.current)
        self._refresh_model_gauges()
        self.events.emit(
            "service_start",
            num_links=self._num_links,
            warmup_rows=self._warmup_rows,
            model_version=lifecycle.current.version,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        path,
        routing: RoutingMatrix | None = None,
        config: ServiceConfig | None = None,
        event_log: EventLog | None = None,
        refit_hook: Callable[[], None] | None = None,
        latency_clock: Callable[[], float] = time.perf_counter,
    ) -> "DetectionService":
        """Restart warm from a checkpoint written by :meth:`checkpoint`.

        The restored service scores under the same model version (the
        detector is refit bit-identically from the checkpointed
        sufficient statistics) and resumes at the same stream position —
        its next assigned bin continues where the checkpointing process
        stopped.  Unreadable or torn files raise
        :class:`~repro.exceptions.CheckpointError`.
        """
        lifecycle = ModelLifecycleManager.restore(path)
        lifecycle.refit_hook = refit_hook
        service = cls(
            lifecycle,
            routing=routing,
            config=config,
            event_log=event_log,
            latency_clock=latency_clock,
        )
        extra = lifecycle.restored_extra
        if extra:
            with service._lock:
                service._warmup_rows = int(
                    extra.get("warmup_rows", service._warmup_rows)
                )
                service._stream_rows = int(extra.get("stream_rows", 0))
        return service

    @classmethod
    def from_warmup(
        cls,
        warmup: np.ndarray,
        routing: RoutingMatrix | None = None,
        config: ServiceConfig | None = None,
        event_log: EventLog | None = None,
        refit_hook: Callable[[], None] | None = None,
        latency_clock: Callable[[], float] = time.perf_counter,
    ) -> "DetectionService":
        """Bootstrap a lifecycle on ``warmup`` and wrap a service on it."""
        config = config or ServiceConfig()
        lifecycle = ModelLifecycleManager(
            confidence=config.confidence,
            threshold_sigma=config.threshold_sigma,
            normal_rank=config.normal_rank,
            min_normal_rank=config.min_normal_rank,
            max_normal_rank=config.max_normal_rank,
            tile_rows=config.tile_rows,
            refit_hook=refit_hook,
            dtype=config.dtype,
        )
        lifecycle.bootstrap(warmup)
        return cls(
            lifecycle,
            routing=routing,
            config=config,
            event_log=event_log,
            latency_clock=latency_clock,
        )

    # ------------------------------------------------------------------
    def _build_metrics(self) -> None:
        registry = MetricsRegistry()
        self.metrics = registry
        self._m_rows = registry.counter(
            "repro_rows_ingested_total", "Rows accepted and scored."
        )
        self._m_alarms = registry.counter(
            "repro_alarms_total", "Rows whose SPE exceeded the threshold."
        )
        self._m_errors = registry.counter(
            "repro_ingest_errors_total",
            "Rejected rows and transport faults, by reason.",
            label="reason",
        )
        self._m_refits = registry.counter(
            "repro_refits_total", "Successful model refits."
        )
        self._m_refit_failures = registry.counter(
            "repro_refit_failures_total",
            "Refit attempts that raised; the active model was kept.",
        )
        self._m_swaps = registry.counter(
            "repro_model_swaps_total", "Atomic model hot-swaps performed."
        )
        self._m_checkpoints = registry.counter(
            "repro_checkpoints_total",
            "Lifecycle checkpoints written successfully.",
        )
        self._g_spe = registry.gauge(
            "repro_spe_last", "SPE of the most recently scored row."
        )
        self._g_threshold = registry.gauge(
            "repro_spe_threshold",
            "Q-statistic limit of the active model version.",
        )
        self._g_rank = registry.gauge(
            "repro_normal_rank",
            "Normal-subspace rank of the active model version.",
        )
        self._g_version = registry.gauge(
            "repro_model_version", "Active model version id."
        )
        self._g_refresh_age = registry.gauge(
            "repro_model_refresh_age_rows",
            "Rows ingested since the active version was trained.",
        )
        self._g_tracker_threshold = registry.gauge(
            "repro_tracker_threshold",
            "Adaptive SPE limit of the drift tracker.",
        )
        self._g_drift = registry.gauge(
            "repro_tracker_drift_radians",
            "Largest principal angle between the drift tracker's "
            "subspace and the active model's.",
        )
        self._h_latency = registry.histogram(
            "repro_ingest_latency_seconds",
            "Wall-clock seconds spent handling one ingested row, "
            "accepted or rejected.",
        )

    def _seed_tracker(
        self, version: ModelVersion
    ) -> IncrementalSubspaceTracker:
        pca = version.detector.model.pca
        covariance = (pca.components * pca.eigenvalues()) @ pca.components.T
        return IncrementalSubspaceTracker(
            normal_rank=version.normal_rank,
            forgetting=self.config.forgetting,
            confidence=self.config.confidence,
            refresh_interval=self.config.tracker_refresh_interval,
        ).warm_up_from_moments(pca.mean, covariance)

    def _reference_basis(self, version: ModelVersion) -> np.ndarray:
        pca = version.detector.model.pca
        return pca.components[:, : version.normal_rank]

    def _refresh_model_gauges(self) -> None:
        version = self.lifecycle.current
        self._g_threshold.set(version.threshold)
        self._g_rank.set(version.normal_rank)
        self._g_version.set(version.version)
        self._g_refresh_age.set(self.lifecycle.rows - version.trained_rows)
        self._g_tracker_threshold.set(self._tracker.threshold)
        self._g_drift.set(
            self._tracker.drift_from(self._reference_basis(version))
        )

    # ------------------------------------------------------------------
    @property
    def num_links(self) -> int:
        """Measurement width ``m``."""
        return self._num_links

    @property
    def warmup_rows(self) -> int:
        """Rows in the bootstrap block (never scored, own no bins)."""
        return self._warmup_rows

    @property
    def rows_ingested(self) -> int:
        """Stream rows accepted so far (= the next bin to assign)."""
        with self._lock:
            return self._stream_rows

    @property
    def last_refit_error(self) -> str | None:
        with self._lock:
            return self._last_refit_error

    # ------------------------------------------------------------------
    def record_error(self, reason: str, detail: str = "") -> None:
        """Count one rejection/fault and log it (shared with HTTP layer)."""
        if reason not in ERROR_REASONS:
            raise ServiceError(f"unknown error reason {reason!r}")
        self._m_errors.inc(label_value=reason)
        self.events.emit("ingest_error", reason=reason, detail=detail)

    def _validate_row(
        self, row, bin_id: int | None
    ) -> np.ndarray:
        try:
            values = np.asarray(row, dtype=np.float64)
        except (TypeError, ValueError) as err:
            raise IngestError(
                f"row is not numeric: {err}", reason="bad_payload"
            ) from err
        if values.ndim != 1:
            raise IngestError(
                f"a row must be one-dimensional, got shape {values.shape}",
                reason="bad_payload",
            )
        if values.shape[0] != self._num_links:
            raise IngestError(
                f"row has {values.shape[0]} links, expected "
                f"{self._num_links}",
                reason="wrong_width",
            )
        if not np.all(np.isfinite(values)):
            raise IngestError(
                "row contains NaN or infinite link counts",
                reason="non_finite",
            )
        if bin_id is not None:
            expected = self._stream_rows
            if bin_id < expected:
                raise IngestError(
                    f"bin {bin_id} was already ingested (next is "
                    f"{expected})",
                    reason="duplicate_bin",
                )
            if bin_id > expected:
                raise IngestError(
                    f"bin {bin_id} arrived out of order (next is "
                    f"{expected})",
                    reason="out_of_order_bin",
                )
        return values

    def ingest_row(self, row, bin_id: int | None = None) -> RowOutcome:
        """Validate, score, diagnose, and fold one arriving row.

        Raises :class:`~repro.exceptions.IngestError` on rejection — the
        error counter and event log are already updated when it leaves,
        and the service state is untouched (the stream position does not
        advance).  The latency histogram observes *every* row, accepted
        or rejected — rejections consume wall-clock too, and a flood of
        malformed traffic must not vanish from the latency telemetry.
        """
        begin = self._latency_clock()
        try:
            return self._ingest_row(row, bin_id)
        finally:
            self._h_latency.observe(self._latency_clock() - begin)

    def _ingest_row(self, row, bin_id: int | None = None) -> RowOutcome:
        with self._lock:
            try:
                values = self._validate_row(row, bin_id)
            except IngestError as err:
                self.record_error(err.reason, detail=str(err))
                raise
            version = self.lifecycle.current
            # One fused kernel pass scores the row and compares it to
            # the threshold (bit-identical to detector.spe + compare).
            scored = version.detector.model.score_block(
                values[None, :], threshold=float(version.threshold)
            )
            spe = float(scored.spe[0])
            flag = bool(scored.flags[0])
            outcome = RowOutcome(
                bin=self._stream_rows,
                spe=spe,
                threshold=float(version.threshold),
                flag=flag,
                model_version=version.version,
            )
            if flag and self._directions is not None:
                outcome = self._identify(outcome, values, version)
            self._stream_rows += 1
            self._m_rows.inc()
            self._g_spe.set(spe)
            if flag:
                self._m_alarms.inc()
                self.events.emit("alarm", **outcome.to_json())
            self._tracker.update_block(values[None, :], refresh=False)
            self.lifecycle.append_rows(values[None, :])
            self._g_refresh_age.set(
                self.lifecycle.rows - version.trained_rows
            )
            self._g_tracker_threshold.set(self._tracker.threshold)
            self._g_drift.set(
                self._tracker.drift_from(self._reference_basis(version))
            )
            due = (
                self.config.refit_interval is not None
                and self.lifecycle.rows - version.trained_rows
                >= self.config.refit_interval
            )
            if due and self.config.synchronous_refit:
                self._do_refit()
            checkpoint_due = (
                self.config.checkpoint_path is not None
                and self.config.checkpoint_interval is not None
                and self._stream_rows % self.config.checkpoint_interval == 0
            )
            if checkpoint_due:
                # Auto-checkpoints are fail-soft: a sick disk is counted
                # under ``checkpoint_failed`` and serving continues.
                try:
                    self.checkpoint()
                except ServiceError:
                    pass
        if due and not self.config.synchronous_refit:
            self.request_refit()
        return outcome

    def ingest_rows(
        self, rows, bins=None
    ) -> list[RowOutcome]:
        """Ingest a batch in order; stops at (and re-raises) the first
        rejection, leaving earlier rows ingested.

        Delegates to :meth:`ingest_block` — the outcomes (and every
        model swap boundary) are bit-identical to looping
        :meth:`ingest_row`, with the control-plane cost paid once per
        block instead of once per row.
        """
        result = self.ingest_block(rows, bins=bins)
        if result.rejected is not None:
            raise result.rejected
        return list(result.outcomes)

    # -- batched fast path ---------------------------------------------
    def ingest_block(self, rows, bins=None) -> BlockResult:
        """Validate, score, diagnose, and fold a block of rows at once.

        **Exact by construction.**  The accepted rows are scored through
        the same row-decomposable :meth:`~repro.core.subspace.\
SubspaceModel.score_block` kernel the per-row path runs — one call per
        contiguous run under one model version instead of one call per
        row — so every SPE, flag, and identification is bit-identical
        to ingesting the rows one at a time, including across
        synchronous hot-swap boundaries (the run splits exactly where a
        refit would fall due row-by-row).  Validation is vectorized
        (masks over the ``(n, m)`` block) but reproduces the per-row
        reject contract exactly: same reason, same message, same split
        index, and rejects never advance the stream.

        Unlike :meth:`ingest_rows` a rejection does not raise: the
        returned :class:`BlockResult` carries the accepted prefix plus
        the would-be :class:`~repro.exceptions.IngestError`, so
        transports can report both without re-scoring.  Accounting is
        amortized — one latency-histogram observation and one buffered
        event-log write per block (flushed on checkpoint and close);
        counter totals and final gauge values match the per-row path.
        Auto-checkpoints are evaluated once per block: crossing one or
        more ``checkpoint_interval`` multiples inside a block writes a
        single checkpoint at the block boundary.
        """
        begin = self._latency_clock()
        try:
            return self._ingest_block(rows, bins)
        finally:
            self._h_latency.observe(self._latency_clock() - begin)

    def _ingest_block(self, rows, bins) -> BlockResult:
        pending: list[tuple[str, dict]] = []
        due_async = False
        with self._lock:
            try:
                coerced = self._coerce_block(rows, bins)
                if coerced is None:
                    # Ragged / non-numeric payloads cannot be validated
                    # as one array; the per-row loop finds the exact
                    # split the contract promises.
                    return self._ingest_block_fallback(rows, bins)
                values, bins_arr = coerced
                if values.shape[0] == 0:
                    return BlockResult(outcomes=())
                before = self._stream_rows
                split, reject = self._validate_block(values, bins, bins_arr)
                outcomes = self._ingest_accepted(values[:split], pending)
                interval = self.config.checkpoint_interval
                checkpoint_due = (
                    self.config.checkpoint_path is not None
                    and interval is not None
                    and self._stream_rows // interval > before // interval
                )
                if checkpoint_due:
                    self._drain_events(pending)
                    # Fail-soft, like per-row auto-checkpoints.
                    try:
                        self.checkpoint()
                    except ServiceError:
                        pass
                if reject is not None:
                    self._m_errors.inc(label_value=reject.reason)
                    pending.append(
                        (
                            "ingest_error",
                            {"reason": reject.reason, "detail": str(reject)},
                        )
                    )
                version = self.lifecycle.current
                due_async = (
                    self.config.refit_interval is not None
                    and not self.config.synchronous_refit
                    and self.lifecycle.rows - version.trained_rows
                    >= self.config.refit_interval
                )
                result = BlockResult(
                    outcomes=tuple(outcomes),
                    rejected=reject,
                    rejected_index=None if reject is None else split,
                )
            finally:
                self._drain_events(pending)
        if due_async:
            self.request_refit()
        return result

    def _coerce_block(self, rows, bins):
        """``(values, bins_array)`` for the vectorized path, else None."""
        try:
            values = np.asarray(rows, dtype=np.float64)
        except (TypeError, ValueError):
            return None
        if values.ndim != 2:
            return None
        bins_arr = None
        if bins is not None:
            try:
                bins_arr = np.asarray(bins)
            except (TypeError, ValueError):
                return None
            if (
                bins_arr.ndim != 1
                or bins_arr.shape[0] != values.shape[0]
                or bins_arr.dtype.kind not in "iufb"
            ):
                return None
        return values, bins_arr

    def _validate_block(
        self, values: np.ndarray, bins, bins_arr
    ) -> tuple[int, IngestError | None]:
        """First-bad split of a rectangular block, per-row semantics.

        Returns ``(split, error)``: rows ``[:split]`` are exactly the
        rows a per-row loop would accept, and ``error`` (None when the
        whole block passes) is the :class:`IngestError` the loop would
        raise at row ``split`` — same reason, same message.
        """
        n = values.shape[0]
        if values.shape[1] != self._num_links:
            return 0, IngestError(
                f"row has {values.shape[1]} links, expected "
                f"{self._num_links}",
                reason="wrong_width",
            )
        finite = np.isfinite(values).all(axis=1)
        bad = ~finite
        if bins_arr is not None:
            expected = self._stream_rows + np.arange(n)
            # Mirror the per-row comparisons exactly: a NaN bin fails
            # both orderings and is therefore *accepted*, as it is by
            # ``_validate_row``.
            bad |= (bins_arr < expected) | (bins_arr > expected)
        if not bad.any():
            return n, None
        split = int(np.argmax(bad))
        if not finite[split]:
            return split, IngestError(
                "row contains NaN or infinite link counts",
                reason="non_finite",
            )
        expected_bin = self._stream_rows + split
        bin_value = bins[split]
        if bin_value < expected_bin:
            return split, IngestError(
                f"bin {bin_value} was already ingested (next is "
                f"{expected_bin})",
                reason="duplicate_bin",
            )
        return split, IngestError(
            f"bin {bin_value} arrived out of order (next is "
            f"{expected_bin})",
            reason="out_of_order_bin",
        )

    def _ingest_accepted(
        self, accepted: np.ndarray, pending: list
    ) -> list[RowOutcome]:
        """Score and fold an accepted run, splitting at refit boundaries.

        Each sub-run is every row up to the next synchronous-refit due
        point: one fused ``score_block`` call, one suffstats fold, one
        tracker fold — then the refit (if due) swaps the version exactly
        where the per-row loop would have swapped it.  Flagged rows are
        identified one at a time with the same single-row call the
        per-row path makes, so identification stays bitwise identical
        (BLAS matmuls are not row-decomposable; alarms are rare enough
        that this costs nothing measurable).
        """
        outcomes: list[RowOutcome] = []
        position = 0
        total = accepted.shape[0]
        while position < total:
            version = self.lifecycle.current
            take = total - position
            synchronous = (
                self.config.synchronous_refit
                and self.config.refit_interval is not None
            )
            if synchronous:
                until_due = self.config.refit_interval - (
                    self.lifecycle.rows - version.trained_rows
                )
                take = min(take, max(1, until_due))
            chunk = accepted[position : position + take]
            threshold = float(version.threshold)
            scored = version.detector.model.score_block(
                chunk, threshold=threshold
            )
            start_bin = self._stream_rows
            for i in range(take):
                flag = bool(scored.flags[i])
                outcome = RowOutcome(
                    bin=start_bin + i,
                    spe=float(scored.spe[i]),
                    threshold=threshold,
                    flag=flag,
                    model_version=version.version,
                )
                if flag:
                    if self._directions is not None:
                        outcome = self._identify(outcome, chunk[i], version)
                    pending.append(("alarm", outcome.to_json()))
                outcomes.append(outcome)
            flagged = int(np.count_nonzero(scored.flags))
            self._stream_rows += take
            self._m_rows.inc(float(take))
            self._g_spe.set(float(scored.spe[take - 1]))
            if flagged:
                self._m_alarms.inc(float(flagged))
            self._tracker.update_block(chunk, refresh=False)
            self.lifecycle.append_rows(chunk)
            self._g_refresh_age.set(
                self.lifecycle.rows - version.trained_rows
            )
            self._g_tracker_threshold.set(self._tracker.threshold)
            self._g_drift.set(
                self._tracker.drift_from(self._reference_basis(version))
            )
            position += take
            due = (
                self.config.refit_interval is not None
                and self.lifecycle.rows - version.trained_rows
                >= self.config.refit_interval
            )
            if due and synchronous:
                self._drain_events(pending)
                self._do_refit()
        return outcomes

    def _ingest_block_fallback(self, rows, bins) -> BlockResult:
        """Per-row loop for payloads the array path cannot represent."""
        outcomes: list[RowOutcome] = []
        for index, row in enumerate(rows):
            bin_id = None if bins is None else bins[index]
            try:
                outcomes.append(self._ingest_row(row, bin_id))
            except IngestError as err:
                return BlockResult(
                    outcomes=tuple(outcomes),
                    rejected=err,
                    rejected_index=index,
                )
        return BlockResult(outcomes=tuple(outcomes))

    def _drain_events(self, pending: list) -> None:
        if pending:
            self.events.emit_many(list(pending))
            pending.clear()

    def _identify(
        self,
        outcome: RowOutcome,
        values: np.ndarray,
        version: ModelVersion,
    ) -> RowOutcome:
        identification = identify_block(
            version.detector.model, self._directions, values[None, :]
        )
        winner = int(identification.flow_indices[0])
        magnitude = float(identification.magnitudes[0])
        return replace(
            outcome,
            flow_index=winner,
            od_pair=self._routing.od_pairs[winner],
            magnitude=magnitude,
            estimated_bytes=magnitude * float(self._quant_ratio[winner]),
        )

    # ------------------------------------------------------------------
    def refit(self) -> ModelVersion:
        """Fit a candidate from the accumulated statistics and hot-swap.

        On failure the active model is untouched, the failure counter
        and event log record the cause, and the error re-raises as
        :class:`~repro.exceptions.ServiceError`.
        """
        with self._lock:
            return self._do_refit()

    def _do_refit(self) -> ModelVersion:
        try:
            detector, trained_rows = self.lifecycle.fit_candidate()
            version = self.lifecycle.activate(detector, trained_rows)
        except Exception as err:
            with self._lock:
                self._last_refit_error = str(err)
            self._m_refit_failures.inc()
            self.record_error("refit_failed", detail=str(err))
            self.events.emit("refit_failed", error=str(err))
            raise ServiceError(f"refit failed: {err}") from err
        with self._lock:
            self._tracker = self._seed_tracker(version)
            self._last_refit_error = None
            self._m_refits.inc()
            self._m_swaps.inc()
            self._refresh_model_gauges()
            self.events.emit("model_swap", **version.summary())
            return version

    def checkpoint(self, path: str | None = None) -> dict:
        """Persist the lifecycle (plus stream position) atomically.

        Writes to ``path`` or the configured ``checkpoint_path`` via the
        lifecycle's temp-file-and-rename protocol, so a crash mid-write
        leaves the previous complete checkpoint intact.  On success the
        checkpoint counter and event log record it; on failure the
        ``checkpoint_failed`` error reason is counted and the cause
        re-raises as :class:`~repro.exceptions.ServiceError`.
        """
        target = path if path is not None else self.config.checkpoint_path
        if target is None:
            raise ServiceError(
                "no checkpoint path: pass one or set "
                "ServiceConfig.checkpoint_path"
            )
        with self._lock:
            # A checkpoint is a durability point: buffered batch events
            # must not outlive a crash the checkpoint survives.
            self.events.flush()
            extra = {
                "warmup_rows": self._warmup_rows,
                "stream_rows": self._stream_rows,
            }
            try:
                summary = self.lifecycle.checkpoint(target, extra=extra)
            except Exception as err:
                self.record_error("checkpoint_failed", detail=str(err))
                raise ServiceError(f"checkpoint failed: {err}") from err
            self._m_checkpoints.inc()
            self.events.emit(
                "checkpoint",
                path=str(target),
                rows_ingested=self._stream_rows,
                model_version=summary["version"],
            )
            return {
                "path": str(target),
                "rows_ingested": self._stream_rows,
                "current": summary,
            }

    def request_refit(self) -> bool:
        """Kick off a background refit; False when one is in flight."""
        with self._lock:
            if self._refit_thread is not None and self._refit_thread.is_alive():
                return False
            thread = threading.Thread(
                target=self._background_refit,
                name="repro-service-refit",
                daemon=True,
            )
            self._refit_thread = thread
        thread.start()
        return True

    def _background_refit(self) -> None:
        try:
            self._do_refit()
        except ServiceError:
            pass  # already counted and logged; serving continues

    def wait_for_refit(self, timeout: float | None = None) -> None:
        """Block until no background refit is running (test helper)."""
        with self._lock:
            thread = self._refit_thread
        if thread is not None:
            thread.join(timeout)

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Liveness payload: always ``status: ok`` while the object
        serves — faults are reported through counters, not health."""
        version = self.lifecycle.current
        with self._lock:
            refitting = (
                self._refit_thread is not None
                and self._refit_thread.is_alive()
            )
            return {
                "status": "ok",
                "model_version": version.version,
                "normal_rank": int(version.normal_rank),
                "threshold": float(version.threshold),
                "num_links": self._num_links,
                "warmup_rows": self._warmup_rows,
                "rows_ingested": self._stream_rows,
                "alarms": int(self._m_alarms.value()),
                "errors": int(self._m_errors.total()),
                "refit_in_flight": refitting,
                "last_refit_error": self._last_refit_error,
            }

    def version_info(self) -> dict:
        """``/version`` payload: the active model plus full history."""
        history = self.lifecycle.version_history()
        return {
            "current": history[-1].summary(),
            "history": [version.summary() for version in history],
            "dtype": self.config.dtype,
        }

    def metrics_text(self) -> str:
        """The Prometheus exposition (refreshes model gauges first)."""
        with self._lock:
            self._refresh_model_gauges()
        return self.metrics.render()

    def close(self) -> None:
        """Checkpoint (if configured), emit the stop event, close the log.

        The shutdown checkpoint is what makes a SIGTERM restart warm:
        the daemon's signal handler funnels into ``close()``, so the
        last stream position always lands on disk before the process
        exits.  Like auto-checkpoints it is fail-soft — a dying disk
        must not block shutdown.
        """
        if self.config.checkpoint_path is not None:
            try:
                self.checkpoint()
            except ServiceError:
                pass  # counted under checkpoint_failed; keep shutting down
        self.events.flush()
        self.events.emit(
            "service_stop",
            rows_ingested=self.rows_ingested,
            alarms=int(self._m_alarms.value()),
        )
        self.events.close()
