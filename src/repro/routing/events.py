"""Routing events: link failures and weight changes.

The paper's future-work section (§7.2, §9) discusses anomalies caused by
routing changes — events that shift *multiple* OD flows at once.  These
event types let experiments rewire a network mid-trace and compare the
before/after routing matrices; the multi-flow identification extension in
:mod:`repro.core.identification` can then be exercised on realistic
reroute signatures.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import RoutingError
from repro.routing.protocol import SPFRouting
from repro.routing.routing_matrix import RoutingMatrix, build_routing_matrix
from repro.topology.link import Link
from repro.topology.network import Network

__all__ = ["LinkFailure", "WeightChange", "apply_events", "reroute_delta"]


@dataclass(frozen=True, slots=True)
class LinkFailure:
    """Both directions of an inter-PoP edge go down."""

    source: str
    target: str

    def affected_links(self, network: Network) -> list[str]:
        """Canonical names of the failed directed links present in ``network``."""
        names = [f"{self.source}->{self.target}", f"{self.target}->{self.source}"]
        present = [name for name in names if network.has_link(name)]
        if not present:
            raise RoutingError(
                f"no links between {self.source!r} and {self.target!r}"
            )
        return present


@dataclass(frozen=True, slots=True)
class WeightChange:
    """The IS-IS metric of a directed link changes (traffic engineering)."""

    link_name: str
    new_weight: float

    def __post_init__(self) -> None:
        if self.new_weight <= 0:
            raise RoutingError(
                f"link weight must be positive, got {self.new_weight!r}"
            )


def apply_events(
    network: Network,
    events: Sequence[LinkFailure | WeightChange],
    ecmp: bool = False,
) -> RoutingMatrix:
    """Recompute the routing matrix after the given events.

    Failures are modeled by excluding the affected links from SPF; weight
    changes rebuild the network with updated metrics.  The input network is
    never mutated.
    """
    excluded: set[str] = set()
    new_weights: dict[str, float] = {}
    for event in events:
        if isinstance(event, LinkFailure):
            excluded.update(event.affected_links(network))
        elif isinstance(event, WeightChange):
            if not network.has_link(event.link_name):
                raise RoutingError(f"unknown link: {event.link_name!r}")
            new_weights[event.link_name] = event.new_weight
        else:
            raise RoutingError(f"unknown event type: {type(event).__name__}")

    effective = _with_weights(network, new_weights) if new_weights else network
    table = SPFRouting(effective, ecmp=ecmp).compute(exclude_links=excluded)
    return build_routing_matrix(effective, table)


def _with_weights(network: Network, new_weights: dict[str, float]) -> Network:
    """Copy a network, overriding the weights of selected links."""
    clone = Network(network.name)
    for pop in network.pops:
        clone.add_pop(pop)
    for link in network.links:
        weight = new_weights.get(link.name, link.weight)
        clone.add_link(
            Link(
                source=link.source,
                target=link.target,
                capacity_bps=link.capacity_bps,
                weight=weight,
                kind=link.kind,
            )
        )
    return clone


def reroute_delta(
    before: RoutingMatrix, after: RoutingMatrix
) -> list[tuple[str, str]]:
    """OD pairs whose routing changed between two routing matrices.

    Useful for constructing multi-flow anomaly hypotheses: a routing event
    perturbs exactly these flows.
    """
    if before.od_pairs != after.od_pairs:
        raise RoutingError("routing matrices cover different OD pairs")
    if before.link_names != after.link_names:
        # A failed link keeps its row (it simply carries no flows), so rows
        # should always agree; differing rows indicate a topology mismatch.
        raise RoutingError("routing matrices cover different links")
    changed = []
    for j, od_pair in enumerate(before.od_pairs):
        if not _columns_equal(before.matrix[:, j], after.matrix[:, j]):
            changed.append(od_pair)
    return changed


def _columns_equal(a, b) -> bool:
    import numpy as np

    return bool(np.allclose(a, b, atol=1e-12))
