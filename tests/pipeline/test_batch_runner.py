"""BatchRunner: scenario grids share models yet match per-module runs."""

import numpy as np
import pytest

from repro.core import SPEDetector
from repro.exceptions import ValidationError
from repro.pipeline import BatchRunner
from repro.validation import InjectionStudy


CONFIDENCES = (0.995, 0.999)


@pytest.fixture(scope="module")
def report(small_dataset):
    runner = BatchRunner(
        [small_dataset],
        confidences=CONFIDENCES,
        injection_sizes=(4e7,),
        injection_bins=24,
    )
    return runner.run()


class TestBaselineParity:
    """Identical detections to fitting SPEDetector per confidence."""

    @pytest.mark.parametrize("confidence", CONFIDENCES)
    def test_flags_and_threshold_match(self, small_dataset, report, confidence):
        detector = SPEDetector(confidence=confidence).fit(
            small_dataset.link_traffic
        )
        expected = detector.detect(small_dataset.link_traffic)
        baseline = report.baseline(small_dataset.name, confidence)
        assert baseline.threshold == expected.threshold
        assert np.array_equal(baseline.flags, expected.flags)
        assert baseline.num_alarms == expected.num_alarms

    def test_unknown_baseline_raises(self, report):
        with pytest.raises(ValidationError):
            report.baseline("no-such-world", 0.999)


class TestInjectionScenarios:
    def test_matches_injection_study_at_fitted_confidence(
        self, small_dataset, report
    ):
        study = InjectionStudy(small_dataset, confidence=CONFIDENCES[0])
        expected = study.run(4e7, time_bins=np.arange(24))
        scenario = next(
            s
            for s in report
            if s.injection_size == 4e7 and s.confidence == CONFIDENCES[0]
        )
        assert scenario.detection_rate == pytest.approx(
            expected.detection_rate, abs=1e-12
        )
        assert scenario.identification_rate == pytest.approx(
            expected.identification_rate, abs=1e-12
        )

    def test_higher_confidence_never_detects_more(self, report):
        rates = {
            s.confidence: s.detection_rate
            for s in report
            if s.injection_size is not None
        }
        assert rates[0.999] <= rates[0.995]

    def test_grid_is_complete(self, small_dataset, report):
        # one baseline + one injection scenario per confidence level
        assert len(report) == 2 * len(CONFIDENCES)
        names = {s.dataset for s in report}
        assert names == {small_dataset.name}


class TestReportRendering:
    def test_table_lists_every_scenario(self, small_dataset, report):
        table = report.table()
        assert small_dataset.name in table
        assert "0.9990" in table and "0.9950" in table
        assert "4.00e+07" in table
        # header + rule + one line per scenario
        assert len(table.splitlines()) == 2 + len(report)


class TestValidation:
    def test_rejects_empty_inputs(self, small_dataset):
        with pytest.raises(ValidationError):
            BatchRunner([], confidences=(0.999,))
        with pytest.raises(ValidationError):
            BatchRunner([small_dataset], confidences=())

    def test_rejects_bad_confidence_and_size(self, small_dataset):
        with pytest.raises(ValidationError):
            BatchRunner([small_dataset], confidences=(1.5,))
        with pytest.raises(ValidationError):
            BatchRunner([small_dataset], injection_sizes=(0.0,))

    def test_pipeline_cache_reused(self, small_dataset):
        runner = BatchRunner([small_dataset])
        first = runner.pipeline_for(small_dataset)
        assert runner.pipeline_for(small_dataset) is first
