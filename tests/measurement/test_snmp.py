"""Tests for repro.measurement.snmp."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.measurement import SNMPPoller, decode_counters
from repro.measurement.snmp import COUNTER32_MAX


class TestPollDecodeRoundTrip:
    def test_lossless_64bit(self, rng):
        link_bytes = rng.uniform(0, 1e9, size=(50, 8))
        poller = SNMPPoller(counter_bits=64)
        readings = poller.poll(link_bytes)
        decoded = decode_counters(readings, counter_bits=64)
        assert np.allclose(decoded, link_bytes)

    def test_readings_shape(self, rng):
        link_bytes = rng.uniform(0, 1e6, size=(10, 3))
        readings = SNMPPoller().poll(link_bytes)
        assert readings.shape == (11, 3)

    def test_counters_start_at_zero(self, rng):
        readings = SNMPPoller().poll(rng.uniform(0, 1e6, size=(5, 2)))
        assert np.all(readings[0] == 0)


class TestCounterWrap:
    def test_32bit_wrap_recovered(self):
        # Three bins of 3 GB each wrap a 32-bit counter every other bin.
        link_bytes = np.full((3, 1), 3e9)
        poller = SNMPPoller(counter_bits=32)
        readings = poller.poll(link_bytes)
        assert np.all(readings <= COUNTER32_MAX)
        decoded = decode_counters(readings, counter_bits=32)
        assert np.allclose(decoded, link_bytes)

    def test_many_wraps_across_trace(self):
        link_bytes = np.full((20, 2), 2.5e9)
        poller = SNMPPoller(counter_bits=32)
        decoded = decode_counters(poller.poll(link_bytes), counter_bits=32)
        assert np.allclose(decoded, link_bytes)


class TestDroppedPolls:
    def test_gap_spreads_bytes_evenly(self):
        readings = np.array([[0.0], [100.0], [np.nan], [300.0]])
        decoded = decode_counters(readings)
        # 200 bytes accumulated over bins 1 and 2 -> 100 each.
        assert np.allclose(decoded[:, 0], [100.0, 100.0, 100.0])

    def test_trailing_gap_reports_zero(self):
        readings = np.array([[0.0], [50.0], [np.nan]])
        decoded = decode_counters(readings)
        assert np.allclose(decoded[:, 0], [50.0, 0.0])

    def test_drops_preserve_total_mass(self, rng):
        link_bytes = rng.uniform(1e5, 1e6, size=(100, 4))
        poller = SNMPPoller(drop_probability=0.2, seed=9)
        readings = poller.poll(link_bytes)
        decoded = decode_counters(readings)
        # Totals match except for bytes after the final successful poll.
        for j in range(4):
            column = readings[:, j]
            last_ok = np.max(np.nonzero(~np.isnan(column))[0])
            assert decoded[: last_ok, j].sum() == pytest.approx(
                link_bytes[: last_ok, j].sum()
            )

    def test_missing_baseline_rejected(self):
        readings = np.array([[np.nan], [100.0]])
        with pytest.raises(MeasurementError):
            decode_counters(readings)


class TestValidation:
    def test_poller_rejects_bad_bits(self):
        with pytest.raises(MeasurementError):
            SNMPPoller(counter_bits=16)

    def test_poller_rejects_bad_drop_probability(self):
        with pytest.raises(MeasurementError):
            SNMPPoller(drop_probability=1.0)

    def test_poll_rejects_negative_traffic(self):
        with pytest.raises(MeasurementError):
            SNMPPoller().poll(np.array([[-1.0]]))

    def test_decode_rejects_short_input(self):
        with pytest.raises(MeasurementError):
            decode_counters(np.ones((1, 2)))
