"""Workload presets for the paper's three datasets.

Each :class:`WorkloadConfig` pins every generator knob plus the seeds, so
``workload_for("sprint-1")`` always produces the same world.  Magnitudes
are calibrated to the paper:

* Sprint anomaly knee near 2·10⁷ bytes per 10-minute bin, Abilene near
  8·10⁷ (paper §6.2);
* Abilene traffic noisier than Sprint (its 1%-random 5-tuple sampling,
  paper §3/§6.2), expressed here as a higher noise coefficient.  Noise is
  Poisson-like (std = coefficient * sqrt(mean)), so big flows fluctuate
  more in absolute terms but less in relative terms — keeping the
  EWMA/Fourier ground-truth extraction clean while the SPE noise floor
  lands where the paper's detectability boundary sits;
* per-link loads of order 10⁷–10⁸ bytes per bin (paper Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import TrafficError
from repro.traffic.diurnal import DiurnalProfile

__all__ = ["WorkloadConfig", "workload_for", "WORKLOAD_NAMES"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Full parameterization of one synthetic dataset.

    Attributes mirror :class:`~repro.traffic.od_flows.ODFlowGenerator`
    parameters plus the anomaly-placement settings consumed by
    :func:`repro.traffic.anomalies.make_anomaly_events`.
    """

    name: str
    topology: str  # "abilene" | "sprint-europe"
    num_bins: int = 1008
    bin_seconds: float = 600.0
    total_bytes_per_bin: float = 2.5e9
    num_patterns: int = 3
    diurnal_strength: float = 0.45
    diurnal_peak_hour: float = 14.0
    weekend_factor: float = 0.55
    noise_kind: str = "gaussian"
    noise_relative: float = 280.0
    noise_exponent: float = 0.5
    noise_floor: float = 0.0
    gravity_jitter: float = 0.35
    self_traffic_factor: float = 0.25
    pattern_mixing: float = 0.15
    num_anomalies: int = 40
    anomaly_size_range: tuple[float, float] = (2.0e6, 4.0e7)
    anomaly_pareto_shape: float = 1.1
    anomaly_negative_fraction: float = 0.10
    traffic_seed: int = 0
    anomaly_seed: int = 0

    def __post_init__(self) -> None:
        if self.num_bins < 2:
            raise TrafficError(f"num_bins must be >= 2, got {self.num_bins}")
        if self.topology not in ("abilene", "sprint-europe"):
            raise TrafficError(f"unknown topology: {self.topology!r}")
        low, high = self.anomaly_size_range
        if not 0 < low <= high:
            raise TrafficError(
                f"invalid anomaly_size_range: {self.anomaly_size_range!r}"
            )

    def diurnal_profile(self) -> DiurnalProfile:
        """The daily cycle implied by this config."""
        return DiurnalProfile(
            peak_hour=self.diurnal_peak_hour,
            weekend_factor=self.weekend_factor,
        )

    def with_overrides(self, **changes) -> "WorkloadConfig":
        """A modified copy (ablation studies tweak single knobs this way)."""
        return replace(self, **changes)


#: One week of 10-minute bins, like the paper's Table 1.
_WEEK_BINS = 1008

_PRESETS: dict[str, WorkloadConfig] = {
    # Sprint-1: the Jul 07 - Jul 13 week.  Commercial European backbone:
    # pronounced weekday/weekend contrast, moderate noise.
    "sprint-1": WorkloadConfig(
        name="sprint-1",
        topology="sprint-europe",
        num_bins=_WEEK_BINS,
        total_bytes_per_bin=2.5e9,
        diurnal_strength=0.45,
        weekend_factor=0.50,
        noise_relative=280.0,
        noise_exponent=0.5,
        num_anomalies=40,
        anomaly_size_range=(2.0e6, 4.0e7),
        anomaly_pareto_shape=0.05,
        traffic_seed=11_001,
        anomaly_seed=11_002,
    ),
    # Sprint-2: the Aug 11 - Aug 17 week.  Same network a month later:
    # slightly different load, seeds, and anomaly mix.
    "sprint-2": WorkloadConfig(
        name="sprint-2",
        topology="sprint-europe",
        num_bins=_WEEK_BINS,
        total_bytes_per_bin=2.8e9,
        diurnal_strength=0.42,
        weekend_factor=0.62,
        noise_relative=290.0,
        noise_exponent=0.5,
        num_anomalies=40,
        anomaly_size_range=(2.0e6, 4.5e7),
        anomaly_pareto_shape=0.05,
        traffic_seed=12_001,
        anomaly_seed=12_002,
    ),
    # Abilene: the Apr 07 - Apr 13 week.  Research network: larger flows
    # (big university transfers), noisier measurements (1% random
    # sampling), flatter weekends, anomaly knee near 8e7 bytes.
    "abilene": WorkloadConfig(
        name="abilene",
        topology="abilene",
        num_bins=_WEEK_BINS,
        total_bytes_per_bin=9.0e9,
        diurnal_strength=0.38,
        weekend_factor=0.75,
        noise_kind="gaussian",
        noise_relative=550.0,
        noise_exponent=0.5,
        num_anomalies=40,
        anomaly_size_range=(8.0e6, 2.4e8),
        anomaly_pareto_shape=0.5,
        traffic_seed=21_001,
        anomaly_seed=21_002,
    ),
}

#: Names accepted by :func:`workload_for`.
WORKLOAD_NAMES: tuple[str, ...] = tuple(_PRESETS)


def workload_for(name: str) -> WorkloadConfig:
    """Return the preset config for ``"sprint-1"``, ``"sprint-2"`` or ``"abilene"``."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise TrafficError(
            f"unknown workload {name!r}; available: {', '.join(WORKLOAD_NAMES)}"
        ) from None
