"""Gravity model for mean OD-flow rates.

Traffic-matrix studies (e.g. Zhang et al., SIGMETRICS 2003 — reference
[31] of the paper) find that backbone OD means are well approximated by a
*gravity model*: the mean traffic from PoP ``o`` to PoP ``d`` is
proportional to the product of activity weights at the two endpoints.
This produces the heavy-tailed spread of flow sizes visible on the x-axis
of the paper's Figure 9 (several orders of magnitude between the smallest
and largest OD flows).
"""

from __future__ import annotations

import numpy as np

from repro._util import check_nonnegative, check_positive, rng_from
from repro.exceptions import TrafficError
from repro.topology.network import Network

__all__ = ["gravity_means", "flow_size_spread"]


def gravity_means(
    network: Network,
    total_bytes_per_bin: float,
    self_traffic_factor: float = 0.25,
    jitter: float = 0.0,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Mean bytes-per-bin for every OD flow, in ``network.od_pairs`` order.

    Parameters
    ----------
    network:
        Supplies PoP population weights and the OD-pair ordering.
    total_bytes_per_bin:
        Network-wide OD traffic per time bin; the returned vector sums to
        this value exactly.
    self_traffic_factor:
        Relative scale of same-PoP flows (traffic entering and exiting at
        one PoP is typically much smaller than transit traffic).
    jitter:
        Optional multiplicative lognormal jitter (sigma in log space) that
        breaks the exact rank-1 structure of the pure gravity model; real
        traffic matrices are close to, but not exactly, rank one.
    seed:
        Randomness source for the jitter.

    Returns
    -------
    numpy.ndarray
        Vector of length ``network.num_od_pairs``; strictly positive,
        summing to ``total_bytes_per_bin``.
    """
    check_positive(total_bytes_per_bin, "total_bytes_per_bin")
    check_nonnegative(self_traffic_factor, "self_traffic_factor")
    check_nonnegative(jitter, "jitter")
    if network.num_pops == 0:
        raise TrafficError("cannot build a traffic matrix for an empty network")

    weights = np.array([pop.population for pop in network.pops])
    raw = np.outer(weights, weights).astype(np.float64)
    if self_traffic_factor != 1.0:
        np.fill_diagonal(raw, raw.diagonal() * self_traffic_factor)
    means = raw.reshape(-1)  # origin-major, matching Network.od_pairs

    if jitter > 0.0:
        rng = rng_from(seed)
        means = means * rng.lognormal(mean=0.0, sigma=jitter, size=means.shape)

    if np.any(means <= 0):
        raise TrafficError("gravity model produced non-positive flow means")
    return means * (total_bytes_per_bin / means.sum())


def flow_size_spread(means: np.ndarray) -> float:
    """Orders of magnitude between the largest and smallest mean flow.

    A quick diagnostic for workload realism; the paper's networks show a
    spread of roughly 3-4 decades (Fig. 9).
    """
    means = np.asarray(means, dtype=np.float64)
    if means.ndim != 1 or means.size == 0:
        raise TrafficError("means must be a non-empty vector")
    if np.any(means <= 0):
        raise TrafficError("means must be strictly positive")
    return float(np.log10(means.max() / means.min()))
