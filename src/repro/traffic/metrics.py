"""Alternative link metrics (§7.2).

The paper observes that the subspace method applies to any per-link
metric for which the ℓ₂ norm is meaningful — it names the number of IP
flows and the average packet size.  This module derives such alternative
measurement matrices from a byte-count world so those extensions can be
exercised:

* **packet counts** — bytes divided by a sampled per-cell mean packet
  size (volume anomalies remain visible: extra bytes mean extra
  packets);
* **average packet size** — per-cell mean packet size with sampling
  noise (volume anomalies made of typical packets are *invisible* here,
  while packet-size anomalies like a flood of minimum-size packets stand
  out — a different anomaly class).
"""

from __future__ import annotations

import numpy as np

from repro._util import rng_from
from repro.exceptions import TrafficError
from repro.measurement.sampling import PacketSizeModel
from repro.routing.routing_matrix import RoutingMatrix
from repro.traffic.matrix import TrafficMatrix

__all__ = [
    "packet_count_links",
    "average_packet_size_links",
    "inject_small_packet_flood",
]


def packet_count_links(
    traffic: TrafficMatrix,
    routing: RoutingMatrix,
    size_model: PacketSizeModel | None = None,
    jitter: float = 0.01,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Per-link *packet* counts: ``Y_pkts ≈ (X / packet_size) Aᵀ``.

    Each OD cell's packet count is its bytes over a noisy per-cell mean
    packet size; ``jitter`` is the relative noise of that mean.
    """
    size_model = size_model if size_model is not None else PacketSizeModel()
    if jitter < 0:
        raise TrafficError(f"jitter must be >= 0, got {jitter}")
    rng = rng_from(seed)
    sizes = size_model.mean_bytes * (
        1.0 + rng.normal(0.0, jitter, size=traffic.values.shape)
    )
    sizes = np.maximum(sizes, 1.0)
    packets = traffic.values / sizes
    return routing.link_loads(packets)


def average_packet_size_links(
    traffic: TrafficMatrix,
    routing: RoutingMatrix,
    size_model: PacketSizeModel | None = None,
    jitter: float = 0.01,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Per-link average packet size (bytes per packet).

    Computed as total link bytes over total link packets; a volume
    anomaly of ordinary packets leaves this metric almost unchanged,
    while a small-packet flood (see :func:`inject_small_packet_flood`)
    drags it down on every traversed link.
    """
    byte_links = traffic.link_loads(routing)
    packet_links = packet_count_links(
        traffic, routing, size_model=size_model, jitter=jitter, seed=seed
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        avg = np.where(packet_links > 0, byte_links / packet_links, 0.0)
    return avg


def inject_small_packet_flood(
    traffic: TrafficMatrix,
    routing: RoutingMatrix,
    flow_index: int,
    time_bin: int,
    extra_packets: float,
    flood_packet_bytes: float = 64.0,
    size_model: PacketSizeModel | None = None,
    jitter: float = 0.01,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """A DDoS-like flood of tiny packets on one flow (§7.2 motivation).

    Returns ``(packet_links, avg_size_links)`` with the flood included:
    ``extra_packets`` packets of ``flood_packet_bytes`` each join flow
    ``flow_index`` at ``time_bin``.  The flood barely moves the *byte*
    matrix (64-byte packets) but spikes the packet-count metric and
    depresses the average-packet-size metric on the flow's path.
    """
    if extra_packets <= 0:
        raise TrafficError(f"extra_packets must be positive, got {extra_packets}")
    if flood_packet_bytes <= 0:
        raise TrafficError(
            f"flood_packet_bytes must be positive, got {flood_packet_bytes}"
        )
    if not 0 <= time_bin < traffic.num_bins:
        raise TrafficError(f"time_bin {time_bin} outside trace")
    if not 0 <= flow_index < traffic.num_flows:
        raise TrafficError(f"flow_index {flow_index} outside trace")

    size_model = size_model if size_model is not None else PacketSizeModel()
    rng = rng_from(seed)
    sizes = size_model.mean_bytes * (
        1.0 + rng.normal(0.0, jitter, size=traffic.values.shape)
    )
    sizes = np.maximum(sizes, 1.0)
    packets = traffic.values / sizes
    bytes_matrix = traffic.values.copy()

    packets[time_bin, flow_index] += extra_packets
    bytes_matrix[time_bin, flow_index] += extra_packets * flood_packet_bytes

    packet_links = routing.link_loads(packets)
    byte_links = routing.link_loads(bytes_matrix)
    with np.errstate(divide="ignore", invalid="ignore"):
        avg_links = np.where(packet_links > 0, byte_links / packet_links, 0.0)
    return packet_links, avg_links
