"""Tests for repro.core.detectability (§5.4)."""

import numpy as np
import pytest

from repro.core import SPEDetector, detectability_thresholds
from repro.exceptions import ModelError


@pytest.fixture(scope="module")
def report(request):
    sprint1 = request.getfixturevalue("sprint1")
    detector = SPEDetector().fit(sprint1.link_traffic)
    return detectability_thresholds(
        detector.model, sprint1.routing, detector.threshold
    ), detector, sprint1


class TestThresholds:
    def test_shapes(self, report):
        rep, detector, sprint1 = report
        assert rep.residual_alignment.shape == (sprint1.num_flows,)
        assert rep.min_bytes.shape == (sprint1.num_flows,)

    def test_alignment_bounded_by_one(self, report):
        rep, *_ = report
        assert np.all(rep.residual_alignment <= 1.0 + 1e-9)
        assert np.all(rep.residual_alignment >= 0.0)

    def test_delta_is_sqrt_threshold(self, report):
        rep, detector, _ = report
        assert rep.delta == pytest.approx(np.sqrt(detector.threshold))

    def test_formula(self, report):
        """b_i > 2 delta / (||C~ theta_i|| * ||A_i||)."""
        rep, detector, sprint1 = report
        norms = np.linalg.norm(sprint1.routing.matrix, axis=0)
        expected = 2 * rep.delta / (rep.residual_alignment * norms)
        finite = np.isfinite(rep.min_bytes)
        assert np.allclose(rep.min_bytes[finite], expected[finite])

    def test_sufficiency_guarantee(self, report):
        """An injection exceeding the §5.4 bound must always be detected
        (the bound is sufficient, not merely necessary)."""
        rep, detector, sprint1 = report
        rng = np.random.default_rng(0)
        flows = rng.choice(sprint1.num_flows, size=12, replace=False)
        for flow in flows:
            bound = rep.min_bytes[flow]
            if not np.isfinite(bound):
                continue
            size = bound * 1.05
            for time_bin in (50, 500, 950):
                y = sprint1.link_traffic[time_bin] + size * sprint1.routing.column(flow)
                assert detector.detect(y).flags[0]

    def test_normal_aligned_flows_are_harder(self, report):
        """Flows better aligned with the normal subspace need larger
        anomalies — the mechanism behind paper Fig. 9."""
        rep, _, _ = report
        order = np.argsort(rep.residual_alignment)
        weakest = rep.min_magnitude[order[:10]]
        strongest = rep.min_magnitude[order[-10:]]
        assert np.nanmean(weakest) > np.nanmean(strongest)

    def test_hardest_flows_have_largest_thresholds(self, report):
        rep, *_ = report
        hardest = rep.hardest_flows(5)
        assert len(hardest) == 5
        finite = rep.min_bytes[np.isfinite(rep.min_bytes)]
        assert rep.min_bytes[hardest[0]] == pytest.approx(finite.max())


class TestValidation:
    def test_negative_threshold_rejected(self, report):
        rep, detector, sprint1 = report
        with pytest.raises(ModelError):
            detectability_thresholds(detector.model, sprint1.routing, -1.0)

    def test_dimension_mismatch_rejected(self, report, toy_routing):
        _, detector, _ = report
        with pytest.raises(ModelError):
            detectability_thresholds(detector.model, toy_routing, 1.0)
