"""Tests for repro.datasets.export (CSV interoperability)."""

import csv

import numpy as np
import pytest

from repro.datasets.export import export_csv


@pytest.fixture(scope="module")
def exported(request, tmp_path_factory):
    small = request.getfixturevalue("small_dataset")
    directory = tmp_path_factory.mktemp("csv")
    return export_csv(small, directory), small


class TestExportCsv:
    def test_all_files_written(self, exported):
        directory, _ = exported
        for name in (
            "link_traffic.csv",
            "od_traffic.csv",
            "routing_matrix.csv",
            "events.csv",
        ):
            assert (directory / name).exists()

    def test_link_traffic_round_trips(self, exported):
        directory, dataset = exported
        with open(directory / "link_traffic.csv") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            rows = list(reader)
        assert header[1:] == dataset.routing.link_names
        assert len(rows) == dataset.num_bins
        rebuilt = np.array([[float(v) for v in row[1:]] for row in rows])
        assert np.allclose(rebuilt, dataset.link_traffic, rtol=1e-5)

    def test_routing_matrix_labels(self, exported):
        directory, dataset = exported
        with open(directory / "routing_matrix.csv") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            first = next(reader)
        assert header[1] == "lon->lon"
        assert first[0] == dataset.routing.link_names[0]

    def test_events_ledger(self, exported):
        directory, dataset = exported
        with open(directory / "events.csv") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(dataset.true_events)
        for row, event in zip(rows, dataset.true_events):
            assert int(row["time_bin"]) == event.time_bin
            assert float(row["amplitude_bytes"]) == pytest.approx(
                event.amplitude_bytes, rel=1e-5
            )

    def test_export_creates_directory(self, small_dataset, tmp_path):
        target = tmp_path / "deep" / "nested"
        export_csv(small_dataset, target)
        assert (target / "od_traffic.csv").exists()
