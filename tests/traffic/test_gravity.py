"""Tests for repro.traffic.gravity."""

import numpy as np
import pytest

from repro.exceptions import TrafficError
from repro.traffic.gravity import flow_size_spread, gravity_means
from repro.topology import sprint_europe


class TestGravityMeans:
    def test_total_conserved(self, toy_net):
        means = gravity_means(toy_net, 1e9)
        assert means.sum() == pytest.approx(1e9)

    def test_all_positive(self, toy_net):
        assert np.all(gravity_means(toy_net, 1e9) > 0)

    def test_length_matches_od_pairs(self, toy_net):
        assert gravity_means(toy_net, 1e9).shape == (toy_net.num_od_pairs,)

    def test_proportional_to_population_product(self):
        net = sprint_europe()
        means = gravity_means(net, 1e9, self_traffic_factor=1.0, jitter=0.0)
        pairs = net.od_pairs
        weights = {pop.name: pop.population for pop in net.pops}
        # Ratio of two flows equals the ratio of their weight products.
        j1 = pairs.index(("lon", "par"))
        j2 = pairs.index(("sto", "dub"))
        expected = (weights["lon"] * weights["par"]) / (
            weights["sto"] * weights["dub"]
        )
        assert means[j1] / means[j2] == pytest.approx(expected)

    def test_self_traffic_factor_shrinks_diagonal(self, toy_net):
        full = gravity_means(toy_net, 1e9, self_traffic_factor=1.0, jitter=0.0)
        damped = gravity_means(toy_net, 1e9, self_traffic_factor=0.1, jitter=0.0)
        j_self = toy_net.od_index("a", "a")
        j_cross = toy_net.od_index("a", "b")
        assert (damped[j_self] / damped[j_cross]) < (full[j_self] / full[j_cross])

    def test_jitter_is_deterministic_with_seed(self, toy_net):
        a = gravity_means(toy_net, 1e9, jitter=0.4, seed=7)
        b = gravity_means(toy_net, 1e9, jitter=0.4, seed=7)
        assert np.array_equal(a, b)

    def test_jitter_changes_with_seed(self, toy_net):
        a = gravity_means(toy_net, 1e9, jitter=0.4, seed=7)
        b = gravity_means(toy_net, 1e9, jitter=0.4, seed=8)
        assert not np.array_equal(a, b)

    def test_jitter_preserves_total(self, toy_net):
        means = gravity_means(toy_net, 1e9, jitter=0.5, seed=3)
        assert means.sum() == pytest.approx(1e9)

    def test_validation(self, toy_net):
        with pytest.raises(Exception):
            gravity_means(toy_net, -1.0)


class TestFlowSizeSpread:
    def test_spread_in_decades(self):
        assert flow_size_spread(np.array([1.0, 10.0, 1000.0])) == pytest.approx(3.0)

    def test_paper_like_spread(self):
        # The paper's Fig. 9 x-axis spans several orders of magnitude.
        net = sprint_europe()
        means = gravity_means(net, 2.5e9, jitter=0.35, seed=11_001)
        assert flow_size_spread(means) > 2.0

    def test_validation(self):
        with pytest.raises(TrafficError):
            flow_size_spread(np.array([]))
        with pytest.raises(TrafficError):
            flow_size_spread(np.array([1.0, -2.0]))
