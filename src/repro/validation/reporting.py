"""Plain-text rendering of experiment outputs.

The benchmark harness prints these tables so a run of
``pytest benchmarks/`` reproduces the paper's tables as text; the same
strings land in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.validation.experiments import ActualAnomalyRow, Fig6Series, SyntheticRow

__all__ = [
    "render_table2",
    "render_table3",
    "render_ranked_anomalies",
    "format_table",
]


def format_table(header: list[str], rows: list[list[str]]) -> str:
    """Left-aligned monospace table."""
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_table2(rows: list[ActualAnomalyRow]) -> str:
    """Render Table 2: results from actual volume anomalies."""
    header = [
        "Validation",
        "Dataset",
        "Anomaly Size",
        "Detection",
        "False Alarm",
        "Identification",
        "Quantification",
    ]
    body = []
    for row in rows:
        cells = row.score.as_row()
        body.append(
            [
                row.validation_method.capitalize(),
                row.dataset_name,
                f"{row.cutoff_bytes:.1e}",
                cells["Detection"],
                cells["False Alarm"],
                cells["Identification"],
                cells["Quantification"],
            ]
        )
    return format_table(header, body)


def render_table3(rows: list[SyntheticRow]) -> str:
    """Render Table 3: results on synthetic injections."""
    header = [
        "Network",
        "Injection Size",
        "Detection",
        "Identification",
        "Quantification",
    ]
    body = []
    for row in rows:
        quant = row.quantification_error
        body.append(
            [
                row.dataset_name,
                f"{row.label} ({row.size_bytes:.1e})",
                f"{row.detection_rate * 100:.0f}%",
                f"{row.identification_rate * 100:.0f}%",
                "-" if np.isnan(quant) else f"{quant * 100:.0f}%",
            ]
        )
    return format_table(header, body)


def render_ranked_anomalies(series: Fig6Series, max_rows: int = 40) -> str:
    """Text rendering of one Figure-6 row (ranked anomaly outcomes)."""
    header = ["Rank", "Size", "Flow", "Bin", "Detected", "Identified", "Estimate"]
    body = []
    for k, anomaly in enumerate(series.anomalies[:max_rows]):
        estimate = series.estimated_sizes[k]
        body.append(
            [
                str(k + 1),
                f"{anomaly.size_bytes:.2e}",
                str(anomaly.flow_index),
                str(anomaly.time_bin),
                "yes" if series.detected[k] else "-",
                "yes" if series.identified[k] else "-",
                "-" if np.isnan(estimate) else f"{estimate:.2e}",
            ]
        )
    return format_table(header, body)
