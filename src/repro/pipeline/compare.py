"""Parallel multi-detector comparison grids (Fig. 10, generalized).

The paper's central claim is comparative: the subspace method separates
network-wide anomalies from normal traffic better than temporal
detectors applied to the same link measurements (§6.2, Fig. 10).
:class:`ComparisonRunner` turns that one-figure comparison into a
general workload over the :mod:`repro.detectors` registry with a
**fit-once, share-everything** execution model:

* **Stage 1 — fit.**  One task per (detector, dataset) pair: the
  detector is fitted exactly once on the clean trace.  The report's
  ``num_fits`` records the count and tests assert it never exceeds
  ``len(detectors) × len(datasets)``.
* **Stage 2 — score.**  One task per (detector, dataset, scenario):
  the fitted state is reused to score the scenario trace once, and
  every requested confidence level reads its operating point off those
  same scores — confidences multiply the grid for free.
* **Shared memory.**  In parallel runs the dataset traffic matrices,
  routing matrices and pickled fitted-detector state live in
  :mod:`multiprocessing.shared_memory` blocks; workers attach by name,
  so stage-2 tasks carry only scenario metadata instead of pickled
  arrays.  A serial run (``workers=1``) executes the same fit/score
  functions in-process and produces a byte-identical report — tests
  assert it, including through the shared-memory path.

Scenario traces are derived deterministically from the scenario seed:
all detectors see byte-identical injected traces regardless of worker
layout.  Every (cell, scenario) pair is folded through
:mod:`repro.validation.roc` into an AUC and operating points, so the
comparison is quantitative rather than visual.
"""

from __future__ import annotations

import os
import pickle
import time
import zlib
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.dataset import Dataset
from repro.exceptions import ValidationError
from repro.validation.roc import operating_point, roc_curve

__all__ = [
    "ComparisonRunner",
    "ComparisonReport",
    "ComparisonCell",
    "ComparisonScenario",
    "REPORT_SCHEMA_VERSION",
]

#: Version of the :meth:`ComparisonReport.to_json` payload layout.
#: BENCH/report consumers key on it; bump on any structural change and
#: refresh the pinned schema golden
#: (``tests/pipeline/goldens/comparison_report.schema.json``).
REPORT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ComparisonScenario:
    """One column of the comparison grid.

    ``injection_size is None`` marks the baseline scenario: the
    unmodified trace scored against the dataset's ground-truth event
    ledger.  Otherwise ``num_injections`` spikes of ``injection_size``
    bytes are added to the trace at deterministically drawn
    (bin, flow) cells, and the truth set is the union of those bins
    with the ledger bins.
    """

    label: str
    injection_size: float | None
    num_injections: int = 0
    seed: int = 0


@dataclass(frozen=True)
class ComparisonCell:
    """Outcome of one (detector, dataset, scenario, confidence) grid cell.

    Attributes
    ----------
    detector, dataset, scenario:
        Grid coordinates (``scenario`` is the scenario label).
    injection_size:
        Injected spike size in bytes; None for the baseline scenario.
    auc:
        Area under the ROC of the detector's residual energy against
        the scenario's truth bins (confidence-independent).
    detection_at_budgets:
        ``((fa_budget, detection_rate), ...)`` operating points read
        off the ROC curve.
    op_detection, op_false_alarm, op_threshold:
        The detector's *own* operating point: rates at the threshold
        its calibration chose for this cell's confidence level.
    num_truth_bins:
        Size of the scenario's truth set.
    confidence:
        The confidence level this cell's operating point used.
    """

    detector: str
    dataset: str
    scenario: str
    injection_size: float | None
    auc: float
    detection_at_budgets: tuple[tuple[float, float], ...]
    op_detection: float
    op_false_alarm: float
    op_threshold: float
    num_truth_bins: int
    confidence: float = 0.999

    @property
    def is_baseline(self) -> bool:
        """True for the no-injection scenario."""
        return self.injection_size is None


@dataclass(frozen=True)
class ComparisonReport:
    """All grid cells of one :meth:`ComparisonRunner.run` pass.

    Attributes
    ----------
    cells:
        One :class:`ComparisonCell` per
        (detector, dataset, scenario, confidence), ordered datasets
        outermost, then detectors, then scenarios, then confidences.
    confidence:
        The primary confidence level (first of ``confidences``).
    confidences:
        Every confidence level the grid was evaluated at.
    num_fits:
        Number of detector fits the run performed — exactly one per
        (detector, dataset) pair under the fit-once engine.
    elapsed_seconds:
        Wall-clock time of the grid run.
    cell_seconds:
        ``((detector, dataset, seconds), ...)`` per-pair work time
        (fit + all scenario scoring), as measured inside the workers.
    """

    cells: tuple[ComparisonCell, ...]
    confidence: float
    confidences: tuple[float, ...] = ()
    num_fits: int = 0
    elapsed_seconds: float = 0.0
    cell_seconds: tuple[tuple[str, str, float], ...] = field(
        default=(), repr=False
    )

    def __post_init__(self) -> None:
        if not self.confidences:
            object.__setattr__(self, "confidences", (self.confidence,))

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    # ------------------------------------------------------------------
    @property
    def detectors(self) -> tuple[str, ...]:
        """Detector names, first-seen order."""
        return _unique(c.detector for c in self.cells)

    @property
    def datasets(self) -> tuple[str, ...]:
        """Dataset names, first-seen order."""
        return _unique(c.dataset for c in self.cells)

    @property
    def scenarios(self) -> tuple[str, ...]:
        """Scenario labels, first-seen order."""
        return _unique(c.scenario for c in self.cells)

    def cell(
        self,
        detector: str,
        dataset: str,
        scenario: str,
        confidence: float | None = None,
    ) -> ComparisonCell:
        """Look one grid cell up by coordinates.

        ``confidence`` may be omitted on single-confidence grids (the
        default); multi-confidence grids require it.
        """
        matches = [
            c
            for c in self.cells
            if c.detector == detector
            and c.dataset == dataset
            and c.scenario == scenario
            and (confidence is None or c.confidence == confidence)
        ]
        if not matches:
            raise ValidationError(
                f"no cell for ({detector!r}, {dataset!r}, {scenario!r}"
                + ("" if confidence is None else f", {confidence!r}")
                + ")"
            )
        if len(matches) > 1:
            raise ValidationError(
                f"({detector!r}, {dataset!r}, {scenario!r}) matches "
                f"{len(matches)} cells; pass confidence= to disambiguate "
                f"(grid levels: {self.confidences})"
            )
        return matches[0]

    def auc(self, detector: str, dataset: str, scenario: str) -> float:
        """The AUC of one grid cell (confidence-independent)."""
        return self.cell(
            detector, dataset, scenario, confidence=self.confidences[0]
        ).auc

    def mean_auc(self, detector: str, injected_only: bool = True) -> float:
        """Mean AUC of one detector across the grid.

        ``injected_only`` restricts to injection scenarios (the
        controlled part of the grid) when any exist.
        """
        values = [
            c.auc
            for c in self.cells
            if c.detector == detector
            and (not injected_only or not c.is_baseline)
        ]
        if not values:  # baseline-only grids
            values = [c.auc for c in self.cells if c.detector == detector]
        if not values:
            raise ValidationError(f"no cells for detector {detector!r}")
        return float(np.mean(values))

    def ranking(self, injected_only: bool = True) -> tuple[str, ...]:
        """Detectors ordered by mean AUC, best first."""
        return tuple(
            sorted(
                self.detectors,
                key=lambda d: -self.mean_auc(d, injected_only=injected_only),
            )
        )

    # ------------------------------------------------------------------
    def table(self) -> str:
        """The AUC comparison table: one row per (dataset, scenario),
        one column per detector, winner starred."""
        detectors = self.detectors
        label_width = max(
            [len("dataset/scenario")]
            + [len(f"{d}/{s}") for d in self.datasets for s in self.scenarios]
        )
        header = f"{'dataset/scenario':<{label_width}}"
        for name in detectors:
            header += f" {name:>14}"
        lines = [header, "-" * len(header)]
        for dataset in self.datasets:
            for scenario in self.scenarios:
                row_cells = {
                    c.detector: c
                    for c in self.cells
                    if c.dataset == dataset and c.scenario == scenario
                }
                if not row_cells:
                    continue
                best = max(row_cells.values(), key=lambda c: c.auc).detector
                line = f"{dataset + '/' + scenario:<{label_width}}"
                for name in detectors:
                    c = row_cells.get(name)
                    if c is None:
                        line += f" {'-':>14}"
                    else:
                        star = "*" if name == best else " "
                        line += f" {c.auc:>12.4f} {star}"
                lines.append(line)
        lines.append("")
        ranking = self.ranking()
        injected = any(not c.is_baseline for c in self.cells)
        scope = "injection scenarios" if injected else "baseline scenarios"
        lines.append(
            f"mean AUC over {scope}: "
            + ", ".join(f"{d}={self.mean_auc(d):.4f}" for d in ranking)
        )
        return "\n".join(lines)

    def operating_table(self) -> str:
        """Per-cell operating points at the calibrated thresholds."""
        header = (
            f"{'detector':<13} {'dataset':<10} {'scenario':<16} "
            f"{'conf':>7} {'AUC':>8} {'det@thr':>8} {'FA@thr':>8} "
            f"{'truth':>6}"
        )
        lines = [header, "-" * len(header)]
        for c in self.cells:
            lines.append(
                f"{c.detector:<13} {c.dataset:<10} {c.scenario:<16} "
                f"{c.confidence:>7.4f} {c.auc:>8.4f} {c.op_detection:>8.3f} "
                f"{c.op_false_alarm:>8.4f} {c.num_truth_bins:>6}"
            )
        return "\n".join(lines)

    def to_json(self, include_timings: bool = True) -> dict:
        """A machine-readable summary (the ``BENCH_*.json`` payload).

        ``include_timings=False`` drops the wall-clock fields, leaving a
        payload that is byte-identical between serial and parallel runs
        of the same grid — the determinism tests dump exactly that.
        """
        payload = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "confidence": self.confidence,
            "confidences": list(self.confidences),
            "num_fits": self.num_fits,
            "grid": {
                "detectors": list(self.detectors),
                "datasets": list(self.datasets),
                "scenarios": list(self.scenarios),
                "num_cells": len(self.cells),
            },
            "mean_auc": {d: self.mean_auc(d) for d in self.detectors},
            "ranking": list(self.ranking()),
            "cells": [
                {
                    "detector": c.detector,
                    "dataset": c.dataset,
                    "scenario": c.scenario,
                    "confidence": c.confidence,
                    "injection_size": c.injection_size,
                    "auc": c.auc,
                    "detection_at_budgets": [
                        list(pair) for pair in c.detection_at_budgets
                    ],
                    "op_detection": c.op_detection,
                    "op_false_alarm": c.op_false_alarm,
                    "op_threshold": c.op_threshold,
                    "num_truth_bins": c.num_truth_bins,
                }
                for c in self.cells
            ],
        }
        if include_timings:
            payload["elapsed_seconds"] = self.elapsed_seconds
            payload["cell_seconds"] = [
                {"detector": d, "dataset": ds, "seconds": s}
                for d, ds, s in self.cell_seconds
            ]
        return payload


class ComparisonRunner:
    """Fan a detector-comparison grid out over worker processes.

    Parameters
    ----------
    datasets:
        Evaluation worlds; each (detector, dataset) pair fits once on
        the clean ``link_traffic`` and scores every scenario and
        confidence level with that model.
    detectors:
        Registry names (see :func:`repro.detectors.available`).
    injection_sizes:
        Spike sizes (bytes); each adds one injection scenario.  Empty
        means baseline-only.
    num_injections:
        Spikes per injection scenario (drawn at distinct time bins).
    confidence:
        Confidence level for each detector's own operating point.
    confidences:
        Optional sequence of confidence levels; every scenario's scores
        are read off at each level (the fitted model and the scores are
        shared, so extra levels cost only a threshold lookup).  Defaults
        to ``(confidence,)``; when given, ``confidence`` is ignored and
        the first entry becomes the report's primary level.
    fa_budgets:
        False-alarm budgets at which ROC detection rates are read off.
    min_event_bytes:
        Ground-truth ledger cutoff: events at least this large form the
        baseline truth set.
    workers:
        Process count; ``None`` picks ``min(score_tasks, cpu_count)``
        where score tasks are (detector, dataset, scenario) triples;
        ``1`` runs serially in-process (byte-identical results — tests
        assert it).
    seed:
        Base seed for the deterministic injection placement.
    detector_kwargs:
        Optional per-detector factory overrides,
        e.g. ``{"ewma": {"alpha": 0.3}}``.
    """

    def __init__(
        self,
        datasets: Sequence[Dataset],
        detectors: Sequence[str] = ("subspace", "ewma", "fourier"),
        injection_sizes: Sequence[float] = (),
        num_injections: int = 24,
        confidence: float = 0.999,
        confidences: Sequence[float] | None = None,
        fa_budgets: Sequence[float] = (0.001, 0.01),
        min_event_bytes: float = 0.0,
        workers: int | None = None,
        seed: int = 20040830,
        detector_kwargs: dict[str, dict] | None = None,
    ) -> None:
        from repro import detectors as registry

        if not datasets:
            raise ValidationError("at least one dataset is required")
        names = {d.name for d in datasets}
        if len(names) != len(datasets):
            raise ValidationError("dataset names must be unique")
        if num_injections < 1:
            raise ValidationError(
                f"num_injections must be >= 1, got {num_injections}"
            )
        if confidences is None:
            confidences = (confidence,)
        confidences = tuple(float(c) for c in confidences)
        if not confidences:
            raise ValidationError("confidences must not be empty")
        for level in confidences:
            if not 0.0 < level < 1.0:
                raise ValidationError(
                    f"confidence must lie in (0, 1), got {level}"
                )
        if len(set(confidences)) != len(confidences):
            raise ValidationError(
                f"confidence levels must be distinct, got {confidences}"
            )
        if workers is not None and workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        self.datasets = list(datasets)
        self.detector_names = registry.resolve_names(detectors)
        self.injection_sizes = [float(s) for s in injection_sizes]
        if any(s == 0.0 for s in self.injection_sizes):
            raise ValidationError("injection sizes must be non-zero")
        if len(set(self.injection_sizes)) != len(self.injection_sizes):
            raise ValidationError(
                "injection sizes must be distinct (duplicates would "
                "produce identically labeled scenarios)"
            )
        self.num_injections = int(num_injections)
        self.confidences = confidences
        self.confidence = confidences[0]
        self.fa_budgets = tuple(float(b) for b in fa_budgets)
        self.min_event_bytes = float(min_event_bytes)
        self.workers = workers
        self.seed = int(seed)
        self.detector_kwargs = dict(detector_kwargs or {})
        unknown = set(self.detector_kwargs) - set(self.detector_names)
        if unknown:
            raise ValidationError(
                f"detector_kwargs for unselected detectors: {sorted(unknown)}"
            )

    # ------------------------------------------------------------------
    def scenarios_for(self, dataset: Dataset) -> tuple[ComparisonScenario, ...]:
        """The scenario columns evaluated for one dataset.

        The baseline scenario is included only when the dataset's
        ground-truth ledger has events at or above ``min_event_bytes``
        (an empty truth set has no ROC).
        """
        scenarios: list[ComparisonScenario] = []
        if _ledger_bins(dataset, self.min_event_bytes).size:
            scenarios.append(
                ComparisonScenario(label="baseline", injection_size=None)
            )
        for index, size in enumerate(self.injection_sizes):
            scenarios.append(
                ComparisonScenario(
                    label=f"inject-{size:.2e}",
                    injection_size=size,
                    num_injections=self.num_injections,
                    seed=self.seed + index,
                )
            )
        labels = [s.label for s in scenarios]
        if len(set(labels)) != len(labels):
            raise ValidationError(
                "injection sizes collide at the scenario-label precision "
                f"({labels}); pass more widely spaced sizes"
            )
        if not scenarios:
            raise ValidationError(
                f"dataset {dataset.name!r} has no ground-truth events and no "
                "injection sizes were given; nothing to evaluate"
            )
        return tuple(scenarios)

    def run(self) -> ComparisonReport:
        """Evaluate the whole grid; one :class:`ComparisonCell` per cell.

        Cells are ordered datasets-outermost, then detectors (the order
        given at construction), then scenarios, then confidences —
        independent of the worker count.
        """
        from repro import detectors as registry

        start = time.perf_counter()
        scenarios_by_dataset = {
            dataset.name: self.scenarios_for(dataset)
            for dataset in self.datasets
        }
        pairs = [
            (dataset, name)
            for dataset in self.datasets
            for name in self.detector_names
        ]
        # Resolve every factory up front so unknown names fail loudly in
        # the parent, not inside a worker.
        for name in self.detector_names:
            registry.get_factory(name)
        # Stage 2 has one task per (pair, scenario), so parallelism is
        # sized to the scoring fan-out, not just the fit fan-out.
        num_score_tasks = sum(
            len(scenarios_by_dataset[dataset.name]) for dataset, _ in pairs
        )
        workers = self.workers
        if workers is None:
            workers = min(num_score_tasks, os.cpu_count() or 1)

        if workers <= 1 or num_score_tasks == 1:
            outputs = self._run_serial(pairs, scenarios_by_dataset)
        else:
            outputs = self._run_parallel(pairs, scenarios_by_dataset, workers)

        cells: list[ComparisonCell] = []
        timings: list[tuple[str, str, float]] = []
        for (dataset, name), (rows, seconds) in zip(pairs, outputs):
            cells.extend(rows)
            timings.append((name, dataset.name, seconds))
        return ComparisonReport(
            cells=tuple(cells),
            confidence=self.confidence,
            confidences=self.confidences,
            num_fits=len(pairs),
            elapsed_seconds=time.perf_counter() - start,
            cell_seconds=tuple(timings),
        )

    # ------------------------------------------------------------------
    def _fit_task(self, dataset_ref: "_DatasetRef", name: str) -> "_FitTask":
        # The factory travels with the task so detectors registered at
        # runtime survive spawn-start workers, which re-import a
        # registry holding only the built-ins.
        from repro import detectors as registry

        return _FitTask(
            detector=name,
            factory=registry.get_factory(name),
            detector_kwargs=self.detector_kwargs.get(name, {}),
            dataset=dataset_ref,
            confidence=self.confidence,
        )

    def _score_task(
        self,
        dataset_ref: "_DatasetRef",
        name: str,
        scenario: ComparisonScenario,
        model: "_SharedBlob | None",
    ) -> "_ScoreTask":
        return _ScoreTask(
            detector=name,
            dataset=dataset_ref,
            model=model,
            scenario=scenario,
            confidences=self.confidences,
            fa_budgets=self.fa_budgets,
            min_event_bytes=self.min_event_bytes,
        )

    def _run_serial(self, pairs, scenarios_by_dataset):
        """In-process execution: same fit/score kernels, no pickling."""
        outputs = []
        for dataset, name in pairs:
            ref = _DatasetRef(inline=dataset)
            fit_start = time.perf_counter()
            detector = _fit_detector(self._fit_task(ref, name))
            seconds = time.perf_counter() - fit_start
            rows: list[ComparisonCell] = []
            for scenario in scenarios_by_dataset[dataset.name]:
                task = self._score_task(ref, name, scenario, model=None)
                scenario_rows, scenario_seconds = _score_scenario(
                    task, detector
                )
                rows.extend(scenario_rows)
                seconds += scenario_seconds
            outputs.append((tuple(rows), seconds))
        return outputs

    def _run_parallel(self, pairs, scenarios_by_dataset, workers):
        """Two-stage shared-memory execution over a process pool."""
        import multiprocessing

        segments: list = []  # SharedMemory blocks to unlink at the end
        try:
            dataset_refs = {
                dataset.name: _share_dataset(dataset, segments)
                for dataset in self.datasets
            }
            fit_tasks = [
                self._fit_task(dataset_refs[dataset.name], name)
                for dataset, name in pairs
            ]
            with multiprocessing.Pool(processes=workers) as pool:
                # Stage 1: every (detector, dataset) pair fits exactly
                # once; the pickled fitted state comes back to the
                # parent, which parks it in shared memory.
                fit_outputs = pool.map(_run_fit_task, fit_tasks)
                models: dict[tuple[str, str], _SharedBlob] = {}
                fit_seconds: dict[tuple[str, str], float] = {}
                for (dataset, name), (blob, seconds) in zip(
                    pairs, fit_outputs
                ):
                    models[(dataset.name, name)] = _share_blob(
                        blob, segments
                    )
                    fit_seconds[(dataset.name, name)] = seconds
                # Stage 2: scoring tasks carry only scenario metadata
                # plus shared-memory names — no arrays are pickled.
                score_tasks = [
                    self._score_task(
                        dataset_refs[dataset.name],
                        name,
                        scenario,
                        models[(dataset.name, name)],
                    )
                    for dataset, name in pairs
                    for scenario in scenarios_by_dataset[dataset.name]
                ]
                score_outputs = pool.map(_run_score_task, score_tasks)
            outputs = []
            cursor = 0
            for dataset, name in pairs:
                rows: list[ComparisonCell] = []
                seconds = fit_seconds[(dataset.name, name)]
                for _ in scenarios_by_dataset[dataset.name]:
                    scenario_rows, scenario_seconds = score_outputs[cursor]
                    rows.extend(scenario_rows)
                    seconds += scenario_seconds
                    cursor += 1
                outputs.append((tuple(rows), seconds))
            return outputs
        finally:
            for segment in segments:
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass


# ----------------------------------------------------------------------
# Shared-memory plumbing.  Everything below must stay module-level and
# picklable; the worker side attaches segments lazily and caches both
# the attachments and the unpickled detectors per process.


@dataclass(frozen=True)
class _SharedArray:
    """Name + layout of a numpy array parked in a shared-memory block."""

    name: str
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class _SharedBlob:
    """Name + length of an opaque byte string in a shared-memory block."""

    name: str
    size: int


@dataclass(frozen=True)
class _DatasetMeta:
    """The picklable-in-O(1) part of a dataset a scoring task needs."""

    name: str
    bin_seconds: float
    num_bins: int
    num_links: int
    num_flows: int
    true_events: tuple


@dataclass(frozen=True)
class _DatasetRef:
    """Either a real in-process dataset or shared-memory coordinates."""

    inline: Dataset | None = None
    meta: _DatasetMeta | None = None
    link_traffic: _SharedArray | None = None
    routing_matrix: _SharedArray | None = None


class _RoutingView:
    """Duck-types the one routing attribute :func:`scenario_trace` uses."""

    __slots__ = ("matrix",)

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = matrix


class _DatasetView:
    """A :class:`Dataset` stand-in backed by shared-memory arrays."""

    __slots__ = (
        "name",
        "bin_seconds",
        "num_bins",
        "num_links",
        "num_flows",
        "true_events",
        "link_traffic",
        "routing",
    )

    def __init__(
        self,
        meta: _DatasetMeta,
        link_traffic: np.ndarray,
        routing_matrix: np.ndarray,
    ) -> None:
        self.name = meta.name
        self.bin_seconds = meta.bin_seconds
        self.num_bins = meta.num_bins
        self.num_links = meta.num_links
        self.num_flows = meta.num_flows
        self.true_events = meta.true_events
        self.link_traffic = link_traffic
        self.routing = _RoutingView(routing_matrix)


@dataclass(frozen=True)
class _FitTask:
    detector: str
    factory: Callable
    detector_kwargs: dict
    dataset: _DatasetRef
    confidence: float


@dataclass(frozen=True)
class _ScoreTask:
    detector: str
    dataset: _DatasetRef
    model: _SharedBlob | None
    scenario: ComparisonScenario
    confidences: tuple[float, ...]
    fa_budgets: tuple[float, ...]
    min_event_bytes: float


#: Per-process caches: attached segments (kept alive so their buffers
#: stay valid), materialized dataset views, and unpickled detectors.
_SEGMENT_CACHE: dict[str, object] = {}
_DETECTOR_CACHE: dict[str, object] = {}


def _share_array(array: np.ndarray, segments: list) -> _SharedArray:
    """Copy an array into a fresh shared-memory block (parent side)."""
    from multiprocessing import shared_memory

    array = np.ascontiguousarray(array)
    segment = shared_memory.SharedMemory(
        create=True, size=max(array.nbytes, 1)
    )
    segments.append(segment)
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[...] = array
    return _SharedArray(segment.name, array.shape, str(array.dtype))


def _share_blob(data: bytes, segments: list) -> _SharedBlob:
    """Copy opaque bytes into a fresh shared-memory block (parent side)."""
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(create=True, size=max(len(data), 1))
    segments.append(segment)
    segment.buf[: len(data)] = data
    return _SharedBlob(segment.name, len(data))


def _dataset_meta(dataset: Dataset) -> _DatasetMeta:
    return _DatasetMeta(
        name=dataset.name,
        bin_seconds=dataset.bin_seconds,
        num_bins=dataset.num_bins,
        num_links=dataset.num_links,
        num_flows=dataset.num_flows,
        true_events=tuple(dataset.true_events),
    )


def _share_dataset(dataset: Dataset, segments: list) -> _DatasetRef:
    """Park one dataset's big arrays in shared memory (parent side)."""
    return _DatasetRef(
        meta=_dataset_meta(dataset),
        link_traffic=_share_array(dataset.link_traffic, segments),
        routing_matrix=_share_array(
            np.asarray(dataset.routing.matrix, dtype=np.float64), segments
        ),
    )


def _readonly_view(array: np.ndarray) -> np.ndarray:
    view = np.asarray(array, dtype=np.float64).view()
    view.flags.writeable = False
    return view


def _attach_segment(name: str):
    """Attach (and cache) a shared-memory block by name (worker side)."""
    from multiprocessing import shared_memory

    segment = _SEGMENT_CACHE.get(name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=name)
        _SEGMENT_CACHE[name] = segment
    return segment


def _attach_array(ref: _SharedArray) -> np.ndarray:
    segment = _attach_segment(ref.name)
    view = np.ndarray(ref.shape, dtype=ref.dtype, buffer=segment.buf)
    # The segment is shared across tasks and workers: a detector that
    # mutated its input in place would silently corrupt every later
    # cell.  Read-only views turn that into an immediate ValueError.
    view.flags.writeable = False
    return view


def _resolve_dataset(ref: _DatasetRef) -> _DatasetView:
    """The read-only view of a dataset a task should compute on.

    Serial (inline) and parallel (shared-memory) runs both resolve to a
    :class:`_DatasetView` over read-only arrays, so an input-mutating
    detector fails loudly — and identically — under every worker
    layout.
    """
    if ref.inline is not None:
        dataset = ref.inline
        return _DatasetView(
            _dataset_meta(dataset),
            _readonly_view(dataset.link_traffic),
            _readonly_view(np.asarray(dataset.routing.matrix)),
        )
    return _DatasetView(
        ref.meta,
        _attach_array(ref.link_traffic),
        _attach_array(ref.routing_matrix),
    )


def _resolve_detector(blob: _SharedBlob):
    """Unpickle (and cache per process) a fitted detector blob."""
    detector = _DETECTOR_CACHE.get(blob.name)
    if detector is None:
        segment = _attach_segment(blob.name)
        detector = pickle.loads(bytes(segment.buf[: blob.size]))
        _DETECTOR_CACHE[blob.name] = detector
    return detector


# ----------------------------------------------------------------------
# The fit/score kernels.  Serial and parallel runs execute exactly the
# same code on bit-identical inputs, which is what makes the reports
# byte-identical across worker layouts.


def _fit_detector(task: _FitTask):
    """Construct and fit one detector on one dataset's clean trace."""
    dataset = _resolve_dataset(task.dataset)
    kwargs = {
        "confidence": task.confidence,
        "bin_seconds": dataset.bin_seconds,
    }
    kwargs.update(task.detector_kwargs)
    detector = task.factory(**kwargs)
    detector.fit(dataset.link_traffic)
    return detector


def _run_fit_task(task: _FitTask) -> tuple[bytes, float]:
    """Stage-1 worker entry: fit, then hand the state back pickled."""
    start = time.perf_counter()
    detector = _fit_detector(task)
    blob = pickle.dumps(detector, protocol=pickle.HIGHEST_PROTOCOL)
    return blob, time.perf_counter() - start


def _score_scenario(
    task: _ScoreTask, detector
) -> tuple[tuple[ComparisonCell, ...], float]:
    """Score one scenario once; read every confidence level off it."""
    start = time.perf_counter()
    dataset = _resolve_dataset(task.dataset)
    trace, truth = scenario_trace(
        dataset, task.scenario, task.min_event_bytes
    )
    scores = np.atleast_1d(
        np.asarray(detector.score(trace), dtype=np.float64)
    )
    curve = roc_curve(scores, truth)
    budgets = tuple(
        (budget, curve.detection_at(budget)) for budget in task.fa_budgets
    )
    rows = []
    for level in task.confidences:
        if hasattr(detector, "threshold_at"):
            threshold = float(detector.threshold_at(level))
        else:  # minimal Detector protocol: fall back to detect()
            threshold = float(detector.detect(trace, confidence=level).threshold)
        op_det, op_fa = operating_point(scores, truth, threshold)
        rows.append(
            ComparisonCell(
                detector=task.detector,
                dataset=dataset.name,
                scenario=task.scenario.label,
                injection_size=task.scenario.injection_size,
                auc=curve.auc,
                detection_at_budgets=budgets,
                op_detection=op_det,
                op_false_alarm=op_fa,
                op_threshold=threshold,
                num_truth_bins=int(truth.size),
                confidence=level,
            )
        )
    return tuple(rows), time.perf_counter() - start


def _run_score_task(
    task: _ScoreTask,
) -> tuple[tuple[ComparisonCell, ...], float]:
    """Stage-2 worker entry: attach shared state, score one scenario."""
    detector = _resolve_detector(task.model)
    return _score_scenario(task, detector)


# ----------------------------------------------------------------------


def _unique(items) -> tuple[str, ...]:
    seen: list[str] = []
    for item in items:
        if item not in seen:
            seen.append(item)
    return tuple(seen)


def _ledger_bins(dataset, min_event_bytes: float) -> np.ndarray:
    """Ground-truth anomaly bins at or above the ledger cutoff.

    Every bin an event covers counts — a SQUARE or RAMP anomaly of
    ``duration_bins`` marks its whole span, so detectors flagging the
    later bins of an ongoing anomaly are not charged false alarms (and
    injections are never drawn inside one).
    """
    bins: set[int] = set()
    for event in dataset.true_events:
        if abs(event.amplitude_bytes) >= min_event_bytes:
            bins.update(range(event.time_bin, event.last_bin + 1))
    return np.asarray(sorted(bins), dtype=np.int64)


def scenario_trace(
    dataset,
    scenario: ComparisonScenario,
    min_event_bytes: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize one scenario: ``(link_trace, truth_bins)``.

    Deterministic in the scenario seed — every detector (and every
    worker layout) sees byte-identical traces.  Injection cells are
    drawn at distinct time bins outside the ledger truth set, each
    adding ``injection_size`` bytes to one OD flow's links.  ``dataset``
    may be a :class:`~repro.datasets.dataset.Dataset` or the engine's
    shared-memory view of one.
    """
    truth = _ledger_bins(dataset, min_event_bytes)
    if scenario.injection_size is None:
        if truth.size == 0:
            raise ValidationError(
                f"dataset {dataset.name!r} has no ground-truth events at or "
                f"above {min_event_bytes:.3g} bytes; baseline scenario is "
                "undefined"
            )
        return dataset.link_traffic, truth

    candidates = np.setdiff1d(
        np.arange(dataset.num_bins, dtype=np.int64), truth
    )
    if candidates.size < scenario.num_injections:
        raise ValidationError(
            f"dataset {dataset.name!r} has only {candidates.size} "
            f"injectable bins but {scenario.num_injections} were requested"
        )
    rng = np.random.default_rng(
        np.random.SeedSequence(
            [scenario.seed, zlib.crc32(dataset.name.encode("utf-8"))]
        )
    )
    bins = np.sort(
        rng.choice(candidates, size=scenario.num_injections, replace=False)
    )
    flows = rng.integers(0, dataset.num_flows, size=scenario.num_injections)
    trace = dataset.link_traffic.copy()
    trace[bins] += (
        scenario.injection_size * dataset.routing.matrix[:, flows].T
    )
    return trace, np.union1d(truth, bins)
