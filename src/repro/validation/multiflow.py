"""Systematic multi-flow anomaly experiments (§7.2).

The paper generalizes identification to anomalies spanning several OD
flows with different intensities (routing shifts, DDoS).  This driver
evaluates that extension: inject simultaneous spikes into a pair of
flows, offer the identifier every single flow *plus* candidate pairs,
and measure how often the true pair wins and how well the per-flow
intensities are recovered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import rng_from
from repro.core.detection import SPEDetector
from repro.core.identification import identify_multi_flow
from repro.datasets.dataset import Dataset
from repro.exceptions import ValidationError

__all__ = ["MultiFlowStudy", "MultiFlowTrial", "MultiFlowResult"]


@dataclass(frozen=True)
class MultiFlowTrial:
    """One two-flow injection experiment.

    Attributes
    ----------
    time_bin:
        Where the joint anomaly was injected.
    flows:
        The two injected flow indices.
    sizes:
        The two injected byte amounts.
    pair_identified:
        Did the true pair hypothesis win over all single flows and decoy
        pairs?
    intensity_errors:
        Relative per-flow byte-recovery errors (NaN when the pair lost).
    """

    time_bin: int
    flows: tuple[int, int]
    sizes: tuple[float, float]
    pair_identified: bool
    intensity_errors: tuple[float, float]


@dataclass(frozen=True)
class MultiFlowResult:
    """Aggregate outcome of a multi-flow study."""

    trials: tuple[MultiFlowTrial, ...]

    @property
    def pair_identification_rate(self) -> float:
        """Fraction of trials where the true pair won."""
        if not self.trials:
            return 0.0
        return float(np.mean([t.pair_identified for t in self.trials]))

    @property
    def mean_intensity_error(self) -> float:
        """Mean per-flow byte-recovery error over winning trials."""
        errors = [
            e
            for t in self.trials
            if t.pair_identified
            for e in t.intensity_errors
        ]
        if not errors:
            return float("nan")
        return float(np.mean(errors))


class MultiFlowStudy:
    """Two-flow injection experiments on one dataset.

    Parameters
    ----------
    dataset:
        The evaluation world.
    confidence:
        Q-statistic level for the (unused here but fitted) detector; the
        subspace model it carries drives identification.
    num_decoy_pairs:
        Random wrong pairs added to the hypothesis set, so winning is
        non-trivial.
    seed:
        Randomness source for trial placement.
    """

    def __init__(
        self,
        dataset: Dataset,
        confidence: float = 0.999,
        num_decoy_pairs: int = 25,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if num_decoy_pairs < 0:
            raise ValidationError(
                f"num_decoy_pairs must be >= 0, got {num_decoy_pairs}"
            )
        self.dataset = dataset
        self.detector = SPEDetector(confidence=confidence).fit(dataset.link_traffic)
        self.num_decoy_pairs = num_decoy_pairs
        self._rng = rng_from(seed)
        self._theta = dataset.routing.normalized_columns()

    def run(
        self,
        num_trials: int = 20,
        size_range: tuple[float, float] = (2.5e7, 6e7),
    ) -> MultiFlowResult:
        """Run ``num_trials`` random two-flow injections.

        Each trial draws a random time bin, two distinct flows with
        disjoint link sets (so the pair is genuinely two-dimensional),
        and independent sizes from ``size_range``.
        """
        if num_trials < 1:
            raise ValidationError(f"num_trials must be >= 1, got {num_trials}")
        low, high = size_range
        if not 0 < low <= high:
            raise ValidationError(f"invalid size_range: {size_range!r}")

        routing = self.dataset.routing
        model = self.detector.model
        n = routing.num_flows
        trials = []
        for _ in range(num_trials):
            time_bin = int(self._rng.integers(0, self.dataset.num_bins))
            f1, f2 = self._draw_flow_pair(n)
            s1 = float(self._rng.uniform(low, high))
            s2 = float(self._rng.uniform(low, high))
            y = (
                self.dataset.link_traffic[time_bin]
                + s1 * routing.column(f1)
                + s2 * routing.column(f2)
            )

            hypotheses = [self._theta[:, [j]] for j in range(n)]
            pair_index = len(hypotheses)
            hypotheses.append(self._theta[:, [f1, f2]])
            for _ in range(self.num_decoy_pairs):
                d1, d2 = self._draw_flow_pair(n, exclude={f1, f2})
                hypotheses.append(self._theta[:, [d1, d2]])

            outcome = identify_multi_flow(model, hypotheses, y)
            won = outcome.hypothesis_index == pair_index
            if won:
                n1 = float(np.linalg.norm(routing.column(f1)))
                n2 = float(np.linalg.norm(routing.column(f2)))
                recovered = (
                    outcome.magnitudes[0] / n1,
                    outcome.magnitudes[1] / n2,
                )
                errors = (
                    abs(recovered[0] - s1) / s1,
                    abs(recovered[1] - s2) / s2,
                )
            else:
                errors = (float("nan"), float("nan"))
            trials.append(
                MultiFlowTrial(
                    time_bin=time_bin,
                    flows=(f1, f2),
                    sizes=(s1, s2),
                    pair_identified=won,
                    intensity_errors=errors,
                )
            )
        return MultiFlowResult(trials=tuple(trials))

    def _draw_flow_pair(self, n: int, exclude: set[int] = frozenset()) -> tuple[int, int]:
        """Two distinct flows with disjoint link paths."""
        routing = self.dataset.routing
        for _ in range(200):
            f1 = int(self._rng.integers(0, n))
            f2 = int(self._rng.integers(0, n))
            if f1 == f2 or f1 in exclude or f2 in exclude:
                continue
            links1 = set(routing.links_of_flow(f1))
            links2 = set(routing.links_of_flow(f2))
            if links1.isdisjoint(links2):
                return f1, f2
        raise ValidationError("could not draw a disjoint flow pair")
