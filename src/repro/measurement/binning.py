"""Time binning and re-binning.

The paper collects flows on 5-minute (Sprint) or 1-minute (Abilene) bins
and aggregates both to 10 minutes "to avoid synchronization issues" (§3).
Re-binning here is exact aggregation: byte mass is conserved.
:func:`subdivide_matrix` goes the other way, splitting coarse bins into
fine ones so the sampling pipeline can operate at export granularity.
"""

from __future__ import annotations

import numpy as np

from repro._util import rng_from
from repro.exceptions import MeasurementError

__all__ = ["rebin_vector", "rebin_matrix", "subdivide_matrix"]


def rebin_vector(values: np.ndarray, factor: int) -> np.ndarray:
    """Aggregate consecutive groups of ``factor`` bins by summation.

    The input length must be a multiple of ``factor``; partial trailing
    windows would silently under-report traffic, so they are rejected.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise MeasurementError(f"expected a vector, got shape {values.shape}")
    if factor < 1:
        raise MeasurementError(f"factor must be >= 1, got {factor}")
    if values.size % factor != 0:
        raise MeasurementError(
            f"cannot rebin {values.size} bins by a factor of {factor}"
        )
    return values.reshape(-1, factor).sum(axis=1)


def rebin_matrix(values: np.ndarray, factor: int) -> np.ndarray:
    """Aggregate a ``(bins, columns)`` matrix along time by summation."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise MeasurementError(f"expected a matrix, got shape {values.shape}")
    if factor < 1:
        raise MeasurementError(f"factor must be >= 1, got {factor}")
    if values.shape[0] % factor != 0:
        raise MeasurementError(
            f"cannot rebin {values.shape[0]} bins by a factor of {factor}"
        )
    t, n = values.shape
    return values.reshape(t // factor, factor, n).sum(axis=1)


def subdivide_matrix(
    values: np.ndarray,
    factor: int,
    roughness: float = 0.1,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Split each coarse bin into ``factor`` fine bins conserving mass.

    Each coarse cell's bytes are distributed across its fine bins with
    Dirichlet-like proportions around uniform; ``roughness`` controls the
    burstiness (0 gives an exactly even split).  Mass is conserved per
    cell: the fine bins of a coarse bin sum to the original value exactly.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise MeasurementError(f"expected a matrix, got shape {values.shape}")
    if factor < 1:
        raise MeasurementError(f"factor must be >= 1, got {factor}")
    if roughness < 0:
        raise MeasurementError(f"roughness must be >= 0, got {roughness}")
    if np.any(values < 0):
        raise MeasurementError("byte counts must be non-negative")
    t, n = values.shape
    if factor == 1:
        return values.copy()

    rng = rng_from(seed)
    if roughness == 0:
        shares = np.full((t, factor, n), 1.0 / factor)
    else:
        raw = np.maximum(
            rng.normal(1.0, roughness, size=(t, factor, n)), 1e-3
        )
        shares = raw / raw.sum(axis=1, keepdims=True)
    fine = shares * values[:, None, :]
    return fine.reshape(t * factor, n)
