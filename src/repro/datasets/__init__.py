"""Dataset assembly.

Builds the three evaluation worlds of the paper's Table 1 — Sprint-1,
Sprint-2 and Abilene — as fully seeded synthetic datasets: a topology, a
routing matrix, one week of OD-flow traffic with injected ground-truth
anomalies, and the derived link measurement matrix ``Y = X Aᵀ``.
"""

from repro.datasets.dataset import Dataset
from repro.datasets.synthetic import build_dataset, dataset_from_config
from repro.datasets.export import export_csv
from repro.datasets.io import (
    load_dataset,
    open_traffic_memmap,
    save_dataset,
    save_traffic_memmap,
    traffic_chunks,
)
from repro.datasets.summary import dataset_summary, summary_table

__all__ = [
    "Dataset",
    "build_dataset",
    "dataset_from_config",
    "save_dataset",
    "load_dataset",
    "save_traffic_memmap",
    "open_traffic_memmap",
    "traffic_chunks",
    "export_csv",
    "dataset_summary",
    "summary_table",
]
