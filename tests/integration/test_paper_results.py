"""Integration tests asserting the paper's headline result *shapes*.

These are the acceptance tests of the reproduction: each test pins one
qualitative claim from the paper's evaluation (who wins, by roughly what
factor, where the boundaries fall).  Absolute numbers differ from the
paper — our substrate is synthetic — but the shapes must hold.
"""

import numpy as np
import pytest

from repro.core import PCA, SPEDetector
from repro.validation import fig10_series
from repro.validation.experiments import (
    run_actual_anomaly_experiment,
    run_synthetic_experiment,
    separability,
)


class TestFig3Shape:
    @pytest.mark.parametrize("fixture", ["sprint1", "abilene_ds"])
    def test_low_effective_dimensionality(self, request, fixture):
        """Fig. 3: despite 40+ links, 3-4 components capture the vast
        majority of variance."""
        dataset = request.getfixturevalue(fixture)
        pca = PCA().fit(dataset.link_traffic)
        assert pca.num_components >= 41
        assert pca.variance_fractions()[:4].sum() > 0.9


class TestFig4Shape:
    def test_normal_axes_periodic_anomalous_axes_spiky(self, sprint1):
        """Fig. 4: early projections are smooth/periodic, later ones
        carry spikes (measured via the separation rule's deviations)."""
        from repro.core.subspace import separate_axes

        pca = PCA().fit(sprint1.link_traffic)
        result = separate_axes(pca, sprint1.link_traffic)
        r = result.normal_rank
        assert np.all(result.max_deviations[:r] < 3.0)
        assert result.max_deviations[r] >= 3.0


class TestFig5Shape:
    def test_spe_separates_anomalies_state_vector_does_not(self, sprint1):
        """Fig. 5: anomalies invisible in ||y||^2 jump out in ||y~||^2."""
        detector = SPEDetector().fit(sprint1.link_traffic)
        model = detector.model
        state = np.asarray(model.state_magnitude(sprint1.link_traffic))
        spe = np.asarray(model.spe(sprint1.link_traffic))
        event_bins = np.array(
            sorted(
                e.time_bin
                for e in sprint1.true_events
                if abs(e.amplitude_bytes) >= 2e7
            )
        )
        spe_sep = separability(spe, event_bins)
        state_sep = separability(state, event_bins)
        assert spe_sep["detection_at_zero_fa"] > state_sep["detection_at_zero_fa"]
        assert spe_sep["fa_at_full_detection"] < 0.05
        assert state_sep["fa_at_full_detection"] > 0.3


class TestTable2Shape:
    @pytest.mark.parametrize(
        "fixture,method",
        [
            ("sprint1", "fourier"),
            ("sprint1", "ewma"),
            ("abilene_ds", "fourier"),
            ("abilene_ds", "ewma"),
        ],
    )
    def test_high_detection_low_false_alarm(self, request, fixture, method):
        dataset = request.getfixturevalue(fixture)
        row = run_actual_anomaly_experiment(dataset, method=method)
        score = row.score
        assert score.detection_rate >= 0.6
        assert score.false_alarm_rate < 0.02
        assert score.identification_rate >= 0.8
        assert score.mean_quantification_error < 0.40

    def test_abilene_noisier_than_sprint(self, sprint1, abilene_ds):
        """The paper's Abilene rows show more false alarms than Sprint's."""
        sprint = run_actual_anomaly_experiment(sprint1, method="fourier")
        abilene = run_actual_anomaly_experiment(abilene_ds, method="fourier")
        assert abilene.score.false_alarms >= sprint.score.false_alarms


class TestTable3Shape:
    @pytest.mark.parametrize("fixture", ["sprint1", "abilene_ds"])
    def test_large_vs_small_injection_contrast(self, request, fixture):
        dataset = request.getfixturevalue(fixture)
        large, small, _ = run_synthetic_experiment(dataset)
        # Paper: ~90%+ for large, ~5-15% for small.
        assert large.detection_rate > 0.85
        assert small.detection_rate < 0.35
        assert large.detection_rate > 3 * small.detection_rate
        assert large.identification_rate > 0.65
        assert large.quantification_error < 0.35


class TestFig9Shape:
    def test_detection_rate_anticorrelated_with_flow_size(self, sprint1):
        _, _, raw = run_synthetic_experiment(sprint1)
        rates = raw["large"].detection_rate_by_flow()
        means = sprint1.od_traffic.flow_means()
        mask = means > 0
        corr = np.corrcoef(np.log10(means[mask]), rates[mask])[0, 1]
        assert corr < -0.1


class TestFig10Shape:
    def test_subspace_beats_temporal_baselines_on_link_data(self, sprint1):
        data = fig10_series(sprint1)
        event_bins = np.array(
            sorted(
                e.time_bin
                for e in sprint1.true_events
                if abs(e.amplitude_bytes) >= 2e7
            )
        )
        sub = separability(data["subspace"], event_bins)
        four = separability(data["fourier"], event_bins)
        ewma = separability(data["ewma"], event_bins)
        # A clean threshold exists for the subspace residual...
        assert sub["detection_at_zero_fa"] >= 0.6
        # ... but not for the Fourier residual on link data.
        assert four["fa_at_full_detection"] > 0.10
        assert sub["fa_at_full_detection"] < four["fa_at_full_detection"]
        assert sub["fa_at_full_detection"] <= ewma["fa_at_full_detection"]
