"""Contract tests for the sharded and streaming registry detectors.

Beyond the generic detector contract (tests/detectors/test_contracts.py
runs automatically over every registry entry), these pin the *identity*
guarantees: the spatial detector is exactly the pipeline's fusion plane,
and the three streaming surfaces — the registry detector, the windowed
StreamingDetector and the per-arrival OnlineSubspaceDetector — are one
engine and cannot drift apart.
"""

import numpy as np
import pytest

from repro import detectors
from repro.core import OnlineSubspaceDetector, q_threshold
from repro.detectors import ShardedSubspaceDetector, StreamingSubspaceDetector
from repro.exceptions import ModelError
from repro.pipeline.sharded import SpatialCoordinator


@pytest.fixture(scope="module")
def block():
    rng = np.random.default_rng(77)
    t, m = 500, 12
    base = 1e7 * (1.3 + np.sin(2 * np.pi * np.arange(t) / 144.0))[:, None]
    block = np.abs(
        base
        * rng.uniform(0.5, 1.5, size=m)
        * (1.0 + 0.06 * rng.standard_normal((t, m)))
    )
    # Perturb a subset of links: a common-mode scaling of every link
    # would live inside the normal subspace and (correctly) not alarm.
    block[420, :5] *= 3.0
    return block


class TestRegistryResolution:
    def test_names_and_aliases(self):
        assert detectors.get("sharded-subspace").name == "sharded-subspace"
        assert detectors.get("spatial-subspace").name == "sharded-subspace"
        assert detectors.get("zoned-subspace").name == "sharded-subspace"
        assert (
            detectors.get("streaming-subspace").name == "streaming-subspace"
        )
        assert detectors.get("online-subspace").name == "streaming-subspace"
        assert (
            detectors.get("incremental-subspace").name
            == "streaming-subspace"
        )

    def test_types(self):
        assert isinstance(
            detectors.get("sharded-subspace"), ShardedSubspaceDetector
        )
        assert isinstance(
            detectors.get("streaming-subspace"), StreamingSubspaceDetector
        )

    def test_kwargs_forwarded(self):
        detector = detectors.get(
            "sharded-subspace", num_zones=3, fusion="union"
        )
        assert detector.num_zones == 3
        assert detector.fusion == "union"
        with pytest.raises(ModelError, match="unknown fusion"):
            detectors.get("sharded-subspace", fusion="quorum")


class TestShardedDetectorIdentity:
    @pytest.mark.parametrize("fusion", ["rescore", "union", "vote"])
    def test_score_is_the_fusion_plane(self, block, fusion):
        detector = ShardedSubspaceDetector(
            num_zones=3, fusion=fusion
        ).fit(block)
        plane = SpatialCoordinator(num_zones=3, workers=1).fit(block)
        assert np.array_equal(
            detector.score(block),
            plane.model.fused_score(block, fusion),
        )

    def test_rescore_threshold_is_pooled_q_statistic(self, block):
        detector = ShardedSubspaceDetector(num_zones=3).fit(block)
        pooled = detector.model.pooled_residual_eigenvalues()
        assert detector.threshold_at(0.995) == q_threshold(
            pooled, confidence=0.995
        )

    def test_union_quantile_calibration(self, block):
        detector = ShardedSubspaceDetector(
            num_zones=3, fusion="union"
        ).fit(block)
        train = detector.score(block)
        assert detector.threshold_at(0.97) == pytest.approx(
            float(np.quantile(train, 0.97))
        )
        assert detector.threshold_at(0.999) >= detector.threshold_at(0.9)

    def test_flags_injected_spike(self, block):
        for fusion in ("rescore", "union"):
            alarms = (
                ShardedSubspaceDetector(num_zones=2, fusion=fusion)
                .fit(block)
                .detect(block, confidence=0.999)
            )
            assert alarms.flags[420], fusion

    def test_single_link_block_degrades_to_one_zone(self):
        rng = np.random.default_rng(5)
        narrow = np.abs(rng.normal(1e6, 1e5, size=(200, 1)))
        detector = ShardedSubspaceDetector(num_zones=4).fit(narrow)
        assert detector.model.num_zones == 1
        assert detector.score(narrow).shape == (200,)


class TestStreamingSurfacesCannotDrift:
    def test_registry_detector_is_the_tracker(self, block):
        detector = StreamingSubspaceDetector().fit(block)
        tracker = detector.tracker
        assert np.array_equal(
            detector.score(block), tracker.spe_block(block)
        )
        assert detector.threshold_at(0.999) == q_threshold(
            tracker.eigenvalues[tracker.normal_rank :], confidence=0.999
        )

    def test_online_adapter_equals_streaming_detector(self, block):
        """Row-by-row OnlineSubspaceDetector == one-row-window
        StreamingDetector, bit for bit (the consolidation contract)."""
        train, test = block[:400], block[400:]
        online = OnlineSubspaceDetector(window_bins=400, refit_interval=24)
        online.warm_up(train)
        outcomes = online.process_block(test)

        registry = StreamingSubspaceDetector(
            forgetting=1.0 / 400
        ).fit(train)
        streaming = registry.streaming()
        streaming.tracker.refresh_interval = 24
        for outcome, row in zip(outcomes, test):
            window = streaming.process_window(row[None, :], refresh=False)
            assert outcome.spe == window.spe[0]
            assert outcome.threshold == window.threshold
            assert outcome.is_anomalous == bool(window.flags[0])

    def test_score_does_not_mutate_state(self, block):
        detector = StreamingSubspaceDetector().fit(block)
        before = detector.tracker.mean
        detector.score(block)
        detector.detect(block)
        assert np.array_equal(before, detector.tracker.mean)
