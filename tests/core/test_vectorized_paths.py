"""Regression: batched hot paths match their per-timestep references.

The pipeline rides on vectorized versions of the Q-statistic, the axis
separation, and identification; each must agree with the scalar
implementation it replaced, element for element.
"""

import numpy as np
import pytest

from repro.core import (
    PCA,
    SPEDetector,
    identify_block,
    identify_single_flow,
    q_threshold,
    q_thresholds,
)
from repro.core.subspace import separate_axes
from repro.exceptions import ModelError


@pytest.fixture(scope="module")
def fitted_world(small_dataset):
    detector = SPEDetector(confidence=0.999).fit(small_dataset.link_traffic)
    directions = small_dataset.routing.normalized_columns()
    return small_dataset, detector, directions


class TestQThresholdsBatch:
    CONFIDENCES = np.array([0.5, 0.9, 0.95, 0.99, 0.995, 0.999, 0.9999])

    def test_matches_scalar_loop_exactly(self, fitted_world):
        _, detector, _ = fitted_world
        lam = detector.model.residual_eigenvalues()
        batched = q_thresholds(lam, self.CONFIDENCES)
        looped = np.array([q_threshold(lam, c) for c in self.CONFIDENCES])
        assert np.array_equal(batched, looped)

    def test_matches_scalar_on_box_fallback_spectrum(self):
        # One dominant residual eigenvalue pushes h0 <= 0: the JM form
        # leaves its domain and both paths must take Box's chi-square.
        lam = np.array([10.0, 1e-4, 1e-5])
        batched = q_thresholds(lam, self.CONFIDENCES)
        looped = np.array([q_threshold(lam, c) for c in self.CONFIDENCES])
        assert np.array_equal(batched, looped)

    def test_empty_residual_subspace_gives_zeros(self):
        assert np.array_equal(
            q_thresholds(np.array([]), self.CONFIDENCES),
            np.zeros(self.CONFIDENCES.size),
        )

    def test_rejects_bad_confidences(self):
        with pytest.raises(ModelError):
            q_thresholds(np.array([1.0, 0.5]), np.array([0.9, 1.0]))
        with pytest.raises(ModelError):
            q_thresholds(np.array([1.0]), np.array([[0.9]]))

    def test_thresholds_increase_with_confidence(self, fitted_world):
        _, detector, _ = fitted_world
        lam = detector.model.residual_eigenvalues()
        batched = q_thresholds(lam, self.CONFIDENCES)
        assert np.all(np.diff(batched) > 0)


class TestIdentifyBlockRegression:
    def test_every_row_matches_scalar_identification(self, fitted_world):
        dataset, detector, directions = fitted_world
        block = identify_block(
            detector.model, directions, dataset.link_traffic
        )
        assert len(block) == dataset.num_bins
        for time_bin in range(0, dataset.num_bins, 17):
            single = identify_single_flow(
                detector.model, directions, dataset.link_traffic[time_bin]
            )
            assert block.flow_indices[time_bin] == single.flow_index
            assert block.magnitudes[time_bin] == pytest.approx(
                single.magnitude, rel=1e-9
            )
            assert block.residual_spe[time_bin] == pytest.approx(
                single.residual_spe, rel=1e-6, abs=1e-3
            )
            assert np.allclose(
                block.scores[time_bin], single.scores, rtol=1e-9, atol=1e-6
            )

    def test_single_vector_promotes_to_one_row(self, fitted_world):
        dataset, detector, directions = fitted_world
        block = identify_block(
            detector.model, directions, dataset.link_traffic[5]
        )
        assert len(block) == 1

    def test_shape_mismatch_rejected(self, fitted_world):
        _, detector, directions = fitted_world
        with pytest.raises(ModelError):
            identify_block(detector.model, directions, np.zeros((4, 3)))

    def test_invisible_candidates_rejected(self, fitted_world):
        dataset, detector, _ = fitted_world
        # A candidate lying entirely inside the normal subspace has no
        # residual signature; with only such candidates the block call
        # must refuse, like the scalar path.
        basis = detector.model.normal_basis
        inside = basis[:, :1] / np.linalg.norm(basis[:, :1])
        with pytest.raises(ModelError):
            identify_block(detector.model, inside, dataset.link_traffic[:4])


class TestSeparationVectorized:
    def test_matches_naive_reference(self, fitted_world):
        dataset, _, _ = fitted_world
        pca = PCA().fit(dataset.link_traffic)
        result = separate_axes(pca, dataset.link_traffic)

        # Naive per-axis reference (the pre-vectorization algorithm).
        scores = pca.transform(dataset.link_traffic)
        captured = pca.captured_variance()
        expected = np.zeros(pca.num_components)
        first = None
        for i in range(pca.num_components):
            if captured[i] == 0:
                continue
            u = scores[:, i] / np.linalg.norm(scores[:, i])
            std = u.std()
            if std == 0:
                continue
            expected[i] = np.max(np.abs(u - u.mean())) / std
            if first is None and expected[i] >= 3.0:
                first = i

        assert np.allclose(result.max_deviations, expected, rtol=1e-12)
        assert result.first_anomalous_axis == first

    def test_zero_variance_axes_never_trip(self, rng):
        # Rank-deficient data: trailing axes capture nothing.
        base = rng.normal(size=(60, 2))
        data = np.hstack([base, base @ rng.normal(size=(2, 3))])
        pca = PCA().fit(data)
        result = separate_axes(pca, data, min_normal_rank=0)
        assert np.all(result.max_deviations[pca.captured_variance() == 0] == 0)
