"""Dataset persistence.

Datasets round-trip through a single ``.npz`` archive: numeric arrays are
stored natively, the topology as embedded JSON, and the ground-truth event
ledger as parallel arrays.  The workload config is stored as JSON too, so
a loaded dataset remembers how it was generated.

For traffic matrices too large to hold in memory, the raw ``(t, m)``
link-measurement block additionally round-trips through a plain ``.npy``
file opened as a read-only :class:`numpy.memmap`
(:func:`save_traffic_memmap` / :func:`open_traffic_memmap`): row slices
of the map are ordinary float64 views that stream zero-copy through
:func:`~repro._util.ensure_matrix` into block scoring and
:meth:`~repro.pipeline.sharded.TemporalCoordinator.fit_stream` — the OS
pages rows in and out on demand and the matrix is never materialized.
:func:`traffic_chunks` packages the re-iterable chunk source those
streaming fits expect.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro._util import ensure_matrix
from repro.datasets.dataset import Dataset
from repro.exceptions import DatasetError
from repro.routing.routing_matrix import RoutingMatrix
from repro.topology.serialization import network_from_json, network_to_json
from repro.traffic.anomalies import AnomalyEvent, AnomalyShape
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.workloads import WorkloadConfig

__all__ = [
    "save_dataset",
    "load_dataset",
    "save_traffic_memmap",
    "open_traffic_memmap",
    "traffic_chunks",
]

_FORMAT_VERSION = 1


def save_traffic_memmap(measurements: np.ndarray, path: str | Path) -> Path:
    """Write a ``(t, m)`` traffic block as a memmap-ready ``.npy`` file.

    Uses the standard ``.npy`` container (``np.save``), so the file is
    also loadable with plain ``np.load``; stored as C-contiguous float64
    because that is the layout :func:`open_traffic_memmap` hands back as
    zero-copy views.
    """
    path = Path(path)
    if path.suffix != ".npy":
        path = path.with_suffix(path.suffix + ".npy")
    measurements = ensure_matrix(
        measurements, name="measurements", error=DatasetError
    )
    np.save(path, measurements, allow_pickle=False)
    return path


def open_traffic_memmap(path: str | Path) -> np.ndarray:
    """Open a :func:`save_traffic_memmap` file as a read-only memmap.

    The returned array reads pages from disk on demand; row slices are
    views onto the map, so chunked scoring and streaming fits touch only
    the rows they are currently processing.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"traffic file not found: {path}")
    try:
        mapped = np.load(path, mmap_mode="r", allow_pickle=False)
    except ValueError as err:
        raise DatasetError(f"not a .npy traffic file: {path}: {err}") from err
    if mapped.ndim != 2:
        raise DatasetError(
            f"traffic file must hold a (t, m) block, got shape {mapped.shape}"
        )
    if mapped.dtype != np.float64:
        raise DatasetError(
            f"traffic file must hold float64, got {mapped.dtype}"
        )
    return mapped


def traffic_chunks(source: np.ndarray | str | Path, chunk_rows: int = 8192):
    """A re-iterable chunk source over a traffic block or ``.npy`` path.

    Returns the zero-argument callable
    :meth:`~repro.pipeline.sharded.TemporalCoordinator.fit_stream`
    expects: each call yields fresh ``(k, m)`` row slices, oldest first.
    Slices are views (zero-copy) whether ``source`` is an in-memory
    array or a path opened through :func:`open_traffic_memmap`.
    """
    if chunk_rows < 1:
        raise DatasetError(f"chunk_rows must be >= 1, got {chunk_rows}")
    if isinstance(source, (str, Path)):
        block = open_traffic_memmap(source)
    else:
        block = ensure_matrix(
            source, name="source", error=DatasetError, check_finite=False
        )

    def chunks():
        for start in range(0, block.shape[0], chunk_rows):
            yield block[start : start + chunk_rows]

    return chunks


def save_dataset(dataset: Dataset, path: str | Path) -> Path:
    """Write ``dataset`` to ``path`` (``.npz`` appended when missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    events = dataset.true_events
    config_json = (
        json.dumps(dataclasses.asdict(dataset.config))
        if dataset.config is not None
        else ""
    )
    np.savez_compressed(
        path,
        format_version=np.array(_FORMAT_VERSION),
        name=np.array(dataset.name),
        topology_json=np.array(network_to_json(dataset.network, indent=None)),
        routing_matrix=dataset.routing.matrix,
        od_values=dataset.od_traffic.values,
        bin_seconds=np.array(dataset.bin_seconds),
        link_traffic=dataset.link_traffic,
        event_time_bins=np.array([e.time_bin for e in events], dtype=np.int64),
        event_flow_indices=np.array([e.flow_index for e in events], dtype=np.int64),
        event_amplitudes=np.array([e.amplitude_bytes for e in events]),
        event_shapes=np.array([e.shape.value for e in events]),
        event_durations=np.array([e.duration_bins for e in events], dtype=np.int64),
        config_json=np.array(config_json),
    )
    return path


def load_dataset(path: str | Path) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise DatasetError(
                f"unsupported dataset format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        network = network_from_json(str(archive["topology_json"]))
        routing = RoutingMatrix(
            archive["routing_matrix"],
            [link.name for link in network.links],
            network.od_pairs,
        )
        od_traffic = TrafficMatrix(
            archive["od_values"],
            network.od_pairs,
            bin_seconds=float(archive["bin_seconds"]),
        )
        events = tuple(
            AnomalyEvent(
                time_bin=int(t),
                flow_index=int(f),
                amplitude_bytes=float(a),
                shape=AnomalyShape(str(s)),
                duration_bins=int(d),
            )
            for t, f, a, s, d in zip(
                archive["event_time_bins"],
                archive["event_flow_indices"],
                archive["event_amplitudes"],
                archive["event_shapes"],
                archive["event_durations"],
            )
        )
        config_json = str(archive["config_json"])
        config = None
        if config_json:
            payload = json.loads(config_json)
            payload["anomaly_size_range"] = tuple(payload["anomaly_size_range"])
            config = WorkloadConfig(**payload)
        return Dataset(
            name=str(archive["name"]),
            network=network,
            routing=routing,
            od_traffic=od_traffic,
            link_traffic=archive["link_traffic"],
            true_events=events,
            config=config,
        )
