"""Extension bench: multi-flow anomaly identification (§7.2).

Systematic two-flow injections: the true pair must beat every single
flow and a set of decoy pairs, and the per-flow intensities must be
recovered.
"""

from repro.validation import MultiFlowStudy

from conftest import write_result


def test_ext_multiflow_identification(benchmark, sprint1, results_dir):
    study = MultiFlowStudy(sprint1, num_decoy_pairs=25, seed=11)
    result = benchmark.pedantic(
        lambda: study.run(num_trials=20, size_range=(3e7, 6e7)),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"trials: {len(result.trials)} (two-flow injections, 25 decoy pairs)",
        f"pair identification rate: {result.pair_identification_rate * 100:.0f}%",
        f"mean per-flow intensity error: {result.mean_intensity_error * 100:.0f}%",
        "",
        "trial  bin   flows        sizes                 pair-won",
    ]
    for trial in result.trials[:10]:
        f1, f2 = trial.flows
        s1, s2 = trial.sizes
        lines.append(
            f"{trial.time_bin:>9}  ({f1:>3},{f2:>3})  "
            f"({s1:.2e}, {s2:.2e})  {'yes' if trial.pair_identified else 'no'}"
        )
    write_result(results_dir, "ext_multiflow", "\n".join(lines))

    assert result.pair_identification_rate >= 0.75
    assert result.mean_intensity_error < 0.35
