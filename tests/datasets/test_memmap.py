"""Zero-copy out-of-core datasets (`.npy` memmap round trips).

Three layers of guarantees:

* persistence — :func:`save_traffic_memmap` / :func:`open_traffic_memmap`
  round-trip bitwise and hand back read-only maps whose row slices are
  views, not copies;
* equivalence — streaming a memmap through
  :meth:`TemporalCoordinator.fit_stream` and the fused
  :func:`score_block` kernel is bit-identical to the in-memory paths;
* out-of-core — under an address-space budget smaller than the matrix
  (``RLIMIT_DATA``, which counts anonymous memory but not file-backed
  maps), materializing the matrix dies with ``MemoryError`` while the
  chunked memmap pipeline completes.
"""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.io import (
    open_traffic_memmap,
    save_traffic_memmap,
    traffic_chunks,
)
from repro.exceptions import DatasetError
from repro.pipeline.sharded import TemporalCoordinator


@pytest.fixture(scope="module")
def traffic():
    rng = np.random.default_rng(5150)
    factors = rng.normal(size=(5, 24))
    weights = rng.normal(size=(600, 5)) * [8.0, 5.0, 3.0, 2.0, 1.0]
    return np.ascontiguousarray(
        1e5 + weights @ factors + rng.normal(size=(600, 24))
    )


class TestRoundTrip:
    def test_bitwise_round_trip(self, traffic, tmp_path):
        path = save_traffic_memmap(traffic, tmp_path / "traffic")
        assert path.suffix == ".npy"
        mapped = open_traffic_memmap(path)
        assert isinstance(mapped, np.memmap)
        assert mapped.dtype == np.float64
        assert np.array_equal(np.asarray(mapped), traffic)
        with pytest.raises(ValueError):
            mapped[0, 0] = 1.0  # read-only

    def test_open_rejects_missing_and_malformed(self, traffic, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            open_traffic_memmap(tmp_path / "absent.npy")
        vector = tmp_path / "vector.npy"
        np.save(vector, np.arange(5.0))
        with pytest.raises(DatasetError, match="\\(t, m\\)"):
            open_traffic_memmap(vector)
        f32 = tmp_path / "f32.npy"
        np.save(f32, np.ones((3, 3), dtype=np.float32))
        with pytest.raises(DatasetError, match="float64"):
            open_traffic_memmap(f32)

    def test_chunks_are_zero_copy_views(self, traffic, tmp_path):
        path = save_traffic_memmap(traffic, tmp_path / "traffic")
        mapped = open_traffic_memmap(path)
        chunks = list(traffic_chunks(path, chunk_rows=256)())
        assert sum(c.shape[0] for c in chunks) == traffic.shape[0]
        for chunk in chunks:
            assert isinstance(chunk, np.memmap)
        # In-memory sources slice zero-copy too.
        for chunk in traffic_chunks(traffic, chunk_rows=256)():
            assert np.shares_memory(chunk, traffic)

    def test_chunk_source_is_reiterable(self, traffic, tmp_path):
        path = save_traffic_memmap(traffic, tmp_path / "traffic")
        chunks = traffic_chunks(path, chunk_rows=128)
        first = [c.shape[0] for c in chunks()]
        second = [c.shape[0] for c in chunks()]
        assert first == second and sum(first) == traffic.shape[0]
        with pytest.raises(DatasetError, match="chunk_rows"):
            traffic_chunks(path, chunk_rows=0)


class TestStreamingEquivalence:
    def test_fit_stream_from_memmap_matches_in_memory_fit(
        self, traffic, tmp_path
    ):
        path = save_traffic_memmap(traffic, tmp_path / "traffic")
        coordinator = TemporalCoordinator(num_shards=4, workers=1)
        in_memory = coordinator.fit(traffic)
        streamed = coordinator.fit_stream(traffic_chunks(path, chunk_rows=96))
        ours, theirs = streamed.detector.model, in_memory.detector.model
        assert np.array_equal(ours.pca.mean, theirs.pca.mean)
        assert np.array_equal(ours.pca.components, theirs.pca.components)
        assert ours.normal_rank == theirs.normal_rank
        assert streamed.detector.threshold == in_memory.detector.threshold

    def test_block_scoring_from_memmap_is_bit_identical(
        self, traffic, tmp_path
    ):
        path = save_traffic_memmap(traffic, tmp_path / "traffic")
        fit = TemporalCoordinator(num_shards=2, workers=1).fit(traffic)
        model = fit.detector.model
        threshold = float(fit.detector.threshold)
        expected = model.score_block(traffic, threshold=threshold)
        mapped = open_traffic_memmap(path)
        scored = model.score_block(mapped, threshold=threshold)
        assert np.array_equal(scored.spe, expected.spe)
        assert np.array_equal(scored.flags, expected.flags)
        # Chunked sweep over memmap slices, merged, matches too
        # (projector-route chunking is bitwise invariant).
        pieces = [
            model.score_block(chunk, threshold=threshold)
            for chunk in traffic_chunks(path, chunk_rows=100)()
        ]
        assert np.array_equal(
            np.concatenate([p.spe for p in pieces]), expected.spe
        )


@pytest.mark.skipif(
    sys.platform != "linux",
    reason="RLIMIT_DATA excludes file-backed maps only on Linux >= 4.7",
)
class TestOutOfCore:
    """The matrix exceeds the address-space budget; the memmap does not.

    ``RLIMIT_DATA`` counts ``brk`` plus anonymous private mappings —
    a full ``np.array`` materialization — but not read-only file-backed
    maps, so it is exactly the right rlimit to prove the streaming path
    never materializes the matrix.
    """

    ROWS, COLS = 65_536, 64  # 32 MiB of float64

    def _run(self, script: str) -> subprocess.CompletedProcess:
        # One BLAS thread: the thread pool's per-thread work buffers are
        # anonymous memory and would eat the deliberately tight budget.
        env = dict(os.environ)
        env.update(
            OPENBLAS_NUM_THREADS="1",
            OMP_NUM_THREADS="1",
            MKL_NUM_THREADS="1",
        )
        return subprocess.run(
            [sys.executable, "-c", textwrap.dedent(script)],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )

    @pytest.fixture(scope="class")
    def big_traffic(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("ooc") / "big.npy"
        rng = np.random.default_rng(77)
        rows = np.empty((self.ROWS, self.COLS))
        base = rng.normal(size=(8, self.COLS))
        for start in range(0, self.ROWS, 8192):
            stop = min(start + 8192, self.ROWS)
            w = rng.normal(size=(stop - start, 8))
            rows[start:stop] = 1e6 + w @ base
        save_traffic_memmap(rows, path)
        return path

    def test_materializing_fails_but_streaming_succeeds(self, big_traffic):
        matrix_bytes = self.ROWS * self.COLS * 8
        script = f"""
        import resource, sys
        import numpy as np
        sys.path.insert(0, {str(Path.cwd() / "src")!r})
        from repro.datasets.io import open_traffic_memmap, traffic_chunks
        from repro.pipeline.sharded import TemporalCoordinator

        # Warm the BLAS work-buffer pool before measuring the baseline:
        # those buffers are anonymous memory allocated on first use, and
        # the budget must sit on top of them, not be eaten by them.
        warm = np.ones((4096, {self.COLS}))
        (warm @ warm.T[:, :8]).sum()

        # Budget: current anonymous footprint + a quarter of the matrix.
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmData:"):
                    vmdata = int(line.split()[1]) * 1024
                    break
        budget = vmdata + {matrix_bytes} // 4
        resource.setrlimit(resource.RLIMIT_DATA, (budget, budget))

        mapped = open_traffic_memmap({str(big_traffic)!r})
        try:
            full = np.array(mapped)  # anonymous copy: over budget
        except MemoryError:
            pass
        else:
            raise SystemExit("FAIL: full materialization fit in budget")

        fit = TemporalCoordinator(num_shards=4, workers=1).fit_stream(
            traffic_chunks({str(big_traffic)!r}, chunk_rows=4096)
        )
        spe_head = fit.detector.model.score_block(
            mapped[:4096], threshold=float(fit.detector.threshold)
        ).spe
        print(fit.detector.normal_rank, float(spe_head.sum()))
        """
        result = self._run(script)
        assert result.returncode == 0, result.stderr or result.stdout
        rank, checksum = result.stdout.split()

        # Same fit without any rlimit, fully in memory: bit-identical.
        mapped = open_traffic_memmap(big_traffic)
        reference = TemporalCoordinator(num_shards=4, workers=1).fit(
            np.array(mapped)
        )
        assert int(rank) == reference.detector.normal_rank
        expected = reference.detector.model.score_block(
            np.array(mapped[:4096]),
            threshold=float(reference.detector.threshold),
        ).spe
        assert float(checksum) == float(expected.sum())
