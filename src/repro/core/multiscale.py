"""Multiscale subspace detection (§7.3, reference [23]).

The paper notes that temporal and spatial correlation can be combined by
applying PCA to the *wavelet transform* of the measurements (Misra et al.,
"Multivariate process monitoring and fault diagnosis by multi-scale PCA").
This module implements that extension with a self-contained Haar discrete
wavelet transform:

1. decompose each link's timeseries into detail bands ``D_1..D_L`` plus
   the approximation ``A_L``;
2. fit an :class:`~repro.core.detection.SPEDetector` on each band's
   ``(t_band, m)`` coefficient matrix (scale-local spatial correlation);
3. flag a time bin when any band's detector fires at the coefficient
   covering it.

Short spikes concentrate in the finest details while slow shifts surface
in coarse bands, so the combined detector can, in principle, catch
anomalies across timescales.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.detection import SPEDetector
from repro.exceptions import ModelError, NotFittedError

__all__ = ["haar_dwt", "haar_idwt", "MultiscaleDetector", "MultiscaleResult"]

_SQRT2 = float(np.sqrt(2.0))


def haar_dwt(signal: np.ndarray, levels: int) -> tuple[list[np.ndarray], np.ndarray]:
    """Haar discrete wavelet transform along axis 0.

    Parameters
    ----------
    signal:
        ``(t,)`` vector or ``(t, m)`` matrix; ``t`` must be divisible by
        ``2**levels``.
    levels:
        Number of decomposition levels (>= 1).

    Returns
    -------
    (details, approximation):
        ``details[k]`` holds the level-``k+1`` detail coefficients
        (finest first); ``approximation`` is the final coarse band.
    """
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim == 1:
        signal = signal[:, None]
        squeeze = True
    elif signal.ndim == 2:
        squeeze = False
    else:
        raise ModelError(f"signal must be 1-D or 2-D, got shape {signal.shape}")
    if levels < 1:
        raise ModelError(f"levels must be >= 1, got {levels}")
    t = signal.shape[0]
    if t % (2**levels) != 0:
        raise ModelError(
            f"signal length {t} is not divisible by 2**levels = {2 ** levels}"
        )

    details: list[np.ndarray] = []
    approx = signal
    for _ in range(levels):
        even = approx[0::2]
        odd = approx[1::2]
        details.append((even - odd) / _SQRT2)
        approx = (even + odd) / _SQRT2
    if squeeze:
        details = [d[:, 0] for d in details]
        approx = approx[:, 0]
    return details, approx


def haar_idwt(details: list[np.ndarray], approximation: np.ndarray) -> np.ndarray:
    """Inverse of :func:`haar_dwt` (exact reconstruction)."""
    approx = np.asarray(approximation, dtype=np.float64)
    squeeze = approx.ndim == 1
    if squeeze:
        approx = approx[:, None]
    for detail in reversed(details):
        detail = np.asarray(detail, dtype=np.float64)
        if detail.ndim == 1:
            detail = detail[:, None]
        if detail.shape != approx.shape:
            raise ModelError(
                f"detail band shape {detail.shape} does not match "
                f"approximation shape {approx.shape}"
            )
        even = (approx + detail) / _SQRT2
        odd = (approx - detail) / _SQRT2
        merged = np.empty((approx.shape[0] * 2, approx.shape[1]))
        merged[0::2] = even
        merged[1::2] = odd
        approx = merged
    return approx[:, 0] if squeeze else approx


@dataclass(frozen=True)
class MultiscaleResult:
    """Combined multiscale detection output.

    Attributes
    ----------
    flags:
        Per-original-bin anomaly indicators (union over bands).
    band_flags:
        One boolean array per band (coefficient resolution), finest
        detail first, approximation last.
    band_names:
        Human-readable band labels.
    """

    flags: np.ndarray
    band_flags: list[np.ndarray]
    band_names: list[str]

    @property
    def anomalous_bins(self) -> np.ndarray:
        """Indices of flagged original-resolution bins."""
        return np.nonzero(self.flags)[0]


class MultiscaleDetector:
    """Wavelet-domain subspace detection across timescales.

    Parameters
    ----------
    levels:
        Haar decomposition depth.
    include_approximation:
        Also monitor the coarse approximation band (slow shifts).
    confidence, threshold_sigma:
        Forwarded to each band's :class:`SPEDetector`.
    """

    def __init__(
        self,
        levels: int = 3,
        include_approximation: bool = False,
        confidence: float = 0.999,
        threshold_sigma: float = 3.0,
    ) -> None:
        if levels < 1:
            raise ModelError(f"levels must be >= 1, got {levels}")
        self.levels = levels
        self.include_approximation = include_approximation
        self.confidence = confidence
        self.threshold_sigma = threshold_sigma
        self._detectors: list[SPEDetector] | None = None
        self._band_names: list[str] = []

    def fit(self, measurements: np.ndarray) -> "MultiscaleDetector":
        """Fit one subspace detector per wavelet band."""
        measurements = np.asarray(measurements, dtype=np.float64)
        if measurements.ndim != 2:
            raise ModelError(
                f"measurements must be (t, m), got shape {measurements.shape}"
            )
        details, approx = haar_dwt(measurements, self.levels)
        bands = list(details)
        names = [f"detail-{k + 1}" for k in range(self.levels)]
        if self.include_approximation:
            bands.append(approx)
            names.append(f"approx-{self.levels}")
        detectors = []
        for band in bands:
            if band.shape[0] < 2:
                raise ModelError(
                    "not enough coefficients at the coarsest level; reduce "
                    "`levels` or supply a longer trace"
                )
            detector = SPEDetector(
                confidence=self.confidence,
                threshold_sigma=self.threshold_sigma,
            )
            detectors.append(detector.fit(band))
        self._detectors = detectors
        self._band_names = names
        return self

    def detect(self, measurements: np.ndarray) -> MultiscaleResult:
        """Flag original-resolution bins via the per-band detectors.

        A coefficient at level ``k`` covers ``2**k`` original bins; a
        flagged coefficient flags all bins it covers.
        """
        if self._detectors is None:
            raise NotFittedError("MultiscaleDetector.fit must be called first")
        measurements = np.asarray(measurements, dtype=np.float64)
        details, approx = haar_dwt(measurements, self.levels)
        bands = list(details)
        if self.include_approximation:
            bands.append(approx)

        t = measurements.shape[0]
        combined = np.zeros(t, dtype=bool)
        band_flags: list[np.ndarray] = []
        for k, (band, detector) in enumerate(zip(bands, self._detectors)):
            result = detector.detect(band)
            band_flags.append(result.flags)
            stride = 2 ** min(k + 1, self.levels)
            if self.include_approximation and k == len(bands) - 1:
                stride = 2**self.levels
            expanded = np.repeat(result.flags, stride)[:t]
            combined |= expanded
        return MultiscaleResult(
            flags=combined,
            band_flags=band_flags,
            band_names=list(self._band_names),
        )
