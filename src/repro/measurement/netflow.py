"""NetFlow-style flow collection.

:class:`FlowCollector` turns true per-bin OD byte counts into the sampled,
rate-adjusted estimates an operator would actually see: bytes are
converted to packets, packets run through a :class:`PacketSampler`, and
sampled sizes are re-expanded by the sampling rate.  Collection happens on
fine export bins (5 min for Sprint-style, 1 min for Abilene-style); the
caller re-bins to the paper's 10-minute analysis granularity.
"""

from __future__ import annotations

import numpy as np

from repro._util import rng_from
from repro.exceptions import MeasurementError
from repro.measurement.records import FlowRecord, FlowRecordBatch
from repro.measurement.sampling import PacketSampler, PacketSizeModel

__all__ = ["FlowCollector"]


class FlowCollector:
    """Simulates a sampled-flow exporter for OD-aggregated traffic.

    Parameters
    ----------
    sampler:
        Packet sampling discipline (periodic or random).
    size_model:
        Packet-size distribution summary.
    seed:
        Randomness source (phase offsets, binomial draws, size noise).
    """

    def __init__(
        self,
        sampler: PacketSampler,
        size_model: PacketSizeModel | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.sampler = sampler
        self.size_model = size_model if size_model is not None else PacketSizeModel()
        self._rng = rng_from(seed)

    def estimate_matrix(self, true_bytes: np.ndarray) -> np.ndarray:
        """Rate-adjusted byte estimates for a ``(bins, flows)`` matrix.

        The estimator is unbiased: ``E[estimate] = true`` up to the packet
        rounding of the size model.  Its relative error shrinks as
        ``1/sqrt(n·p)`` with ``n`` packets and sampling rate ``p``.
        """
        true_bytes = np.asarray(true_bytes, dtype=np.float64)
        if true_bytes.ndim != 2:
            raise MeasurementError(
                f"expected a (bins, flows) matrix, got shape {true_bytes.shape}"
            )
        packets = self.size_model.packets_for_bytes(true_bytes)
        sampled_bytes, _counts = self.sampler.sampled_bytes(
            packets, self.size_model, self._rng
        )
        return sampled_bytes / self.sampler.rate

    def collect(
        self,
        true_bytes: np.ndarray,
        od_pairs: list[tuple[str, str]],
        emit_zero_records: bool = False,
    ) -> FlowRecordBatch:
        """Export a :class:`FlowRecordBatch` for a ``(bins, flows)`` matrix.

        Real exporters emit nothing for flows with no sampled packets;
        ``emit_zero_records`` forces records for every cell (useful in
        tests that assert on record counts).
        """
        true_bytes = np.asarray(true_bytes, dtype=np.float64)
        if true_bytes.ndim != 2:
            raise MeasurementError(
                f"expected a (bins, flows) matrix, got shape {true_bytes.shape}"
            )
        if true_bytes.shape[1] != len(od_pairs):
            raise MeasurementError(
                f"matrix has {true_bytes.shape[1]} flows but {len(od_pairs)} "
                "OD pairs were given"
            )
        packets = self.size_model.packets_for_bytes(true_bytes)
        sampled_bytes, counts = self.sampler.sampled_bytes(
            packets, self.size_model, self._rng
        )
        batch = FlowRecordBatch()
        bins, flows = true_bytes.shape
        for time_bin in range(bins):
            for j in range(flows):
                if counts[time_bin, j] == 0 and not emit_zero_records:
                    continue
                origin, destination = od_pairs[j]
                batch.add(
                    FlowRecord(
                        origin=origin,
                        destination=destination,
                        time_bin=time_bin,
                        sampled_bytes=float(sampled_bytes[time_bin, j]),
                        sampled_packets=int(counts[time_bin, j]),
                        sampling_rate=self.sampler.rate,
                    )
                )
        return batch
