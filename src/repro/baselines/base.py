"""Common interface for temporal baseline models.

Every baseline decomposes each timeseries ``z`` into a modeled part ``ẑ``
and a residual ``z − ẑ``; the *anomaly size* at time ``t`` is ``|z_t −
ẑ_t|`` (paper §6.2).  Models operate column-wise on ``(t, k)`` matrices —
each column an independent series (an OD flow or a link).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ModelError

__all__ = ["TimeseriesModel"]


class TimeseriesModel(abc.ABC):
    """Interface: column-wise timeseries modeling.

    Subclasses implement :meth:`predict`; the residual/score helpers are
    shared.
    """

    @abc.abstractmethod
    def predict(self, series: np.ndarray) -> np.ndarray:
        """The modeled value ``ẑ_t`` for each entry of ``series``.

        ``series`` is ``(t,)`` or ``(t, k)``; the result has the same
        shape.
        """

    # ------------------------------------------------------------------
    def residuals(self, series: np.ndarray) -> np.ndarray:
        """Signed residuals ``z − ẑ``."""
        series = self._check(series)
        return series - self.predict(series)

    def anomaly_sizes(self, series: np.ndarray) -> np.ndarray:
        """Per-entry anomaly size ``|z − ẑ|`` (the paper's size estimate)."""
        return np.abs(self.residuals(series))

    def residual_energy(self, series: np.ndarray) -> np.ndarray:
        """Per-timestep squared residual magnitude across all columns.

        The quantity plotted in the paper's Figure 10 for the EWMA and
        Fourier link-data baselines: ``‖z_t − ẑ_t‖²`` over the ensemble.
        """
        residuals = self.residuals(series)
        if residuals.ndim == 1:
            return residuals**2
        return np.einsum("ij,ij->i", residuals, residuals)

    # ------------------------------------------------------------------
    @staticmethod
    def _check(series: np.ndarray) -> np.ndarray:
        array = np.asarray(series, dtype=np.float64)
        if array.ndim not in (1, 2):
            raise ModelError(
                f"series must be 1-D or 2-D, got shape {array.shape}"
            )
        if array.shape[0] < 2:
            raise ModelError("series needs at least 2 time samples")
        if not np.all(np.isfinite(array)):
            raise ModelError("series contains non-finite values")
        return array
