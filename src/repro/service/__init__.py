"""Always-on detection service (§7.1 deployed continuously).

The batch pipeline diagnoses a finished measurement block; this package
keeps the same mathematics running against an unbounded row stream:

* :mod:`~repro.service.engine` — the transport-agnostic core: validate,
  score under the pinned model version, identify, fold, account.
* :mod:`~repro.service.lifecycle` — versioned models refit from merged
  sufficient statistics, hot-swapped atomically at an exact row
  boundary.
* :mod:`~repro.service.http` — the stdlib-asyncio HTTP daemon
  (``repro serve``).
* :mod:`~repro.service.metrics` — hand-rolled Prometheus instruments
  and text exposition.
* :mod:`~repro.service.events` — the structured JSONL event log.

The load-bearing guarantee, pinned by the parity property tests: any row
stream ingested through the service raises bit-identically the alarms of
a batch :class:`~repro.pipeline.pipeline.DetectionPipeline` over the
assembled matrix, including across hot-swap boundaries.  See
``docs/service.md``.
"""

from repro.service.engine import (
    ERROR_REASONS,
    BlockResult,
    DetectionService,
    RowOutcome,
    ServiceConfig,
)
from repro.service.events import EVENT_KINDS, EVENT_SCHEMA_VERSION, EventLog
from repro.service.http import ServiceHTTPServer, serve
from repro.service.lifecycle import (
    CHECKPOINT_SCHEMA_VERSION,
    ModelLifecycleManager,
    ModelVersion,
)
from repro.service.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "DetectionService",
    "ServiceConfig",
    "RowOutcome",
    "BlockResult",
    "ERROR_REASONS",
    "ModelLifecycleManager",
    "ModelVersion",
    "CHECKPOINT_SCHEMA_VERSION",
    "EventLog",
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "ServiceHTTPServer",
    "serve",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
]
