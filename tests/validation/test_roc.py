"""Tests for repro.validation.roc."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.validation import detector_roc, operating_point, roc_curve


class TestRocCurve:
    def test_perfect_separation(self):
        energy = np.array([1.0, 2.0, 100.0, 3.0, 200.0])
        curve = roc_curve(energy, np.array([2, 4]))
        assert curve.auc == pytest.approx(1.0)
        assert curve.detection_at(0.0) == 1.0

    def test_no_separation(self, rng):
        energy = rng.uniform(size=2000)
        anomaly_bins = rng.choice(2000, size=200, replace=False)
        curve = roc_curve(energy, anomaly_bins)
        assert curve.auc == pytest.approx(0.5, abs=0.06)

    def test_monotone_curve(self, rng):
        energy = rng.exponential(size=500)
        curve = roc_curve(energy, np.array([3, 100, 400]))
        # Descending thresholds produce nondecreasing rates.
        assert np.all(np.diff(curve.detection_rates) >= 0)
        assert np.all(np.diff(curve.false_alarm_rates) >= 0)

    def test_detection_at_budget(self):
        energy = np.array([1.0, 5.0, 10.0, 2.0, 8.0])
        curve = roc_curve(energy, np.array([2, 4]))  # 10 and 8
        # Zero-FA threshold must sit above 5 -> catches both anomalies.
        assert curve.detection_at(0.0) == 1.0

    def test_subspace_auc_on_sprint(self, sprint1):
        from repro.core import SPEDetector

        detector = SPEDetector().fit(sprint1.link_traffic)
        spe = np.asarray(detector.model.spe(sprint1.link_traffic))
        events = np.array(
            sorted(
                e.time_bin
                for e in sprint1.true_events
                if abs(e.amplitude_bytes) >= 2e7
            )
        )
        curve = roc_curve(spe, events)
        assert curve.auc > 0.95

    def test_validation(self):
        with pytest.raises(ValidationError):
            roc_curve(np.ones((2, 2)), np.array([0]))
        with pytest.raises(ValidationError):
            roc_curve(np.ones(5), np.array([], dtype=int))
        with pytest.raises(ValidationError):
            roc_curve(np.ones(5), np.array([99]))


class TestRocEdgeCases:
    def test_empty_truth_set_raises(self):
        with pytest.raises(ValidationError, match="empty truth set"):
            roc_curve(np.arange(10.0), np.array([], dtype=np.int64))

    def test_all_anomalous_bins_raise(self):
        # Every bin anomalous: no normal bins, so FA rates are undefined.
        with pytest.raises(ValidationError, match="no normal bins"):
            roc_curve(np.arange(5.0), np.arange(5))

    def test_all_anomalous_via_duplicate_bins(self):
        # Duplicate truth indices must not mask the degenerate case.
        with pytest.raises(ValidationError, match="no normal bins"):
            roc_curve(np.arange(3.0), np.array([0, 0, 1, 1, 2, 2]))

    def test_tied_energies_are_deduplicated(self):
        energy = np.array([1.0, 5.0, 5.0, 5.0, 1.0, 9.0])
        curve = roc_curve(energy, np.array([1, 5]))
        # One threshold per *distinct* energy, strictly descending.
        assert curve.thresholds.tolist() == [9.0, 5.0, 1.0]
        assert np.all(np.diff(curve.thresholds) < 0)
        # 9 > 5: one of two anomalies; 5.0 keeps both ties un-flagged
        # under the strict > rule.
        assert curve.detection_rates.tolist() == [0.0, 0.5, 1.0]
        assert curve.false_alarm_rates.tolist() == [0.0, 0.0, 0.5]

    def test_constant_energy_is_a_single_point(self):
        curve = roc_curve(np.ones(8), np.array([2, 3]))
        assert curve.thresholds.tolist() == [1.0]
        assert curve.detection_rates.tolist() == [0.0]
        assert curve.false_alarm_rates.tolist() == [0.0]
        assert curve.auc == pytest.approx(0.5)

    def test_matches_naive_per_threshold_scan(self, rng):
        """The sorted sweep equals the O(t²) definition, bit for bit."""
        energy = rng.exponential(size=400)
        energy[::7] = energy[::6][: energy[::7].size]  # force ties
        anomaly_bins = rng.choice(400, size=37, replace=False)
        curve = roc_curve(energy, anomaly_bins)

        mask = np.zeros(energy.size, dtype=bool)
        mask[anomaly_bins] = True
        anomalous, normal = energy[mask], energy[~mask]
        thresholds = np.unique(energy)[::-1]
        detection = np.array([np.mean(anomalous > t) for t in thresholds])
        false_alarm = np.array([np.mean(normal > t) for t in thresholds])
        assert np.array_equal(curve.thresholds, thresholds)
        assert np.array_equal(curve.detection_rates, detection)
        assert np.array_equal(curve.false_alarm_rates, false_alarm)

    def test_operating_point_rejects_degenerate_truth(self):
        with pytest.raises(ValidationError):
            operating_point(np.ones(5), np.array([], dtype=int), 0.5)
        with pytest.raises(ValidationError):
            operating_point(np.ones(5), np.arange(5), 0.5)


class TestDetectorRoc:
    @pytest.fixture(scope="class")
    def spiky_block(self):
        rng = np.random.default_rng(7)
        block = np.abs(rng.normal(100.0, 5.0, size=(300, 6)))
        block[[40, 120, 250]] *= 6.0
        return block

    def test_by_registry_name(self, spiky_block):
        curve = detector_roc(
            "fourier", spiky_block, np.array([40, 120, 250])
        )
        assert curve.auc > 0.9

    def test_with_detector_instance_and_train_split(self, spiky_block):
        from repro import detectors

        detector = detectors.get("subspace")
        curve = detector_roc(
            detector,
            spiky_block,
            np.array([40, 120, 250]),
            train=spiky_block[:200],
        )
        assert detector.is_fitted
        assert 0.0 <= curve.auc <= 1.0

    def test_kwargs_require_registry_name(self, spiky_block):
        from repro import detectors

        with pytest.raises(ValidationError):
            detector_roc(
                detectors.get("fourier"),
                spiky_block,
                np.array([40]),
                alpha=0.3,
            )

    def test_fitted_instance_is_never_silently_refit(self, spiky_block):
        from repro import detectors

        detector = detectors.get("ewma").fit(spiky_block[:150])
        threshold_before = detector.threshold_at(0.99)
        detector_roc(detector, spiky_block, np.array([40, 120, 250]))
        # Scoring must not have touched the calibration.
        assert detector.threshold_at(0.99) == threshold_before

    def test_unfitted_instance_without_train_raises(self, spiky_block):
        from repro import detectors
        from repro.exceptions import NotFittedError

        with pytest.raises(NotFittedError):
            detector_roc(
                detectors.get("ewma"), spiky_block, np.array([40])
            )


class TestOperatingPoint:
    def test_exact_rates(self):
        energy = np.array([1.0, 5.0, 10.0, 2.0])
        detection, false_alarm = operating_point(energy, np.array([2]), 4.0)
        assert detection == 1.0
        assert false_alarm == pytest.approx(1 / 3)

    def test_q_statistic_point_lies_on_curve(self, sprint1):
        from repro.core import SPEDetector

        detector = SPEDetector().fit(sprint1.link_traffic)
        spe = np.asarray(detector.model.spe(sprint1.link_traffic))
        events = np.array(sorted(
            e.time_bin
            for e in sprint1.true_events
            if abs(e.amplitude_bytes) >= 2e7
        ))
        detection, false_alarm = operating_point(spe, events, detector.threshold)
        # The paper's chosen operating point: high detection, ~1e-3 FA.
        assert detection >= 0.75
        assert false_alarm < 0.01
