"""Tests for repro.topology.validation."""

import pytest

from repro.exceptions import TopologyError
from repro.topology import Link, Network, PoP
from repro.topology.validation import check_network, connectivity_report


def asymmetric_net() -> Network:
    net = Network("asym")
    net.add_pop(PoP("a"))
    net.add_pop(PoP("b"))
    net.add_link(Link("a", "b"))
    return net


class TestCheckNetwork:
    def test_passes_on_well_formed(self, toy_net):
        check_network(toy_net, require_intra_pop=True)

    def test_empty_network_rejected(self):
        with pytest.raises(TopologyError):
            check_network(Network("empty"))

    def test_missing_reverse_link_detected(self):
        with pytest.raises(TopologyError, match="no reverse"):
            check_network(asymmetric_net(), require_connected=False)

    def test_asymmetric_allowed_when_disabled(self):
        check_network(
            asymmetric_net(), require_connected=False, require_symmetric=False
        )

    def test_missing_intra_pop_detected(self):
        net = Network.from_edges("n", ["a", "b"], [("a", "b")], with_intra_pop=False)
        with pytest.raises(TopologyError, match="intra-PoP"):
            check_network(net, require_intra_pop=True)

    def test_disconnected_detected(self):
        net = Network.from_edges("split", ["a", "b", "c", "d"], [("a", "b"), ("c", "d")])
        with pytest.raises(TopologyError, match="not strongly connected"):
            check_network(net)

    def test_disconnected_allowed_when_disabled(self):
        net = Network.from_edges("split", ["a", "b", "c", "d"], [("a", "b"), ("c", "d")])
        check_network(net, require_connected=False)


class TestConnectivityReport:
    def test_connected_network(self, toy_net):
        report = connectivity_report(toy_net)
        assert report.is_connected
        assert report.num_components == 1
        assert report.largest_component_size == 4
        assert report.isolated_pops == ()
        assert report.diameter == 2

    def test_disconnected_network(self):
        net = Network.from_edges("split", ["a", "b", "c", "d"], [("a", "b"), ("c", "d")])
        report = connectivity_report(net)
        assert not report.is_connected
        assert report.num_components == 2
        assert report.largest_component_size == 2
        assert report.diameter is None

    def test_isolated_pop_reported(self):
        net = Network.from_edges("iso", ["a", "b", "c"], [("a", "b")])
        report = connectivity_report(net)
        assert report.isolated_pops == ("c",)

    def test_str_rendering(self, toy_net):
        text = str(connectivity_report(toy_net))
        assert "connected" in text
