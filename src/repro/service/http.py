"""Stdlib-asyncio HTTP front end for :class:`DetectionService`.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — the
container ships no web framework, and the service needs exactly seven
routes:

====== =========== ====================================================
Method Path        Behavior
====== =========== ====================================================
POST   /ingest     Score a batch of rows; 400 with a reason token on
                   the first rejected row (earlier rows stay ingested).
GET    /metrics    Prometheus text exposition (format 0.0.4).
GET    /health     Liveness JSON; ``status: ok`` whenever serving.
GET    /version    Active model version + full swap history.
POST   /refit      Refit now (``{"wait": false}`` → background, 202).
POST   /checkpoint Persist the lifecycle atomically (``{"path": ...}``
                   overrides the configured destination).
POST   /shutdown   Graceful stop after the response is written (a
                   configured checkpoint path makes the stop warm).
====== =========== ====================================================

A SIGTERM takes the same path as ``POST /shutdown`` — the signal
handler sets the shutdown event, ``serve_until_shutdown`` falls through
to ``service.close()``, and ``close()`` writes a final checkpoint when
one is configured, so an orchestrator's ordinary kill restarts warm.

Transport faults never reach the engine as crashes: oversized bodies,
stalled reads, malformed framing, and mid-request disconnects each map
to one reason token on the service's error counter, and the connection
handler survives to serve the next client.
"""

from __future__ import annotations

import asyncio
import json

from repro.exceptions import ServiceError
from repro.service.engine import DetectionService

__all__ = ["ServiceHTTPServer", "serve"]

_MAX_HEADER_LINES = 100
_MAX_REQUEST_LINE = 8192


class _HTTPError(Exception):
    """An error that maps to a client-facing status + reason token."""

    def __init__(self, status: int, reason: str, detail: str = "") -> None:
        super().__init__(detail or reason)
        self.status = status
        self.reason = reason
        self.detail = detail


_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class ServiceHTTPServer:
    """One engine, one listening socket, many keep-alive connections.

    With ``tenants`` (a
    :class:`~repro.service.tenants.MultiTenantService`) the server also
    routes ``POST /ingest/<tenant>`` to the named tenant's engine and
    appends the fleet's tenant-labeled counters to ``GET /metrics``.
    ``service`` stays the primary engine: it serves the unprefixed
    routes and accounts transport-level faults (which have no tenant).
    """

    def __init__(
        self,
        service: DetectionService,
        host: str = "127.0.0.1",
        port: int = 0,
        tenants=None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.tenants = tenants
        self._server: asyncio.Server | None = None
        self.shutdown_event = asyncio.Event()

    @classmethod
    def for_tenants(
        cls, tenants, host: str = "127.0.0.1", port: int = 0
    ) -> "ServiceHTTPServer":
        """A multi-tenant server with the first tenant as primary."""
        primary = tenants.service(tenants.tenants[0])
        return cls(primary, host=host, port=port, tenants=tenants)

    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind the socket; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_until_shutdown(self) -> None:
        """Serve until ``POST /shutdown`` (or a cancelled task)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self.shutdown_event.wait()
        self.service.close()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        timeout = self.service.config.read_timeout
        try:
            while not self.shutdown_event.is_set():
                try:
                    request = await self._read_request(reader, timeout)
                except asyncio.TimeoutError:
                    self.service.record_error(
                        "read_timeout", detail="request read stalled"
                    )
                    await self._respond_safe(
                        writer,
                        408,
                        {"error": "request read timed out"},
                        close=True,
                    )
                    return
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    BrokenPipeError,
                ):
                    self.service.record_error(
                        "client_disconnect",
                        detail="connection dropped mid-request",
                    )
                    return
                except _HTTPError as err:
                    self.service.record_error(err.reason, detail=err.detail)
                    await self._respond_safe(
                        writer,
                        err.status,
                        {"error": err.detail or err.reason,
                         "reason": err.reason},
                        close=True,
                    )
                    return
                if request is None:
                    return  # clean end of keep-alive connection
                method, path, body = request
                status, payload, content_type = self._dispatch(
                    method, path, body
                )
                keep_open = await self._respond_safe(
                    writer, status, payload, content_type=content_type
                )
                if not keep_open:
                    return
                if path == "/shutdown" and status == 200:
                    self.shutdown_event.set()
                    return
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, timeout: float
    ) -> tuple[str, str, bytes] | None:
        line = await asyncio.wait_for(reader.readline(), timeout)
        if not line:
            return None
        if len(line) > _MAX_REQUEST_LINE:
            raise _HTTPError(400, "bad_request", "request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HTTPError(
                400, "bad_request", f"malformed request line: {parts}"
            )
        method, target, _version = parts
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            header = await asyncio.wait_for(reader.readline(), timeout)
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _HTTPError(400, "bad_request", "too many headers")
        length = int(headers.get("content-length", "0") or "0")
        if length > self.service.config.max_body_bytes:
            raise _HTTPError(
                413,
                "body_too_large",
                f"body of {length} bytes exceeds the "
                f"{self.service.config.max_body_bytes}-byte cap",
            )
        body = b""
        if length > 0:
            body = await asyncio.wait_for(reader.readexactly(length), timeout)
        return method, target.split("?", 1)[0], body

    # ------------------------------------------------------------------
    def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, object, str]:
        routes = {
            "/ingest": ("POST", self._route_ingest),
            "/metrics": ("GET", self._route_metrics),
            "/health": ("GET", self._route_health),
            "/version": ("GET", self._route_version),
            "/refit": ("POST", self._route_refit),
            "/checkpoint": ("POST", self._route_checkpoint),
            "/shutdown": ("POST", self._route_shutdown),
        }
        if path.startswith("/ingest/") and self.tenants is not None:
            if method != "POST":
                return (
                    405,
                    {"error": f"{path} expects POST, got {method}"},
                    "application/json",
                )
            from urllib.parse import unquote

            return self._route_ingest_tenant(
                unquote(path[len("/ingest/") :]), body
            )
        if path not in routes:
            return 404, {"error": f"unknown path {path}"}, "application/json"
        expected, handler = routes[path]
        if method != expected:
            return (
                405,
                {"error": f"{path} expects {expected}, got {method}"},
                "application/json",
            )
        return handler(body)

    def _parse_json(self, body: bytes) -> object:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            self.service.record_error("malformed_json", detail=str(err))
            raise _HTTPError(
                400, "malformed_json", f"body is not valid JSON: {err}"
            ) from err

    def _route_ingest_tenant(
        self, tenant_id: str, body: bytes
    ) -> tuple[int, object, str]:
        """``POST /ingest/<tenant>``: score a batch under one tenant."""
        try:
            self.tenants.service(tenant_id)
        except ServiceError:
            return (
                404,
                {
                    "error": f"unknown tenant {tenant_id!r}",
                    "reason": "unknown_tenant",
                    "accepted": 0,
                },
                "application/json",
            )
        return self._route_ingest(
            body,
            ingest_block=lambda rows, bins: self.tenants.ingest_block(
                tenant_id, rows, bins=bins
            ),
        )

    def _route_ingest(
        self, body: bytes, ingest_block=None
    ) -> tuple[int, object, str]:
        """Parse an ingest body and stream it through the block path.

        Single-row (``{"row": ...}``) and multi-row (``{"rows": ...}``)
        payloads both become one :meth:`DetectionService.ingest_block`
        call — the engine parses the JSON rows into one ndarray and
        scores each contiguous accepted run with a single fused kernel
        pass, bit-identical to per-row ingestion.  Response shapes are
        unchanged from the per-row implementation.
        """
        if ingest_block is None:
            ingest_block = self.service.ingest_block
        try:
            payload = self._parse_json(body)
        except _HTTPError as err:
            return (
                err.status,
                {"error": err.detail, "reason": err.reason, "accepted": 0},
                "application/json",
            )
        if isinstance(payload, dict) and "row" in payload:
            rows = [payload["row"]]
            bins = [payload["bin"]] if "bin" in payload else None
        elif isinstance(payload, dict) and "rows" in payload:
            rows = payload["rows"]
            bins = payload.get("bins")
        else:
            self.service.record_error(
                "bad_payload", detail="no 'row' or 'rows' key"
            )
            return (
                400,
                {
                    "error": "payload must carry 'row' or 'rows'",
                    "reason": "bad_payload",
                    "accepted": 0,
                },
                "application/json",
            )
        if not isinstance(rows, list):
            self.service.record_error(
                "bad_payload", detail="'rows' is not a list"
            )
            return (
                400,
                {
                    "error": "'rows' must be a list",
                    "reason": "bad_payload",
                    "accepted": 0,
                },
                "application/json",
            )
        if len(rows) > self.service.config.max_rows_per_request:
            self.service.record_error(
                "too_many_rows",
                detail=f"{len(rows)} rows in one request",
            )
            return (
                400,
                {
                    "error": (
                        f"{len(rows)} rows exceed the per-request cap of "
                        f"{self.service.config.max_rows_per_request}"
                    ),
                    "reason": "too_many_rows",
                    "accepted": 0,
                },
                "application/json",
            )
        if bins is not None and (
            not isinstance(bins, list) or len(bins) != len(rows)
        ):
            self.service.record_error(
                "bad_payload", detail="'bins' does not match 'rows'"
            )
            return (
                400,
                {
                    "error": "'bins' must be a list matching 'rows'",
                    "reason": "bad_payload",
                    "accepted": 0,
                },
                "application/json",
            )
        result = ingest_block(rows, bins)
        if result.rejected is not None:
            return (
                400,
                {
                    "error": str(result.rejected),
                    "reason": result.rejected.reason,
                    "accepted": result.accepted,
                    "alarms": result.alarms,
                },
                "application/json",
            )
        alarms = [outcome for outcome in result.outcomes if outcome.flag]
        return (
            200,
            {
                "accepted": result.accepted,
                "alarms": len(alarms),
                "alarm_bins": [outcome.bin for outcome in alarms],
                "results": [outcome.to_json() for outcome in result.outcomes],
            },
            "application/json",
        )

    def _route_metrics(self, body: bytes) -> tuple[int, object, str]:
        text = self.service.metrics_text()
        if self.tenants is not None:
            # Fleet counters are tenant-labeled and disjoint from the
            # engine's names, so the expositions concatenate cleanly.
            text = text + self.tenants.metrics_text()
        return (
            200,
            text,
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _route_health(self, body: bytes) -> tuple[int, object, str]:
        return 200, self.service.health(), "application/json"

    def _route_version(self, body: bytes) -> tuple[int, object, str]:
        return 200, self.service.version_info(), "application/json"

    def _route_refit(self, body: bytes) -> tuple[int, object, str]:
        wait = True
        if body:
            try:
                payload = self._parse_json(body)
            except _HTTPError as err:
                return (
                    err.status,
                    {"error": err.detail, "reason": err.reason},
                    "application/json",
                )
            if isinstance(payload, dict):
                wait = bool(payload.get("wait", True))
        if not wait:
            started = self.service.request_refit()
            return (
                202,
                {"refit": "started" if started else "already running"},
                "application/json",
            )
        try:
            version = self.service.refit()
        except ServiceError as err:
            return (
                500,
                {"error": str(err), "reason": "refit_failed"},
                "application/json",
            )
        return 200, {"refit": "done", **version.summary()}, "application/json"

    def _route_checkpoint(self, body: bytes) -> tuple[int, object, str]:
        path = None
        if body:
            try:
                payload = self._parse_json(body)
            except _HTTPError as err:
                return (
                    err.status,
                    {"error": err.detail, "reason": err.reason},
                    "application/json",
                )
            if isinstance(payload, dict):
                path = payload.get("path")
        try:
            written = self.service.checkpoint(path)
        except ServiceError as err:
            return (
                500,
                {"error": str(err), "reason": "checkpoint_failed"},
                "application/json",
            )
        return 200, {"checkpoint": "written", **written}, "application/json"

    def _route_shutdown(self, body: bytes) -> tuple[int, object, str]:
        return 200, {"status": "shutting down"}, "application/json"

    # ------------------------------------------------------------------
    async def _respond_safe(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: object,
        content_type: str = "application/json",
        close: bool = False,
    ) -> bool:
        """Write one response; False when the client vanished."""
        if isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            self.service.record_error(
                "client_disconnect", detail="connection dropped mid-response"
            )
            return False
        return not close


async def _serve_async(
    service: DetectionService, host: str, port: int, announce=None
) -> None:
    server = ServiceHTTPServer(service, host=host, port=port)
    bound_host, bound_port = await server.start()
    if announce is not None:
        announce(bound_host, bound_port)
    loop = asyncio.get_running_loop()
    try:
        import signal

        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, server.shutdown_event.set)
    except (NotImplementedError, RuntimeError):  # pragma: no cover
        pass  # platform without signal support; /shutdown still works
    await server.serve_until_shutdown()


def serve(
    service: DetectionService,
    host: str = "127.0.0.1",
    port: int = 8787,
    announce=None,
) -> None:
    """Run the daemon until ``POST /shutdown`` or SIGINT/SIGTERM.

    ``announce(host, port)`` fires once the socket is bound — the CLI
    prints the address, the smoke tests use it to rendezvous.
    """
    asyncio.run(_serve_async(service, host, port, announce=announce))
