"""Tests for repro.validation.reporting."""

import numpy as np

from repro.validation import render_table2, render_table3, render_ranked_anomalies
from repro.validation.experiments import ActualAnomalyRow, Fig6Series, SyntheticRow
from repro.validation.ground_truth import TrueAnomaly
from repro.validation.metrics import DiagnosisScore
from repro.validation.reporting import format_table


def make_score():
    return DiagnosisScore(
        detected=9,
        num_true=9,
        false_alarms=1,
        num_normal_bins=999,
        identified=9,
        num_detected_for_identification=9,
        quantification_errors=(0.156,),
    )


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["A", "Long header"], [["x", "y"], ["longcell", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_empty_rows(self):
        text = format_table(["A"], [])
        assert "A" in text


class TestRenderTable2:
    def test_contains_paper_style_cells(self):
        row = ActualAnomalyRow(
            validation_method="fourier",
            dataset_name="sprint-1",
            cutoff_bytes=2e7,
            confidence=0.999,
            score=make_score(),
        )
        text = render_table2([row])
        assert "Fourier" in text
        assert "sprint-1" in text
        assert "9/9" in text
        assert "1/999" in text
        assert "15.6%" in text


class TestRenderTable3:
    def test_contains_rates(self):
        row = SyntheticRow(
            dataset_name="sprint-1",
            label="Large",
            size_bytes=3e7,
            detection_rate=0.93,
            identification_rate=0.85,
            quantification_error=0.18,
        )
        text = render_table3([row])
        assert "93%" in text
        assert "85%" in text
        assert "18%" in text
        assert "Large (3.0e+07)" in text

    def test_nan_quantification_rendered_as_dash(self):
        row = SyntheticRow(
            dataset_name="x",
            label="Small",
            size_bytes=1e7,
            detection_rate=0.0,
            identification_rate=0.0,
            quantification_error=float("nan"),
        )
        assert "-" in render_table3([row])


class TestRenderRanked:
    def test_rows_rendered(self):
        series = Fig6Series(
            anomalies=[
                TrueAnomaly(10, 3, 3e7),
                TrueAnomaly(20, 5, 1e7),
            ],
            detected=np.array([True, False]),
            identified=np.array([True, False]),
            estimated_sizes=np.array([2.8e7, np.nan]),
        )
        text = render_ranked_anomalies(series)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "yes" in lines[2]
        assert "2.80e+07" in lines[2]
        assert lines[3].count("-") >= 2
