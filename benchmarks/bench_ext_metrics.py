"""Extension bench: alternative link metrics (§7.2).

The paper argues the subspace method applies to any ℓ₂-meaningful link
metric (flow counts, packet sizes).  This bench stages a small-packet
flood — a DDoS-like anomaly that adds many packets but few bytes — and
shows the metric choice decides visibility:

* byte counts: the flood stays below the detection boundary;
* packet counts: the flood is caught;
* average packet size: the flood depresses the metric on its path.
"""

import numpy as np

from repro.core import SPEDetector
from repro.traffic import inject_small_packet_flood

from conftest import write_result


def test_ext_alternative_metrics(benchmark, sprint1, results_dir):
    flow = sprint1.routing.od_index("lon", "mil")
    time_bin = 300
    extra_packets = 2e5  # 64-byte packets -> only 1.3e7 bytes

    def run():
        packet_links, avg_links = inject_small_packet_flood(
            sprint1.od_traffic,
            sprint1.routing,
            flow_index=flow,
            time_bin=time_bin,
            extra_packets=extra_packets,
            seed=4,
        )
        packet_detector = SPEDetector().fit(packet_links)
        packet_hit = bool(packet_detector.detect(packet_links).flags[time_bin])

        byte_vector = sprint1.link_traffic[time_bin] + (
            extra_packets * 64.0 * sprint1.routing.column(flow)
        )
        byte_detector = SPEDetector().fit(sprint1.link_traffic)
        byte_hit = bool(byte_detector.detect(byte_vector).flags[0])
        return packet_hit, byte_hit, packet_links, avg_links

    packet_hit, byte_hit, packet_links, avg_links = benchmark(run)

    link = sprint1.routing.links_of_flow(flow)[0]
    column = avg_links[:, sprint1.routing.link_index(link)]
    depression = (np.median(column) - column[time_bin]) / column.std()
    lines = [
        f"flood: {extra_packets:.0e} packets x 64 B on flow lon->mil "
        f"(= {extra_packets * 64:.2e} bytes, below the 2e7 knee)",
        f"byte-count detector fires:    {byte_hit}",
        f"packet-count detector fires:  {packet_hit}",
        f"avg-packet-size depression on {link}: {depression:.1f} sigma",
    ]
    write_result(results_dir, "ext_metrics", "\n".join(lines))

    assert packet_hit and not byte_hit
    assert depression > 3.0
