"""Shortest-path computation.

A deliberately self-contained Dijkstra implementation with *deterministic*
tie-breaking: among equal-cost paths the one with fewer hops wins, and
remaining ties fall to the lexicographically smallest node sequence.  The
determinism matters because the routing matrix — and therefore every
downstream measurement — must be reproducible run to run.

networkx is used in the test suite as an independent oracle, not here.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable

from repro.exceptions import RoutingError
from repro.topology.network import Network

__all__ = ["shortest_path", "all_shortest_paths", "path_links", "path_cost"]


def _adjacency(network: Network, exclude_links: frozenset[str]) -> dict[str, list[tuple[str, float]]]:
    """Map each PoP to its (neighbor, weight) pairs over usable links."""
    adjacency: dict[str, list[tuple[str, float]]] = {
        name: [] for name in network.pop_names
    }
    for link in network.inter_pop_links:
        if link.name in exclude_links:
            continue
        adjacency[link.source].append((link.target, link.weight))
    return adjacency


def shortest_path(
    network: Network,
    origin: str,
    destination: str,
    exclude_links: Iterable[str] = (),
) -> list[str]:
    """Return the deterministic shortest path as a list of PoP names.

    Parameters
    ----------
    network:
        The network to route over (only inter-PoP links are considered).
    origin, destination:
        PoP names.  Equal names yield the trivial path ``[origin]``.
    exclude_links:
        Canonical link names to treat as failed.

    Raises
    ------
    RoutingError
        If either endpoint is unknown or no path exists.
    """
    network.pop(origin)
    network.pop(destination)
    if origin == destination:
        return [origin]

    excluded = frozenset(exclude_links)
    adjacency = _adjacency(network, excluded)

    # Heap entries are (cost, hops, path); tuple comparison implements the
    # tie-breaking order documented above.
    heap: list[tuple[float, int, tuple[str, ...]]] = [(0.0, 0, (origin,))]
    best: dict[str, tuple[float, int, tuple[str, ...]]] = {}
    while heap:
        cost, hops, path = heapq.heappop(heap)
        node = path[-1]
        if node in best and best[node] <= (cost, hops, path):
            continue
        best[node] = (cost, hops, path)
        if node == destination:
            return list(path)
        for neighbor, weight in adjacency[node]:
            if neighbor in path:
                continue
            candidate = (cost + weight, hops + 1, path + (neighbor,))
            if neighbor not in best or candidate < best[neighbor]:
                heapq.heappush(heap, candidate)
    raise RoutingError(
        f"no path from {origin!r} to {destination!r}"
        + (f" with links {sorted(excluded)} excluded" if excluded else "")
    )


def all_shortest_paths(
    network: Network,
    origin: str,
    destination: str,
    exclude_links: Iterable[str] = (),
) -> list[list[str]]:
    """Return *all* minimum-cost paths, sorted lexicographically.

    Used by the ECMP layer; cost ties are not broken here.
    """
    network.pop(origin)
    network.pop(destination)
    if origin == destination:
        return [[origin]]

    excluded = frozenset(exclude_links)
    adjacency = _adjacency(network, excluded)

    # Dijkstra for distances from origin.
    distances: dict[str, float] = {origin: 0.0}
    heap: list[tuple[float, str]] = [(0.0, origin)]
    visited: set[str] = set()
    while heap:
        cost, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        for neighbor, weight in adjacency[node]:
            candidate = cost + weight
            if candidate < distances.get(neighbor, float("inf")) - 1e-12:
                distances[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    if destination not in distances:
        raise RoutingError(f"no path from {origin!r} to {destination!r}")

    # Enumerate paths along the shortest-path DAG by depth-first search.
    target_cost = distances[destination]
    paths: list[list[str]] = []

    def _extend(path: list[str], cost_so_far: float) -> None:
        node = path[-1]
        if node == destination:
            paths.append(list(path))
            return
        for neighbor, weight in adjacency[node]:
            remaining = distances.get(neighbor)
            if remaining is None:
                continue
            on_dag = abs(cost_so_far + weight - remaining) < 1e-12
            feasible = remaining <= target_cost + 1e-12
            if on_dag and feasible and neighbor not in path:
                path.append(neighbor)
                _extend(path, cost_so_far + weight)
                path.pop()

    _extend([origin], 0.0)
    paths = [p for p in paths if abs(path_cost(network, p) - target_cost) < 1e-9]
    return sorted(paths)


def path_links(network: Network, path: list[str]) -> list[str]:
    """Convert a PoP-name path to the canonical names of its links.

    A trivial single-PoP path maps to that PoP's intra-PoP link, matching
    the paper's treatment of same-PoP OD flows.
    """
    if not path:
        raise RoutingError("empty path")
    if len(path) == 1:
        return [network.intra_pop_link(path[0]).name]
    links = []
    for source, target in zip(path[:-1], path[1:]):
        links.append(network.link_between(source, target).name)
    return links


def path_cost(network: Network, path: list[str]) -> float:
    """Total routing weight along a PoP-name path (0 for a trivial path)."""
    if len(path) <= 1:
        return 0.0
    total = 0.0
    for source, target in zip(path[:-1], path[1:]):
        total += network.link_between(source, target).weight
    return total
