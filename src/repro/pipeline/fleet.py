"""Multi-tenant detector fleet: many versioned models, one scheduler.

The paper fits one network-wide model; the ROADMAP north star is
per-customer/per-zone models at fleet scale.  :class:`FleetManager`
owns ``n`` independent tenants — each a
:class:`~repro.service.lifecycle.ModelLifecycleManager` keyed by tenant
id — behind a single scheduler with three guarantees:

**Shared, isolated fits.**  (Re)fits for every tenant in a round are
dispatched as tasks on one shared
:class:`~repro.pipeline.supervision.SupervisedPool`, so ``n`` tenants
amortize the same worker processes instead of paying ``n`` pools.
Fault accounting is per tenant: each tenant resolves its own
``fault_policy`` and receives its own slice of the
:class:`~repro.pipeline.supervision.FaultReport`, and a tenant whose
fit is lost (worker crash, exhausted retries) simply keeps serving its
previous model version — every other tenant's fit lands untouched.
One tenant's crash never stalls another.

**Batched, bit-identical scoring.**  Tenant blocks that share a
``(t, m)`` shape are stacked and scored through a *single*
:func:`~repro.core.subspace.score_block_stacked` kernel call.  Because
the kernel is the batched form of the row-decomposable einsum route of
:func:`~repro.core.subspace.score_block`, the batched alarms are
bit-identical to scoring each tenant serially — batching is purely a
scheduling decision (the fleet's hypothesis suite and ``repro fleet
run`` pin this).

**Namespaced, atomic checkpoints.**  Every tenant checkpoints its
sufficient statistics under :func:`tenant_checkpoint_path` — a
collision-free per-tenant file inside a shared directory, written via
:func:`~repro._util.atomic_pickle_dump` — so any number of tenants
(and an always-on service) can checkpoint into one directory without
clobbering each other, and :meth:`FleetManager.restore` resumes every
tenant bit-identically after a fleet restart.
"""

from __future__ import annotations

import os
import time
import zlib
from collections import OrderedDict
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path
from urllib.parse import quote, unquote

import numpy as np

from repro._util import ensure_matrix
from repro.core.subspace import DEFAULT_CHUNK_ROWS, score_block_stacked
from repro.core.suffstats import DEFAULT_TILE_ROWS, SufficientStats
from repro.exceptions import FleetError
from repro.pipeline.sharded import TemporalCoordinator
from repro.pipeline.supervision import (
    FaultReport,
    SupervisedPool,
    resolve_policy,
)
from repro.service.lifecycle import ModelLifecycleManager

__all__ = [
    "FleetFitReport",
    "FleetManager",
    "TenantAlarms",
    "TenantFitOutcome",
    "run_fleet_check",
    "synthetic_tenant_traffic",
    "tenant_checkpoint_path",
]

#: File suffix of per-tenant checkpoints inside a fleet directory.
_CHECKPOINT_SUFFIX = ".ckpt"

#: LRU capacities of the scheduler caches.  The stack cache holds the
#: stacked model parameters of one tenant group per entry; the plan
#: cache holds one full dispatch plan (group membership + preallocated
#: input buffers) per distinct (tenant set, block shapes) call pattern.
_STACK_CACHE_ENTRIES = 32
_PLAN_CACHE_ENTRIES = 8


def tenant_checkpoint_path(root: str | Path, tenant_id: str) -> Path:
    """Collision-free checkpoint path for ``tenant_id`` under ``root``.

    Tenant ids are arbitrary strings; percent-encoding them (no safe
    characters) maps distinct ids to distinct filenames — ``"a/b"`` and
    ``"a%2Fb"`` cannot collide, and path separators never escape the
    ``tenants/`` namespace.  The encoding is reversible, so a restore
    can recover every tenant id from a directory listing alone.
    """
    tenant_id = _validate_tenant_id(tenant_id)
    encoded = quote(tenant_id, safe="")
    return Path(root) / "tenants" / f"{encoded}{_CHECKPOINT_SUFFIX}"


def _validate_tenant_id(tenant_id) -> str:
    if not isinstance(tenant_id, str) or not tenant_id:
        raise FleetError(
            f"tenant id must be a non-empty string, got {tenant_id!r}"
        )
    return tenant_id


def _fit_tenant_task(payload):
    """Pool task: fit one tenant's detector from its history snapshot.

    Module-level (picklable) and identical to the fit path
    :meth:`~repro.service.lifecycle.ModelLifecycleManager.fit_candidate`
    runs in-process — same coordinator, same statistics — so a pooled
    fit, an in-process fit, and a post-restore refit of the same
    history all produce the same detector bit for bit.
    """
    config, stats, blocks = payload
    coordinator = TemporalCoordinator(workers=1, **config)
    fit = coordinator.fit_from_stats(stats, lambda: iter(blocks))
    return fit.detector


@dataclass(frozen=True)
class TenantAlarms:
    """One tenant's alarms from one :meth:`FleetManager.score` call."""

    tenant: str
    spe: np.ndarray
    threshold: float
    flags: np.ndarray
    model_version: int

    @property
    def num_alarms(self) -> int:
        return int(np.count_nonzero(self.flags))


@dataclass(frozen=True)
class TenantFitOutcome:
    """How one tenant fared in one fleet fit round.

    ``status`` is ``"fitted"`` (a fresh model version was installed),
    or ``"lost"`` (the fit was permanently lost; the tenant keeps its
    previous version — ``version`` is then that surviving version, or
    ``None`` for a tenant that has never fitted).  ``report`` is this
    tenant's slice of the pool's fault account (reassignments are
    pool-global and not attributed).
    """

    tenant: str
    status: str
    version: int | None
    trained_rows: int
    fault_policy: str
    report: FaultReport
    error: str | None = None

    def to_json(self) -> dict:
        return {
            "tenant": self.tenant,
            "status": self.status,
            "version": self.version,
            "trained_rows": self.trained_rows,
            "fault_policy": self.fault_policy,
            "report": self.report.to_json(),
            "error": self.error,
        }


@dataclass(frozen=True)
class FleetFitReport:
    """Outcome of one :meth:`FleetManager.fit` round."""

    outcomes: tuple[TenantFitOutcome, ...]
    report: FaultReport
    workers: int
    pooled: bool
    seconds: float

    @property
    def clean(self) -> bool:
        return all(o.status == "fitted" for o in self.outcomes)

    @property
    def lost(self) -> tuple[str, ...]:
        return tuple(o.tenant for o in self.outcomes if o.status == "lost")

    def to_json(self) -> dict:
        return {
            "outcomes": [o.to_json() for o in self.outcomes],
            "report": self.report.to_json(),
            "workers": self.workers,
            "pooled": self.pooled,
            "seconds": self.seconds,
        }


class _TenantState:
    """One tenant's model, policy, and pending (pre-fit) history."""

    __slots__ = ("tenant_id", "fault_policy", "lifecycle", "pending",
                 "last_error")

    def __init__(self, tenant_id: str, fault_policy: str | None) -> None:
        self.tenant_id = tenant_id
        self.fault_policy = fault_policy
        self.lifecycle: ModelLifecycleManager | None = None
        self.pending: list[np.ndarray] = []
        self.last_error: str | None = None


class _PlanGroup:
    """One dispatch group of a precomputed score plan.

    A stacked group carries the cached parameter stacks plus a
    preallocated ``(g, t, m)`` input buffer the tenant blocks are
    copied into (no per-call allocation, same C layout ``np.stack``
    would produce — so the stacked kernel's bits are unchanged).  A
    serial group (singleton shape) pins the model/version directly.
    """

    __slots__ = ("members", "stacked", "dtype", "means", "projectors",
                 "thresholds", "threshold_list", "version_ids", "models",
                 "buffer")

    def __init__(self, *, members, stacked, dtype, means=None,
                 projectors=None, thresholds=None, threshold_list=(),
                 version_ids=(), models=None, buffer=None) -> None:
        self.members = members
        self.stacked = stacked
        self.dtype = dtype
        self.means = means
        self.projectors = projectors
        self.thresholds = thresholds
        self.threshold_list = threshold_list
        self.version_ids = version_ids
        self.models = models
        self.buffer = buffer


class _ScorePlan:
    """A full precomputed dispatch for one recurring score-call shape.

    Valid while the fleet's model epoch is unchanged — any
    :meth:`FleetManager.fit` install or tenant add bumps the epoch and
    retires every plan, which is exactly the "version change or tenant
    add/remove" invalidation contract.
    """

    __slots__ = ("epoch", "groups")

    def __init__(self, epoch: int, groups: tuple) -> None:
        self.epoch = epoch
        self.groups = groups


class FleetManager:
    """N independent tenant detectors behind one scheduler.

    Parameters
    ----------
    workers:
        Shared pool size for fit rounds (default: up to 4, capped by
        the host's CPU count and the number of tenants in the round).
        A resolved single worker with no fault plan fits in-process —
        the fitted models are bit-identical either way.
    confidence, threshold_sigma, normal_rank, min_normal_rank,
    max_normal_rank, tile_rows, dtype:
        Per-tenant model parameters (see
        :class:`~repro.service.lifecycle.ModelLifecycleManager`);
        applied to tenants as they are added.
    fault_policy:
        Fleet default for how a permanently lost fit is treated:
        ``"fail-fast"`` / ``"retry"`` surface the loss as a tenant
        error (and raise under ``fit(strict=True)``); ``"partial"``
        records it silently.  Overridable per tenant and per round.
        When every tenant in a round resolves to ``"fail-fast"`` the
        pool runs with zero retries, matching the sharded planes.
    task_deadline, max_retries, backoff_base, backoff_max, fault_seed,
    fault_plan:
        Shared-pool supervision knobs
        (:class:`~repro.pipeline.supervision.SupervisedPool`).
    checkpoint_dir:
        Default root for :meth:`checkpoint` / :meth:`restore`.
    chunk_rows:
        Scoring chunk height for both the batched and serial kernels.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        confidence: float = 0.999,
        threshold_sigma: float = 3.0,
        normal_rank: int | None = None,
        min_normal_rank: int = 1,
        max_normal_rank: int | None = None,
        tile_rows: int = DEFAULT_TILE_ROWS,
        dtype: np.dtype | type | str = np.float64,
        fault_policy: str = "fail-fast",
        task_deadline: float | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        fault_seed: int = 0,
        fault_plan=None,
        checkpoint_dir: str | Path | None = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> None:
        self.workers = workers
        self.confidence = confidence
        self.threshold_sigma = threshold_sigma
        self.normal_rank = normal_rank
        self.min_normal_rank = min_normal_rank
        self.max_normal_rank = max_normal_rank
        self.tile_rows = tile_rows
        self.dtype = np.dtype(dtype)
        self.fault_policy = resolve_policy(fault_policy, "fail-fast")
        self.task_deadline = task_deadline
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.fault_seed = fault_seed
        self.fault_plan = fault_plan
        self.checkpoint_dir = (
            None if checkpoint_dir is None else Path(checkpoint_dir)
        )
        self.chunk_rows = chunk_rows
        self._tenants: dict[str, _TenantState] = {}
        #: Scheduling account of the most recent :meth:`score` call:
        #: how many tenants rode a stacked kernel call vs. scored
        #: serially, and the per-group sizes (benchmarks read this).
        self.last_score_plan: dict = {}
        # Stacked model parameters per tenant group, keyed by member
        # ids + versions; LRU-evicted one entry at a time.
        self._stack_cache: OrderedDict[tuple, tuple] = OrderedDict()
        # Precomputed dispatch plans keyed by (tenant ids, block
        # shapes); valid while _model_epoch is unchanged.
        self._plan_cache: OrderedDict[tuple, _ScorePlan] = OrderedDict()
        # Bumped on any model install or tenant add — the only events
        # that can change what a score plan dispatches.
        self._model_epoch = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tenants)

    @property
    def tenants(self) -> tuple[str, ...]:
        """Registered tenant ids, in registration order."""
        return tuple(self._tenants)

    def _state(self, tenant_id: str) -> _TenantState:
        try:
            return self._tenants[tenant_id]
        except KeyError:
            raise FleetError(f"unknown tenant {tenant_id!r}") from None

    def lifecycle(self, tenant_id: str) -> ModelLifecycleManager:
        """The tenant's versioned model manager (fitted tenants only)."""
        state = self._state(tenant_id)
        if state.lifecycle is None:
            raise FleetError(f"tenant {tenant_id!r} has no fitted model yet")
        return state.lifecycle

    def add_tenant(
        self,
        tenant_id: str,
        warmup: np.ndarray | None = None,
        *,
        fault_policy: str | None = None,
    ) -> None:
        """Register a tenant, optionally with its warmup history.

        The warmup is folded into pending history; the model fits on
        the next :meth:`fit` round (fits are pooled, never eager).
        """
        tenant_id = _validate_tenant_id(tenant_id)
        if tenant_id in self._tenants:
            raise FleetError(f"tenant {tenant_id!r} is already registered")
        if fault_policy is not None:
            fault_policy = resolve_policy(fault_policy, self.fault_policy)
        state = _TenantState(tenant_id, fault_policy)
        self._tenants[tenant_id] = state
        self._model_epoch += 1
        if warmup is not None:
            self.ingest(tenant_id, warmup)

    def ingest(self, tenant_id: str, block: np.ndarray) -> None:
        """Fold new rows into the tenant's history (pass 1 of a refit)."""
        block = ensure_matrix(
            block, name="rows", error=FleetError, check_finite=False
        )
        state = self._state(tenant_id)
        if state.lifecycle is not None:
            state.lifecycle.append_rows(block)
        else:
            if state.pending and block.shape[1] != state.pending[0].shape[1]:
                raise FleetError(
                    f"tenant {tenant_id!r}: row width {block.shape[1]} != "
                    f"pending width {state.pending[0].shape[1]}"
                )
            state.pending.append(block)

    # ------------------------------------------------------------------
    def _tenant_config(self, state: _TenantState) -> dict:
        """The fit-knob dict a pool worker rebuilds a coordinator from.

        Taken from the tenant's own lifecycle when it has one (so a
        restored fleet refits with the checkpointed configuration, not
        the current fleet defaults), else from the fleet defaults.
        """
        lifecycle = state.lifecycle
        if lifecycle is not None:
            return {
                "confidence": lifecycle.confidence,
                "threshold_sigma": lifecycle.threshold_sigma,
                "normal_rank": lifecycle.requested_rank,
                "min_normal_rank": lifecycle.min_normal_rank,
                "max_normal_rank": lifecycle.max_normal_rank,
                "tile_rows": lifecycle.tile_rows,
                "dtype": lifecycle.dtype,
            }
        return {
            "confidence": self.confidence,
            "threshold_sigma": self.threshold_sigma,
            "normal_rank": self.normal_rank,
            "min_normal_rank": self.min_normal_rank,
            "max_normal_rank": self.max_normal_rank,
            "tile_rows": self.tile_rows,
            "dtype": self.dtype,
        }

    def _pending_snapshot(
        self, state: _TenantState
    ) -> tuple[SufficientStats, tuple[np.ndarray, ...], int]:
        stats: SufficientStats | None = None
        offset = 0
        for block in state.pending:
            chunk = SufficientStats.from_block(
                block, start_row=offset, tile_rows=self.tile_rows
            )
            stats = chunk if stats is None else stats.merge(chunk)
            offset += block.shape[0]
        if stats is None or offset < 2:
            raise FleetError(
                f"tenant {state.tenant_id!r} needs >= 2 warmup rows "
                f"before it can fit, has {offset}"
            )
        return stats, tuple(state.pending), offset

    def _resolve_workers(self, tasks: int) -> int:
        workers = self.workers
        if workers is None:
            workers = max(1, min(4, os.cpu_count() or 1))
        return max(1, min(int(workers), tasks))

    def fit(
        self,
        tenants: Sequence[str] | None = None,
        *,
        fault_policy: str | None = None,
        strict: bool = False,
    ) -> FleetFitReport:
        """(Re)fit tenants on the shared pool; install what survives.

        Every selected tenant's history is snapshotted, all fit tasks
        run on one :class:`~repro.pipeline.supervision.SupervisedPool`,
        and each surviving detector is installed atomically
        (bootstrap for first-time tenants, hot-swap
        :meth:`~repro.service.lifecycle.ModelLifecycleManager.activate`
        for refits).  A tenant whose task is permanently lost keeps its
        previous model version and is reported per its resolved fault
        policy; the other tenants are entirely unaffected.  With
        ``strict=True`` a loss under a ``fail-fast``/``retry`` policy
        raises :class:`~repro.exceptions.FleetError` — *after* every
        surviving fit has been installed.
        """
        started = time.perf_counter()
        order = list(tenants) if tenants is not None else list(self._tenants)
        states = [self._state(tenant_id) for tenant_id in order]
        if not states:
            raise FleetError("the fleet has no tenants to fit")

        payloads = []
        snapshots = []
        policies = []
        for state in states:
            if state.lifecycle is not None:
                snapshot = state.lifecycle.history_snapshot()
            else:
                snapshot = self._pending_snapshot(state)
            stats, blocks, rows = snapshot
            payloads.append((self._tenant_config(state), stats, blocks))
            snapshots.append(snapshot)
            policies.append(
                resolve_policy(
                    fault_policy,
                    state.fault_policy
                    if state.fault_policy is not None
                    else self.fault_policy,
                )
            )

        workers = self._resolve_workers(len(payloads))
        # fail-fast means "don't spend retries": when every tenant in
        # the round asks for it, the pool gets a zero-retry budget —
        # the same mapping the sharded coordinators use.
        retries = (
            0 if all(p == "fail-fast" for p in policies) else self.max_retries
        )
        pooled = workers > 1 or self.fault_plan is not None
        if pooled:
            with SupervisedPool(
                workers=workers,
                deadline=self.task_deadline,
                max_retries=retries,
                backoff_base=self.backoff_base,
                backoff_max=self.backoff_max,
                seed=self.fault_seed,
                fault_plan=self.fault_plan,
            ) as pool:
                run = pool.run(_fit_tenant_task, payloads, stage="fleet-fit")
            results, report = run.results, run.report
        else:
            # One worker, no faults to inject: same kernel in-process.
            results = [_fit_tenant_task(payload) for payload in payloads]
            report = FaultReport(tasks=len(payloads), attempts=len(payloads))

        outcomes = []
        for task, (state, policy) in enumerate(zip(states, policies)):
            detector = results[task]
            slice_report = _report_slice(report, task)
            if detector is None:
                state.last_error = (
                    f"fit lost after {slice_report.attempts} attempt(s) "
                    f"under policy {policy!r}"
                )
                outcomes.append(
                    TenantFitOutcome(
                        tenant=state.tenant_id,
                        status="lost",
                        version=(
                            state.lifecycle.current.version
                            if state.lifecycle is not None
                            else None
                        ),
                        trained_rows=(
                            state.lifecycle.current.trained_rows
                            if state.lifecycle is not None
                            else 0
                        ),
                        fault_policy=policy,
                        report=slice_report,
                        error=state.last_error,
                    )
                )
                continue
            stats, blocks, rows = snapshots[task]
            if state.lifecycle is None:
                state.lifecycle = ModelLifecycleManager.from_fitted(
                    detector, stats, blocks, rows,
                    **self._tenant_config(state),
                )
                state.pending = []
            else:
                state.lifecycle.activate(detector, rows)
            state.last_error = None
            version = state.lifecycle.current
            outcomes.append(
                TenantFitOutcome(
                    tenant=state.tenant_id,
                    status="fitted",
                    version=version.version,
                    trained_rows=version.trained_rows,
                    fault_policy=policy,
                    report=slice_report,
                )
            )

        # Any install changes what a cached score plan would dispatch.
        self._model_epoch += 1
        fit_report = FleetFitReport(
            outcomes=tuple(outcomes),
            report=report,
            workers=workers,
            pooled=pooled,
            seconds=time.perf_counter() - started,
        )
        if strict:
            fatal = [
                o.tenant
                for o in outcomes
                if o.status == "lost" and o.fault_policy != "partial"
            ]
            if fatal:
                raise FleetError(
                    f"fleet fit lost tenants {fatal} under a "
                    "loss-intolerant fault policy"
                )
        return fit_report

    # ------------------------------------------------------------------
    def score(
        self,
        blocks: Mapping[str, np.ndarray],
        *,
        batch: bool = True,
    ) -> dict[str, TenantAlarms]:
        """Score per-tenant blocks; batch same-shape tenants when allowed.

        With ``batch=True`` (the scheduler's default) tenants whose
        blocks share a ``(t, m)`` shape and scoring dtype are stacked
        into one :func:`~repro.core.subspace.score_block_stacked` call;
        the rest score serially.  ``batch=False`` forces the serial
        kernel for every tenant.  The two paths are bit-identical by
        the stacked kernel's contract, so the returned alarms never
        depend on the batching decision.

        Repeated batched calls with the same tenant set and block
        shapes ride a **precomputed dispatch plan**: group discovery,
        per-tenant state lookups, and cache-key construction happen
        once, and the stacked inputs land in preallocated buffers.  The
        plan is invalidated only by a model install
        (:meth:`fit`) or a tenant add — mutating a tenant's lifecycle
        behind the manager's back is outside the fast path's contract
        (call :meth:`invalidate_score_plans` after doing so).
        """
        if batch:
            key = self._plan_key(blocks)
            if key is not None:
                plan = self._plan_cache.get(key)
                if plan is not None and plan.epoch == self._model_epoch:
                    self._plan_cache.move_to_end(key)
                    return self._score_planned(plan, blocks)
        else:
            key = None
        return self._score_direct(blocks, batch=batch, plan_key=key)

    def invalidate_score_plans(self) -> None:
        """Retire every cached score plan (out-of-band model changes)."""
        self._model_epoch += 1

    def _plan_key(self, blocks: Mapping[str, np.ndarray]):
        """Cache key of a batched call, or None when not plannable.

        Single-tenant calls are never planned: there is nothing to
        stack, the validating path is already one state lookup, and a
        fleet cycling through tenants one at a time would otherwise
        churn the bounded plan cache with entries that are evicted
        before they can ever be reused.
        """
        if len(blocks) < 2:
            return None
        try:
            shapes = tuple(block.shape for block in blocks.values())
        except AttributeError:
            return None  # non-ndarray payloads take the validating path
        if any(len(shape) != 2 for shape in shapes):
            return None
        return (tuple(blocks), shapes)

    def _stack_params(
        self, members: list[str], prepared: dict, shape, dtype
    ) -> tuple:
        """Stacked means/projectors/thresholds of one tenant group.

        Model parameters change only on refit, so the stacks are cached
        per tenant group and invalidated by the member version numbers.
        Without the cache, re-stacking n (m, m) projectors on every
        call costs more than the per-tenant dispatch the batching is
        meant to remove.  Eviction is LRU, one entry at a time — a
        fleet with more than ``_STACK_CACHE_ENTRIES`` live groups
        cycles the coldest entry instead of thrashing the whole cache.
        """
        cache_key = (
            tuple(members),
            tuple(prepared[t][1].version for t in members),
            shape[1],
            dtype,
        )
        cached = self._stack_cache.get(cache_key)
        if cached is None:
            cached = (
                np.stack([prepared[t][2]._mean for t in members]),
                np.stack([prepared[t][2]._c_tilde for t in members]),
                np.asarray([prepared[t][1].threshold for t in members]),
            )
            while len(self._stack_cache) >= _STACK_CACHE_ENTRIES:
                self._stack_cache.popitem(last=False)
            self._stack_cache[cache_key] = cached
        else:
            self._stack_cache.move_to_end(cache_key)
        return cached

    def _score_planned(
        self, plan: _ScorePlan, blocks: Mapping[str, np.ndarray]
    ) -> dict[str, TenantAlarms]:
        """Execute a cached dispatch plan (the batched fast path).

        Per group: copy the tenant blocks into the plan's preallocated
        C-contiguous stack (the layout ``np.stack`` would produce, so
        the kernel's reduction order — and hence every output bit — is
        unchanged) and run one stacked kernel call.
        """
        alarms: dict[str, TenantAlarms] = {}
        account = {
            "batched_tenants": 0, "serial_tenants": 0, "groups": [],
            "planned": True,
        }
        for group in plan.groups:
            if group.stacked:
                buffer = group.buffer
                for i, tenant_id in enumerate(group.members):
                    np.copyto(buffer[i], blocks[tenant_id], casting="unsafe")
                result = score_block_stacked(
                    buffer,
                    group.means,
                    projectors=group.projectors,
                    thresholds=group.thresholds,
                    dtype=group.dtype,
                    chunk_rows=self.chunk_rows,
                )
                for i, tenant_id in enumerate(group.members):
                    alarms[tenant_id] = TenantAlarms(
                        tenant=tenant_id,
                        spe=result.spe[i],
                        threshold=group.threshold_list[i],
                        flags=result.flags[i],
                        model_version=group.version_ids[i],
                    )
                account["batched_tenants"] += len(group.members)
                account["groups"].append(
                    {"shape": list(buffer.shape[1:]),
                     "tenants": len(group.members), "mode": "stacked"}
                )
            else:
                tenant_id = group.members[0]
                threshold = group.threshold_list[0]
                result = group.models[0].score_block(
                    blocks[tenant_id],
                    threshold=threshold,
                    chunk_rows=self.chunk_rows,
                )
                alarms[tenant_id] = TenantAlarms(
                    tenant=tenant_id,
                    spe=result.spe,
                    threshold=threshold,
                    flags=result.flags,
                    model_version=group.version_ids[0],
                )
                account["serial_tenants"] += 1
                account["groups"].append(
                    {"shape": list(blocks[tenant_id].shape), "tenants": 1,
                     "mode": "serial"}
                )
        self.last_score_plan = account
        return alarms

    def _score_direct(
        self,
        blocks: Mapping[str, np.ndarray],
        *,
        batch: bool,
        plan_key=None,
    ) -> dict[str, TenantAlarms]:
        """The validating scoring path; builds a plan as a side effect."""
        order = [( _validate_tenant_id(t), b) for t, b in blocks.items()]
        prepared: dict[str, tuple] = {}
        groups: dict[tuple, list[str]] = {}
        for tenant_id, block in order:
            state = self._state(tenant_id)
            if state.lifecycle is None:
                raise FleetError(
                    f"tenant {tenant_id!r} has no fitted model yet"
                )
            block = ensure_matrix(
                block, name="measurements", error=FleetError,
                check_finite=False,
            )
            version = state.lifecycle.current
            model = version.detector.model
            if block.shape[1] != model.num_links:
                raise FleetError(
                    f"tenant {tenant_id!r}: block has {block.shape[1]} "
                    f"links, model expects {model.num_links}"
                )
            prepared[tenant_id] = (block, version, model)
            groups.setdefault(
                (block.shape, model.dtype), []
            ).append(tenant_id)

        alarms: dict[str, TenantAlarms] = {}
        plan = {
            "batched_tenants": 0, "serial_tenants": 0, "groups": [],
            "planned": False,
        }
        for (shape, dtype), members in groups.items():
            if batch and len(members) > 1:
                stacked = np.stack([prepared[t][0] for t in members])
                means, projectors, thresholds = self._stack_params(
                    members, prepared, shape, dtype
                )
                result = score_block_stacked(
                    stacked,
                    means,
                    projectors=projectors,
                    thresholds=thresholds,
                    dtype=dtype,
                    chunk_rows=self.chunk_rows,
                )
                for i, tenant_id in enumerate(members):
                    version = prepared[tenant_id][1]
                    alarms[tenant_id] = TenantAlarms(
                        tenant=tenant_id,
                        spe=result.spe[i],
                        threshold=float(version.threshold),
                        flags=result.flags[i],
                        model_version=version.version,
                    )
                plan["batched_tenants"] += len(members)
                plan["groups"].append(
                    {"shape": list(shape), "tenants": len(members),
                     "mode": "stacked"}
                )
            else:
                for tenant_id in members:
                    block, version, model = prepared[tenant_id]
                    result = model.score_block(
                        block,
                        threshold=float(version.threshold),
                        chunk_rows=self.chunk_rows,
                    )
                    alarms[tenant_id] = TenantAlarms(
                        tenant=tenant_id,
                        spe=result.spe,
                        threshold=float(version.threshold),
                        flags=result.flags,
                        model_version=version.version,
                    )
                plan["serial_tenants"] += len(members)
                plan["groups"].append(
                    {"shape": list(shape), "tenants": len(members),
                     "mode": "serial"}
                )
        self.last_score_plan = plan
        if plan_key is not None:
            self._store_plan(plan_key, groups, prepared)
        return alarms

    def _store_plan(
        self, key, groups: dict[tuple, list[str]], prepared: dict
    ) -> None:
        plan_groups = []
        for (shape, dtype), members in groups.items():
            if len(members) > 1:
                means, projectors, thresholds = self._stack_params(
                    members, prepared, shape, dtype
                )
                plan_groups.append(_PlanGroup(
                    members=tuple(members),
                    stacked=True,
                    dtype=dtype,
                    means=means,
                    projectors=projectors,
                    thresholds=thresholds,
                    threshold_list=tuple(
                        float(prepared[t][1].threshold) for t in members
                    ),
                    version_ids=tuple(
                        prepared[t][1].version for t in members
                    ),
                    buffer=np.empty((len(members),) + shape),
                ))
            else:
                tenant_id = members[0]
                plan_groups.append(_PlanGroup(
                    members=(tenant_id,),
                    stacked=False,
                    dtype=dtype,
                    threshold_list=(
                        float(prepared[tenant_id][1].threshold),
                    ),
                    version_ids=(prepared[tenant_id][1].version,),
                    models=(prepared[tenant_id][2],),
                ))
        while len(self._plan_cache) >= _PLAN_CACHE_ENTRIES:
            self._plan_cache.popitem(last=False)
        self._plan_cache[key] = _ScorePlan(
            epoch=self._model_epoch, groups=tuple(plan_groups)
        )

    # ------------------------------------------------------------------
    def checkpoint(self, root: str | Path | None = None) -> dict[str, dict]:
        """Checkpoint every fitted tenant under namespaced paths.

        Each tenant writes its own atomic file (see
        :func:`tenant_checkpoint_path`), so concurrent checkpoints —
        other tenants, an always-on service sharing the directory —
        never clobber each other.  Returns per-tenant version
        summaries; unfitted tenants are skipped.
        """
        root = self._checkpoint_root(root)
        summaries: dict[str, dict] = {}
        for tenant_id, state in self._tenants.items():
            if state.lifecycle is None:
                continue
            path = tenant_checkpoint_path(root, tenant_id)
            summaries[tenant_id] = state.lifecycle.checkpoint(
                path,
                extra={
                    "tenant": tenant_id,
                    "fault_policy": state.fault_policy,
                },
            )
        return summaries

    def _checkpoint_root(self, root: str | Path | None) -> Path:
        root = self.checkpoint_dir if root is None else Path(root)
        if root is None:
            raise FleetError(
                "no checkpoint directory: pass root= or set checkpoint_dir"
            )
        return root

    @classmethod
    def restore(
        cls, root: str | Path, **kwargs
    ) -> "FleetManager":
        """Rebuild a fleet from a checkpoint directory.

        Every ``tenants/*.ckpt`` file restores one tenant through
        :meth:`~repro.service.lifecycle.ModelLifecycleManager.restore`
        — the detector is refit from the checkpointed statistics, so
        each restored tenant scores bit-identically to the fleet that
        wrote the checkpoint.  ``kwargs`` configure the new manager's
        scheduler (workers, fault knobs); per-tenant model
        configuration and fault policies come from the checkpoints.
        """
        root = Path(root)
        tenant_dir = root / "tenants"
        if not tenant_dir.is_dir():
            raise FleetError(f"no fleet checkpoint directory at {tenant_dir}")
        manager = cls(checkpoint_dir=root, **kwargs)
        paths = sorted(tenant_dir.glob(f"*{_CHECKPOINT_SUFFIX}"))
        if not paths:
            raise FleetError(f"no tenant checkpoints under {tenant_dir}")
        for path in paths:
            tenant_id = unquote(path.name[: -len(_CHECKPOINT_SUFFIX)])
            lifecycle = ModelLifecycleManager.restore(path)
            policy = lifecycle.restored_extra.get("fault_policy")
            state = _TenantState(
                tenant_id,
                None if policy is None else resolve_policy(policy, "partial"),
            )
            state.lifecycle = lifecycle
            manager._tenants[tenant_id] = state
        return manager

    # ------------------------------------------------------------------
    def status(self) -> list[dict]:
        """JSON-able per-tenant summary (version, rows, policy, errors)."""
        rows = []
        for tenant_id, state in self._tenants.items():
            entry = {
                "tenant": tenant_id,
                "fault_policy": state.fault_policy or self.fault_policy,
                "fitted": state.lifecycle is not None,
                "last_error": state.last_error,
            }
            if state.lifecycle is not None:
                entry.update(state.lifecycle.current.summary())
                entry["rows"] = state.lifecycle.rows
            else:
                entry["rows"] = sum(b.shape[0] for b in state.pending)
            rows.append(entry)
        return rows


def _report_slice(report: FaultReport, task: int) -> FaultReport:
    """One task's share of a pool run's fault account.

    Faults and losses are attributed exactly; ``reassignments`` are a
    pool-global statistic and stay out of the slices.
    """
    faults = tuple(f for f in report.faults if f.task == task)
    lost = task in report.lost_tasks
    attempts = len(faults) + (0 if lost else 1)
    return FaultReport(
        tasks=1,
        attempts=attempts,
        timeouts=sum(1 for f in faults if f.kind == "timeout"),
        retries=max(0, attempts - 1),
        worker_deaths=sum(1 for f in faults if f.kind == "worker_death"),
        lost_tasks=(task,) if lost else (),
        faults=faults,
    )


# ----------------------------------------------------------------------
def synthetic_tenant_traffic(
    tenant_id: str,
    rows: int,
    links: int = 24,
    anomalies: int = 0,
    seed: int = 0,
    start_row: int = 0,
) -> np.ndarray:
    """Deterministic per-tenant traffic for harnesses and benchmarks.

    Low-rank diurnal-ish structure plus noise, keyed by a CRC of the
    tenant id (two tenants never share a stream; the same tenant always
    gets the same stream).  ``start_row`` continues the same tenant's
    diurnal phase, so a scoring block generated at
    ``start_row=warmup_rows`` follows the distribution a model fitted
    on the warmup expects; ``anomalies`` rows then receive a large
    additive spike on a few links so detection has something to flag.
    """
    if rows < 1 or links < 1:
        raise FleetError(f"rows and links must be >= 1, got {rows}x{links}")
    mix = zlib.crc32(f"tenant:{tenant_id}".encode()) ^ (seed & 0xFFFFFFFF)
    rng = np.random.default_rng(mix)
    rank = min(3, links)
    loadings = rng.normal(size=(rank, links))
    phases = rng.uniform(0, 2 * np.pi, size=rank)
    t = np.arange(start_row, start_row + rows)[:, None]
    factors = 10.0 * np.sin(
        2 * np.pi * t / 96.0 + phases
    ) + rng.normal(scale=2.0, size=(rows, rank))
    traffic = 500.0 + factors @ loadings
    traffic += rng.normal(scale=1.0, size=(rows, links))
    if anomalies:
        anomalies = min(int(anomalies), rows)
        spiked = rng.choice(rows, size=anomalies, replace=False)
        hit_links = rng.choice(links, size=max(1, links // 8), replace=False)
        traffic[np.ix_(spiked, hit_links)] += 200.0
    return traffic


def run_fleet_check(
    num_tenants: int = 6,
    warmup_rows: int = 240,
    score_rows: int = 96,
    links: int = 24,
    workers: int = 2,
    crash_tenant: int = 0,
    max_retries: int = 2,
    checkpoint_dir: str | Path | None = None,
    seed: int = 0,
) -> dict:
    """End-to-end fleet verification: parity, isolation, restore.

    The harness behind ``repro fleet run`` and the CI smoke step.
    Three gates, each a hard bitwise assertion:

    1. **Batched-vs-serial parity** — batched scoring of every tenant
       equals per-tenant serial scoring bit for bit.
    2. **Fault isolation** — an injected worker crash that permanently
       loses one tenant's fit leaves every *other* tenant's alarms
       bit-identical to the fault-free run.
    3. **Restore parity** — a checkpointed fleet restarts with every
       tenant scoring bit-identically (requires ``checkpoint_dir``).

    Returns a JSON-able report; ``report["ok"]`` is the overall gate.
    """
    from repro.pipeline.faults import FaultPlan, WorkerFault

    if num_tenants < 2:
        raise FleetError(
            f"the fleet check needs >= 2 tenants, got {num_tenants}"
        )
    tenant_ids = [f"tenant-{i:03d}" for i in range(num_tenants)]
    warmups = {
        t: synthetic_tenant_traffic(t, warmup_rows, links, seed=seed)
        for t in tenant_ids
    }
    score_blocks = {
        t: synthetic_tenant_traffic(
            t, score_rows, links, anomalies=4, seed=seed,
            start_row=warmup_rows,
        )
        for t in tenant_ids
    }

    def build(fault_plan=None, retries=max_retries):
        fleet = FleetManager(
            workers=workers,
            fault_policy="partial",
            max_retries=retries,
            fault_plan=fault_plan,
        )
        for tenant_id in tenant_ids:
            fleet.add_tenant(tenant_id, warmups[tenant_id])
        return fleet

    # Gate 1: fault-free fleet; batched vs serial parity.
    fleet = build()
    fit_report = fleet.fit()
    batched = fleet.score(score_blocks, batch=True)
    batched_plan = dict(fleet.last_score_plan)
    serial = fleet.score(score_blocks, batch=False)
    parity_ok = fit_report.clean and all(
        np.array_equal(batched[t].spe, serial[t].spe)
        and np.array_equal(batched[t].flags, serial[t].flags)
        for t in tenant_ids
    )

    # Gate 2: crash one tenant's fit on every attempt; its loss must
    # not move a bit in any other tenant's alarms.
    crash_tenant = int(crash_tenant) % num_tenants
    crashed_id = tenant_ids[crash_tenant]
    plan = FaultPlan(
        faults=(
            WorkerFault(
                task=crash_tenant,
                action="crash",
                stage="fleet-fit",
                attempts=max_retries + 1,
            ),
        )
    )
    faulted = build(fault_plan=plan)
    faulted_report = faulted.fit()
    survivors = [t for t in tenant_ids if t != crashed_id]
    crash_outcome = faulted_report.outcomes[crash_tenant]
    faulted_alarms = faulted.score(
        {t: score_blocks[t] for t in survivors}, batch=True
    )
    isolation_ok = (
        crash_outcome.status == "lost"
        and crash_outcome.report.worker_deaths >= 1
        and all(
            o.status == "fitted"
            for o in faulted_report.outcomes
            if o.tenant != crashed_id
        )
        and all(
            np.array_equal(faulted_alarms[t].spe, batched[t].spe)
            and np.array_equal(faulted_alarms[t].flags, batched[t].flags)
            for t in survivors
        )
    )

    # Gate 3: checkpoint, restore, rescore — every tenant bitwise.
    restore_ok = None
    if checkpoint_dir is not None:
        fleet.checkpoint(checkpoint_dir)
        restored = FleetManager.restore(checkpoint_dir, workers=workers)
        restored_alarms = restored.score(score_blocks, batch=True)
        restore_ok = sorted(restored.tenants) == sorted(tenant_ids) and all(
            np.array_equal(restored_alarms[t].spe, batched[t].spe)
            and np.array_equal(restored_alarms[t].flags, batched[t].flags)
            for t in tenant_ids
        )

    ok = parity_ok and isolation_ok and restore_ok is not False
    return {
        "ok": bool(ok),
        "parity_ok": bool(parity_ok),
        "isolation_ok": bool(isolation_ok),
        "restore_ok": restore_ok,
        "tenants": num_tenants,
        "workers": workers,
        "crashed_tenant": crashed_id,
        "crash_outcome": crash_outcome.to_json(),
        "score_plan": batched_plan,
        "alarms": {
            t: int(batched[t].num_alarms) for t in tenant_ids
        },
        "fit_report": fit_report.to_json(),
    }
