"""Coverage for negative (traffic-drop) anomalies.

The paper defines volume anomalies as sudden changes "positive or
negative" in an OD flow (§2); ground-truth generation plants some drops,
and the method must handle them symmetrically: SPE grows quadratically
with the displacement regardless of sign, and quantification reports
signed bytes.
"""

import numpy as np
import pytest

from repro.core import AnomalyDiagnoser, SPEDetector
from repro.validation import InjectionStudy


class TestNegativeGroundTruth:
    def test_presets_contain_drops(self, sprint1):
        drops = [e for e in sprint1.true_events if e.amplitude_bytes < 0]
        assert drops, "the Sprint-1 preset plants at least one traffic drop"

    def test_large_drop_diagnosed_with_sign(self, sprint1):
        diagnoser = AnomalyDiagnoser().fit(sprint1.link_traffic, sprint1.routing)
        drops = sorted(
            (e for e in sprint1.true_events if e.amplitude_bytes < 0),
            key=lambda e: e.amplitude_bytes,
        )
        diagnosed = {d.time_bin: d for d in diagnoser.diagnose(sprint1.link_traffic)}
        # At least the biggest detectable drop should be caught and carry
        # a negative estimate (drops above the knee).
        big_drops = [e for e in drops if abs(e.amplitude_bytes) >= 2e7]
        if not big_drops:
            pytest.skip("no above-knee drops in this world")
        for event in big_drops:
            if event.time_bin in diagnosed:
                diagnosis = diagnosed[event.time_bin]
                assert diagnosis.flow_index == event.flow_index
                assert diagnosis.estimated_bytes < 0


class TestSymmetricDetection:
    def test_spe_symmetric_in_sign(self, sprint1):
        """Injecting +b or -b at the same cell yields nearly identical
        SPE increments (exact up to the cross term with the residual)."""
        detector = SPEDetector().fit(sprint1.link_traffic)
        model = detector.model
        flow = sprint1.routing.od_index("par", "vie")
        column = sprint1.routing.column(flow)
        y = sprint1.link_traffic[300]
        base = float(model.spe(y))
        up = float(model.spe(y + 3e7 * column))
        down = float(model.spe(y - 3e7 * column))
        # Quadratic term dominates; the signed cross terms cancel in sum.
        assert (up - base) + (down - base) == pytest.approx(
            2 * (up - base), rel=0.5
        )
        assert down > detector.threshold

    def test_negative_injection_sweep(self, sprint1):
        """The vectorized driver accepts negative sizes; detection rates
        are comparable to the positive sweep."""
        study = InjectionStudy(sprint1)
        bins = np.arange(24)
        positive = study.run(3e7, time_bins=bins)
        negative = study.run(-3e7, time_bins=bins)
        assert negative.detection_rate == pytest.approx(
            positive.detection_rate, abs=0.15
        )
        # Identification still names the injected flow.
        assert negative.identification_rate > 0.8

    def test_negative_magnitude_recovered(self, sprint1):
        study = InjectionStudy(sprint1)
        result = study.run(-3e7, time_bins=np.arange(12))
        mask = result.detected & result.identified
        if not mask.any():
            pytest.skip("no detected+identified cells")
        estimates = result.estimated_bytes[mask]
        # Estimates carry the negative sign.
        assert np.median(estimates) < 0
