"""Tests for repro.traffic.workloads."""

import pytest

from repro.exceptions import TrafficError
from repro.traffic import WorkloadConfig, workload_for
from repro.traffic.workloads import WORKLOAD_NAMES


class TestPresets:
    def test_all_presets_available(self):
        assert set(WORKLOAD_NAMES) == {"sprint-1", "sprint-2", "abilene"}

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_presets_are_week_long(self, name):
        config = workload_for(name)
        assert config.num_bins == 1008  # paper Table 1: one week of 10-min bins
        assert config.bin_seconds == 600.0

    def test_sprint_uses_sprint_topology(self):
        assert workload_for("sprint-1").topology == "sprint-europe"
        assert workload_for("sprint-2").topology == "sprint-europe"

    def test_abilene_uses_abilene_topology(self):
        assert workload_for("abilene").topology == "abilene"

    def test_abilene_knee_scale(self):
        # The paper's Abilene knee is 8e7 vs Sprint's 2e7; the anomaly
        # ranges must reflect that scale difference.
        sprint = workload_for("sprint-1")
        abilene = workload_for("abilene")
        assert abilene.anomaly_size_range[1] > sprint.anomaly_size_range[1]

    def test_seeds_differ_between_weeks(self):
        assert workload_for("sprint-1").traffic_seed != workload_for("sprint-2").traffic_seed

    def test_unknown_name_rejected(self):
        with pytest.raises(TrafficError, match="unknown workload"):
            workload_for("sprint-99")


class TestWorkloadConfig:
    def test_with_overrides(self):
        config = workload_for("sprint-1").with_overrides(num_bins=288)
        assert config.num_bins == 288
        assert config.name == "sprint-1"
        # Original untouched (frozen dataclass).
        assert workload_for("sprint-1").num_bins == 1008

    def test_diurnal_profile_reflects_config(self):
        config = workload_for("sprint-1")
        profile = config.diurnal_profile()
        assert profile.peak_hour == config.diurnal_peak_hour
        assert profile.weekend_factor == config.weekend_factor

    def test_validation_num_bins(self):
        with pytest.raises(TrafficError):
            WorkloadConfig(name="x", topology="abilene", num_bins=1)

    def test_validation_topology(self):
        with pytest.raises(TrafficError):
            WorkloadConfig(name="x", topology="arpanet")

    def test_validation_size_range(self):
        with pytest.raises(TrafficError):
            WorkloadConfig(
                name="x", topology="abilene", anomaly_size_range=(5.0, 1.0)
            )
