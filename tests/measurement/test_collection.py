"""Tests for repro.measurement.collection (the full pipeline of paper §3)."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.measurement import MeasurementPipeline
from repro.traffic import ODFlowGenerator, TrafficMatrix


@pytest.fixture
def toy_traffic(toy_net):
    # Enough traffic that most links clear the paper's 1 Mbps "busy"
    # threshold (7.5e7 bytes per 10-minute bin).
    generator = ODFlowGenerator(toy_net, total_bytes_per_bin=2e9, seed=3)
    return generator.generate(36)


class TestPipeline:
    def test_output_shapes(self, toy_traffic, toy_routing):
        pipeline = MeasurementPipeline.sprint_style(toy_routing, seed=0)
        result = pipeline.run(toy_traffic)
        assert result.od_estimates.shape == toy_traffic.values.shape
        assert result.link_counts.shape == (
            toy_traffic.num_bins,
            toy_routing.num_links,
        )

    def test_link_counts_match_truth(self, toy_traffic, toy_routing):
        # Lossless 64-bit counters: SNMP-decoded counts equal Y = X A^T.
        pipeline = MeasurementPipeline.sprint_style(toy_routing, seed=0)
        result = pipeline.run(toy_traffic)
        assert np.allclose(result.link_counts, toy_traffic.link_loads(toy_routing))

    def test_sprint_style_agreement_within_paper_bounds(self, toy_traffic, toy_routing):
        """The paper found 1-5% agreement between adjusted flow counts and
        SNMP counts on links above 1 Mbps; the simulated pipeline must too."""
        pipeline = MeasurementPipeline.sprint_style(toy_routing, seed=0)
        result = pipeline.run(toy_traffic)
        busy = toy_traffic.link_loads(toy_routing).mean(axis=0) > 7.5e7
        assert busy.sum() >= 5  # the threshold actually selects links
        assert result.agreement_error[busy].max() < 0.06

    def test_abilene_style_noisier_but_unbiased(self, toy_traffic, toy_routing):
        pipeline = MeasurementPipeline.abilene_style(toy_routing, seed=0)
        result = pipeline.run(toy_traffic)
        total_true = toy_traffic.values.sum()
        total_est = result.od_estimates.sum()
        assert total_est == pytest.approx(total_true, rel=0.02)

    def test_random_sampling_noisier_at_equal_rate(self, toy_traffic, toy_routing):
        # Holding the rate fixed isolates the sampling discipline: the
        # binomial count noise of random sampling raises the agreement
        # error relative to periodic sampling.
        from repro.measurement import PeriodicSampler, RandomSampler

        periodic = MeasurementPipeline(
            toy_routing, sampler=PeriodicSampler(250), fine_factor=2, seed=0
        ).run(toy_traffic)
        random = MeasurementPipeline(
            toy_routing, sampler=RandomSampler(1 / 250), fine_factor=2, seed=0
        ).run(toy_traffic)
        assert random.agreement_error.mean() > periodic.agreement_error.mean()

    def test_fine_bin_seconds(self, toy_traffic, toy_routing):
        sprint = MeasurementPipeline.sprint_style(toy_routing, seed=0)
        result = sprint.run(toy_traffic)
        assert result.fine_bin_seconds == pytest.approx(300.0)  # 5 minutes

    def test_max_agreement_error_helper(self, toy_traffic, toy_routing):
        result = MeasurementPipeline.sprint_style(toy_routing, seed=0).run(toy_traffic)
        assert result.max_agreement_error() == pytest.approx(
            result.agreement_error.max()
        )

    def test_flow_count_mismatch_rejected(self, toy_routing):
        bad = TrafficMatrix(np.ones((4, 2)), [("a", "b"), ("b", "a")])
        pipeline = MeasurementPipeline.sprint_style(toy_routing)
        with pytest.raises(MeasurementError):
            pipeline.run(bad)

    def test_invalid_fine_factor(self, toy_routing):
        with pytest.raises(MeasurementError):
            MeasurementPipeline(toy_routing, fine_factor=0)
