"""Golden-file regression over the core scenario suite.

Each core-suite scenario pins its full diagnosis outcome — alarms,
thresholds, recall, identified flows, per-event recovery — as a
canonical JSON file under ``goldens/``.  Any behavioral drift in the
data layer, the subspace model, detection, identification or the
streaming fold shows up as a byte diff here.

Refresh after an *intentional* change with::

    PYTHONPATH=src python -m pytest tests/scenarios --update-goldens

and review the resulting diff like any other code change.  On an
unchanged tree the refresh is byte-identical (a test below locks that
in), so accidental reruns never dirty the working copy.
"""

from pathlib import Path

import pytest

from repro.scenarios import CORE_SUITE, ScenarioRunner, canonical_json

GOLDEN_DIR = Path(__file__).parent / "goldens"

SPEC_NAMES = [spec.name for spec in CORE_SUITE]


@pytest.mark.parametrize("name", SPEC_NAMES)
def test_scenario_outcome_matches_golden(name, core_report, golden_check):
    golden_check(
        GOLDEN_DIR / f"{name}.json", core_report.outcome(name).to_json()
    )


def test_suite_report_matches_golden(core_report, golden_check):
    golden_check(GOLDEN_DIR / "core-suite.json", core_report.to_json())


def test_every_family_has_a_golden(core_report):
    """Each taxonomy family exercised by the suite is pinned by at
    least one golden file."""
    from repro.scenarios import FAMILIES

    covered = {
        family
        for outcome in core_report
        for family in outcome.families
        if (GOLDEN_DIR / f"{outcome.name}.json").exists()
    }
    assert covered == set(FAMILIES)


def test_regeneration_is_byte_identical(core_report):
    """A second independent run serializes to the exact same bytes —
    the property that makes ``--update-goldens`` safe on an unchanged
    tree."""
    rerun = ScenarioRunner(confidence=core_report.confidence).run(
        CORE_SUITE, suite="core"
    )
    assert canonical_json(rerun.to_json()) == canonical_json(
        core_report.to_json()
    )


def test_goldens_are_canonical_on_disk(core_report):
    """Golden files store the canonical serialization (sorted keys,
    two-space indent, trailing LF) so refreshes never produce
    formatting-only diffs."""
    import json

    for name in SPEC_NAMES:
        path = GOLDEN_DIR / f"{name}.json"
        assert path.exists(), f"missing golden {path.name}"
        text = path.read_text()
        assert canonical_json(json.loads(text)) == text
