#!/usr/bin/env python3
"""Synthetic injection study (paper §6.3, Table 3, Figs. 7-9).

Injects spikes of controlled size into every OD flow at every timestep of
a day on the Sprint-1 dataset, then summarizes:

* detection / identification / quantification rates at the paper's
  "large" (3e7) and "small" (1.5e7) sizes;
* the histogram of per-flow detection rates (Fig. 7);
* the detection-rate timeseries over the day (Fig. 8);
* detection rate vs mean flow size (Fig. 9) with the §5.4 detectability
  explanation.

Run:  python examples/sprint_injection_study.py
"""

import numpy as np

from repro import build_dataset, detectability_thresholds
from repro.validation import InjectionStudy
from repro.validation.reporting import format_table


def ascii_histogram(values: np.ndarray, bins: int = 10, width: int = 40) -> str:
    counts, edges = np.histogram(values, bins=bins, range=(0.0, 1.0))
    peak = max(counts.max(), 1)
    lines = []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"  {lo:4.2f}-{hi:4.2f}  {count:4d}  {bar}")
    return "\n".join(lines)


def main() -> None:
    dataset = build_dataset("sprint-1")
    study = InjectionStudy(dataset, confidence=0.999)
    print(f"SPE threshold: {study.threshold:.3e}\n")

    rows = []
    results = {}
    for label, size in (("Large", 3.0e7), ("Small", 1.5e7)):
        result = study.run(size)  # all flows x first day (144 bins)
        results[label] = result
        rows.append(
            [
                label,
                f"{size:.1e}",
                f"{result.detection_rate * 100:.0f}%",
                f"{result.identification_rate * 100:.0f}%",
                f"{result.mean_quantification_error * 100:.0f}%",
            ]
        )
    print("Table 3 (Sprint rows):")
    print(
        format_table(
            ["Injection", "Size", "Detection", "Identification", "Quantification"],
            rows,
        )
    )

    large = results["Large"]
    print("\nFig. 7(a): histogram of per-flow detection rates (large spikes)")
    print(ascii_histogram(large.detection_rate_by_flow()))
    print("\nFig. 7(b): histogram of per-flow detection rates (small spikes)")
    print(ascii_histogram(results["Small"].detection_rate_by_flow()))

    by_time = large.detection_rate_by_time()
    print(
        f"\nFig. 8: detection rate over the day — mean "
        f"{by_time.mean():.2f}, std {by_time.std():.3f} (fairly constant)"
    )

    means = dataset.od_traffic.flow_means()
    rates = large.detection_rate_by_flow()
    corr = np.corrcoef(np.log10(means[means > 0]), rates[means > 0])[0, 1]
    print(
        f"\nFig. 9: corr(log10 mean flow size, detection rate) = {corr:.2f} "
        "(negative: big flows hide fixed-size anomalies)"
    )

    report = detectability_thresholds(
        study.detector.model, dataset.routing, study.threshold
    )
    hardest = report.hardest_flows(3)
    print("\n§5.4 detectability — hardest flows (largest byte thresholds):")
    for flow in hardest:
        origin, destination = dataset.routing.od_pairs[flow]
        print(
            f"  {origin}->{destination}: needs > {report.min_bytes[flow]:.2e} "
            f"bytes (alignment {report.residual_alignment[flow]:.3f}, "
            f"mean rate {means[flow]:.2e})"
        )


if __name__ == "__main__":
    main()
