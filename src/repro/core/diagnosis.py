"""The three-step diagnosis pipeline (detect → identify → quantify).

:class:`AnomalyDiagnoser` is the library's main entry point: fit it on a
week of link measurements plus the routing matrix, then call
:meth:`~AnomalyDiagnoser.diagnose` on any measurement block to obtain one
:class:`Diagnosis` per flagged timestep.

>>> from repro.datasets import build_dataset
>>> from repro.core import AnomalyDiagnoser
>>> ds = build_dataset("abilene")
>>> diagnoser = AnomalyDiagnoser().fit(ds.link_traffic, ds.routing)
>>> diagnoses = diagnoser.diagnose(ds.link_traffic)
>>> all(d.od_pair is not None for d in diagnoses)
True
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.detection import DetectionResult, SPEDetector
from repro.core.identification import identify_single_flow
from repro.core.quantification import quantify
from repro.exceptions import ModelError, NotFittedError
from repro.routing.routing_matrix import RoutingMatrix

__all__ = ["AnomalyDiagnoser", "Diagnosis"]


@dataclass(frozen=True)
class Diagnosis:
    """One diagnosed volume anomaly.

    Attributes
    ----------
    time_bin:
        Index of the flagged timestep within the diagnosed block.
    spe:
        The squared prediction error that triggered detection.
    threshold:
        The Q-statistic limit it exceeded.
    flow_index:
        Identified OD flow (column of the routing matrix).
    od_pair:
        The identified flow as ``(origin, destination)`` PoP names.
    estimated_bytes:
        Quantified anomaly size (signed; negative = traffic drop).
    magnitude:
        The raw anomaly magnitude ``f̂`` along the identified direction.
    """

    time_bin: int
    spe: float
    threshold: float
    flow_index: int
    od_pair: tuple[str, str]
    estimated_bytes: float
    magnitude: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        origin, destination = self.od_pair
        return (
            f"bin {self.time_bin}: flow {origin}->{destination}, "
            f"{self.estimated_bytes:+.3e} bytes (SPE {self.spe:.3e} > "
            f"{self.threshold:.3e})"
        )


class AnomalyDiagnoser:
    """Detect, identify, and quantify volume anomalies from link data.

    Parameters are forwarded to :class:`~repro.core.detection.SPEDetector`.
    """

    def __init__(
        self,
        confidence: float = 0.999,
        threshold_sigma: float = 3.0,
        normal_rank: int | None = None,
    ) -> None:
        self._detector = SPEDetector(
            confidence=confidence,
            threshold_sigma=threshold_sigma,
            normal_rank=normal_rank,
        )
        self._routing: RoutingMatrix | None = None
        self._directions: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(
        self, measurements: np.ndarray, routing: RoutingMatrix
    ) -> "AnomalyDiagnoser":
        """Fit the subspace model on training measurements.

        ``routing`` supplies the candidate anomaly set: one hypothesis per
        OD flow, with signature ``θ_i = A_i/‖A_i‖`` (§5.2).
        """
        measurements = np.asarray(measurements, dtype=np.float64)
        if measurements.ndim != 2:
            raise ModelError(
                f"measurements must be (t, m), got shape {measurements.shape}"
            )
        if measurements.shape[1] != routing.num_links:
            raise ModelError(
                f"measurements cover {measurements.shape[1]} links but the "
                f"routing matrix has {routing.num_links}"
            )
        self._detector.fit(measurements)
        self._routing = routing
        self._directions = routing.normalized_columns()
        return self

    def _require_fitted(self) -> RoutingMatrix:
        if self._routing is None:
            raise NotFittedError("AnomalyDiagnoser.fit must be called first")
        return self._routing

    @property
    def detector(self) -> SPEDetector:
        """The underlying detector (exposes SPE, threshold, subspaces)."""
        return self._detector

    @property
    def routing(self) -> RoutingMatrix:
        """The routing matrix supplying the candidate anomaly set."""
        return self._require_fitted()

    # ------------------------------------------------------------------
    def detect(
        self, measurements: np.ndarray, confidence: float | None = None
    ) -> DetectionResult:
        """Run only the detection step."""
        self._require_fitted()
        return self._detector.detect(measurements, confidence=confidence)

    def diagnose_timestep(self, measurement: np.ndarray, time_bin: int = 0) -> Diagnosis:
        """Identify and quantify at a single (already-flagged) timestep."""
        routing = self._require_fitted()
        measurement = np.asarray(measurement, dtype=np.float64)
        model = self._detector.model
        identification = identify_single_flow(model, self._directions, measurement)
        estimated = quantify(model, routing, measurement, identification)
        return Diagnosis(
            time_bin=time_bin,
            spe=float(model.spe(measurement)),
            threshold=self._detector.threshold,
            flow_index=identification.flow_index,
            od_pair=routing.od_pairs[identification.flow_index],
            estimated_bytes=estimated,
            magnitude=identification.magnitude,
        )

    def diagnose(
        self,
        measurements: np.ndarray,
        confidence: float | None = None,
    ) -> list[Diagnosis]:
        """Full three-step diagnosis of a measurement block.

        Returns one :class:`Diagnosis` per flagged timestep, in time
        order.  Identification is only attempted on detected timesteps,
        matching the paper's evaluation protocol (§6.2).
        """
        self._require_fitted()
        measurements = np.asarray(measurements, dtype=np.float64)
        if measurements.ndim == 1:
            measurements = measurements[None, :]
        detection = self.detect(measurements, confidence=confidence)
        diagnoses = []
        for time_bin in detection.anomalous_bins:
            diagnosis = self.diagnose_timestep(
                measurements[time_bin], time_bin=int(time_bin)
            )
            # Report the threshold actually used for this detection run.
            diagnoses.append(
                Diagnosis(
                    time_bin=diagnosis.time_bin,
                    spe=diagnosis.spe,
                    threshold=detection.threshold,
                    flow_index=diagnosis.flow_index,
                    od_pair=diagnosis.od_pair,
                    estimated_bytes=diagnosis.estimated_bytes,
                    magnitude=diagnosis.magnitude,
                )
            )
        return diagnoses
