"""Tests for the internal repro._util helpers."""

import numpy as np
import pytest

from repro._util import (
    as_float_array,
    as_matrix,
    as_vector,
    check_fraction,
    check_nonnegative,
    check_positive,
    check_probability,
    ensure_matrix,
    pairwise,
    require,
    rng_from,
    unit_norm,
)
from repro.exceptions import ModelError, ReproError, TopologyError


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ReproError, match="broken"):
            require(False, "broken")

    def test_custom_error_class(self):
        with pytest.raises(TopologyError):
            require(False, "broken", TopologyError)


class TestArrayConversions:
    def test_as_float_array_rejects_nan(self):
        with pytest.raises(ReproError):
            as_float_array([1.0, np.nan])

    def test_as_vector_rejects_matrix(self):
        with pytest.raises(ReproError):
            as_vector(np.ones((2, 2)))

    def test_as_matrix_rejects_vector(self):
        with pytest.raises(ReproError):
            as_matrix(np.ones(3))

    def test_round_trips(self):
        assert as_vector([1, 2, 3]).dtype == np.float64
        assert as_matrix([[1, 2]]).shape == (1, 2)


class TestEnsureMatrix:
    """The hot-path coercion: validates without cloning conforming input."""

    def test_conforming_array_is_never_copied(self):
        block = np.arange(12.0).reshape(3, 4)
        out = ensure_matrix(block)
        assert out is block  # asarray returns the selfsame object
        view = block[1:]
        assert np.shares_memory(ensure_matrix(view), block)

    def test_memmap_slices_stay_zero_copy(self, tmp_path):
        path = tmp_path / "block.npy"
        np.save(path, np.arange(40.0).reshape(10, 4))
        mapped = np.load(path, mmap_mode="r")
        out = ensure_matrix(mapped[2:7], check_finite=False)
        assert np.shares_memory(out, mapped)
        # The finiteness scan reads but does not clone either.
        assert np.shares_memory(ensure_matrix(mapped[2:7]), mapped)

    def test_nonconforming_input_converts(self):
        out = ensure_matrix([[1, 2], [3, 4]])
        assert out.dtype == np.float64 and out.shape == (2, 2)
        f32 = np.ones((2, 2), dtype=np.float32)
        assert not np.shares_memory(ensure_matrix(f32), f32)

    def test_shape_and_finiteness_guards(self):
        with pytest.raises(ReproError, match="2-dimensional"):
            ensure_matrix(np.ones(3))
        with pytest.raises(ReproError, match="finite"):
            ensure_matrix([[1.0, np.nan]])
        out = ensure_matrix([[1.0, np.inf]], check_finite=False)
        assert np.isinf(out[0, 1])
        with pytest.raises(ReproError, match="not numeric"):
            ensure_matrix([["a", "b"]])

    def test_error_class_and_name_thread_through(self):
        with pytest.raises(ModelError, match="window must be 2-dimensional"):
            ensure_matrix(np.ones(3), name="window", error=ModelError)

    def test_dtype_parameter(self):
        f32 = np.ones((2, 2), dtype=np.float32)
        assert ensure_matrix(f32, dtype=np.float32) is f32


class TestChecks:
    def test_check_positive(self):
        assert check_positive(2.5, "x") == 2.5
        for bad in (0.0, -1.0, float("inf")):
            with pytest.raises(ReproError):
                check_positive(bad, "x")

    def test_check_nonnegative(self):
        assert check_nonnegative(0.0, "x") == 0.0
        with pytest.raises(ReproError):
            check_nonnegative(-0.1, "x")

    def test_check_fraction(self):
        assert check_fraction(0.0, "x") == 0.0
        assert check_fraction(1.0, "x") == 1.0
        with pytest.raises(ReproError):
            check_fraction(1.1, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "x") == 0.5
        for bad in (0.0, 1.0):
            with pytest.raises(ReproError):
                check_probability(bad, "x")


class TestMisc:
    def test_rng_from_seed(self):
        a = rng_from(7).uniform()
        b = rng_from(7).uniform()
        assert a == b

    def test_rng_from_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert rng_from(rng) is rng

    def test_unit_norm(self):
        v = unit_norm([3.0, 4.0])
        assert np.allclose(v, [0.6, 0.8])

    def test_unit_norm_zero_vector_rejected(self):
        with pytest.raises(ReproError):
            unit_norm([0.0, 0.0])

    def test_pairwise(self):
        assert pairwise([1, 2, 3]) == [(1, 2), (2, 3)]
        assert pairwise([1]) == []
