"""Multi-tenant fleet: batched parity, fault isolation, restore.

The fleet's three load-bearing guarantees, each pinned bit-for-bit:

* stacked scoring of same-shape tenants equals per-tenant serial
  scoring exactly (deterministic cases plus a hypothesis property over
  random shapes, dtypes and chunkings);
* an injected worker crash that permanently loses one tenant's fit
  leaves every other tenant's model and alarms untouched;
* a fleet restored from tenant-namespaced checkpoints rescores every
  tenant bit-identically — including when a detection service shares
  the same checkpoint directory.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from urllib.parse import unquote

from repro.core.subspace import score_block, score_block_stacked
from repro.exceptions import FleetError, ModelError
from repro.pipeline.faults import FaultPlan, WorkerFault
from repro.pipeline.fleet import (
    FleetManager,
    run_fleet_check,
    synthetic_tenant_traffic,
    tenant_checkpoint_path,
)

LINKS = 12
WARMUP = 160
SCORE = 48


def make_fleet(num_tenants=3, **kwargs):
    kwargs.setdefault("workers", 1)
    fleet = FleetManager(**kwargs)
    for index in range(num_tenants):
        tenant_id = f"acme-{index:02d}"
        fleet.add_tenant(
            tenant_id,
            synthetic_tenant_traffic(tenant_id, WARMUP, links=LINKS),
        )
    return fleet


def score_blocks(fleet, anomalies=2):
    return {
        tenant_id: synthetic_tenant_traffic(
            tenant_id,
            SCORE,
            links=LINKS,
            anomalies=anomalies,
            start_row=WARMUP,
        )
        for tenant_id in fleet.tenants
    }


# ----------------------------------------------------------------------
# Stacked kernel: bit-identity against the serial kernel.


class TestStackedKernel:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_matches_serial_kernel_bitwise(self, dtype):
        rng = np.random.default_rng(7)
        n, t, m = 5, 37, 6
        measurements = rng.normal(size=(n, t, m)) * 40.0 + 300.0
        means = rng.normal(size=(n, m))
        raw = rng.normal(size=(n, m, m))
        projectors = np.einsum("nij,nkj->nik", raw, raw)
        thresholds = rng.uniform(1.0, 50.0, size=n)
        stacked = score_block_stacked(
            measurements,
            means,
            projectors=projectors,
            thresholds=thresholds,
            dtype=dtype,
        )
        for i in range(n):
            serial = score_block(
                measurements[i],
                means[i],
                projector=projectors[i],
                threshold=float(thresholds[i]),
                dtype=dtype,
            )
            assert np.array_equal(stacked.spe[i], serial.spe)
            assert np.array_equal(stacked.flags[i], serial.flags)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(2, 6),
        t=st.integers(1, 48),
        m=st.integers(1, 8),
        chunk_rows=st.integers(1, 64),
        dtype=st.sampled_from([np.float64, np.float32]),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_bit_identity_property(self, n, t, m, chunk_rows, dtype, seed):
        """Any tenant count, shape, chunking and dtype: same bits."""
        rng = np.random.default_rng(seed)
        measurements = rng.normal(size=(n, t, m)) * 100.0
        means = rng.normal(size=(n, m)) * 10.0
        raw = rng.normal(size=(n, m, m))
        projectors = np.einsum("nij,nkj->nik", raw, raw)
        thresholds = rng.uniform(0.0, 100.0, size=n)
        stacked = score_block_stacked(
            measurements,
            means,
            projectors=projectors,
            thresholds=thresholds,
            dtype=dtype,
            chunk_rows=chunk_rows,
        )
        for i in range(n):
            serial = score_block(
                measurements[i],
                means[i],
                projector=projectors[i],
                threshold=float(thresholds[i]),
                dtype=dtype,
                chunk_rows=chunk_rows,
            )
            assert np.array_equal(stacked.spe[i], serial.spe)
            assert np.array_equal(stacked.flags[i], serial.flags)

    def test_rejects_mismatched_shapes(self):
        measurements = np.zeros((2, 4, 3))
        means = np.zeros((3, 3))  # wrong tenant count
        projectors = np.zeros((2, 3, 3))
        with pytest.raises(ModelError):
            score_block_stacked(
                measurements, means, projectors=projectors
            )


# ----------------------------------------------------------------------
# Fleet scheduler: batched scoring equals serial scoring.


class TestFleetScoring:
    def test_batched_equals_serial_bitwise(self):
        fleet = make_fleet(4)
        assert fleet.fit(strict=True).clean
        blocks = score_blocks(fleet)
        batched = fleet.score(blocks, batch=True)
        assert fleet.last_score_plan["batched_tenants"] == 4
        serial = fleet.score(blocks, batch=False)
        assert fleet.last_score_plan["serial_tenants"] == 4
        for tenant_id in fleet.tenants:
            assert np.array_equal(
                batched[tenant_id].spe, serial[tenant_id].spe
            )
            assert np.array_equal(
                batched[tenant_id].flags, serial[tenant_id].flags
            )

    def test_stack_cache_serves_identical_bits(self):
        """The cached stacked parameters never change the scores."""
        fleet = make_fleet(3)
        fleet.fit(strict=True)
        blocks = score_blocks(fleet)
        cold = fleet.score(blocks, batch=True)
        assert fleet._stack_cache
        warm = fleet.score(blocks, batch=True)
        for tenant_id in fleet.tenants:
            assert np.array_equal(cold[tenant_id].spe, warm[tenant_id].spe)

    def test_mixed_shapes_split_into_groups(self):
        fleet = make_fleet(3)
        fleet.fit(strict=True)
        blocks = score_blocks(fleet)
        odd = fleet.tenants[0]
        blocks[odd] = blocks[odd][: SCORE // 2]
        alarms = fleet.score(blocks)
        plan = fleet.last_score_plan
        assert plan["batched_tenants"] == 2
        assert plan["serial_tenants"] == 1
        assert set(alarms) == set(fleet.tenants)

    def test_scoring_unfitted_tenant_raises(self):
        fleet = make_fleet(2)
        with pytest.raises(FleetError, match="no fitted model"):
            fleet.score(score_blocks(fleet))

    def test_pooled_fit_matches_in_process_fit(self):
        """Worker-process fits install bit-identical models."""
        serial = make_fleet(3, workers=1)
        serial.fit(strict=True)
        pooled = make_fleet(3, workers=2)
        report = pooled.fit(strict=True)
        assert report.pooled and report.workers == 2
        blocks = score_blocks(serial)
        a = serial.score(blocks)
        b = pooled.score(blocks)
        for tenant_id in serial.tenants:
            assert np.array_equal(a[tenant_id].spe, b[tenant_id].spe)


# ----------------------------------------------------------------------
# Scheduler fast path: precomputed plans and LRU caches.


class TestScorePlan:
    def test_second_call_rides_the_plan_bitwise(self):
        fleet = make_fleet(4)
        fleet.fit(strict=True)
        blocks = score_blocks(fleet)
        cold = fleet.score(blocks)
        assert fleet.last_score_plan["planned"] is False
        warm = fleet.score(blocks)
        assert fleet.last_score_plan["planned"] is True
        serial = fleet.score(blocks, batch=False)
        assert fleet.last_score_plan["planned"] is False
        for tenant_id in fleet.tenants:
            assert np.array_equal(cold[tenant_id].spe, warm[tenant_id].spe)
            assert np.array_equal(warm[tenant_id].spe, serial[tenant_id].spe)
            assert np.array_equal(
                warm[tenant_id].flags, serial[tenant_id].flags
            )
            assert (
                warm[tenant_id].model_version
                == cold[tenant_id].model_version
            )

    def test_plan_covers_mixed_stacked_and_serial_groups(self):
        fleet = make_fleet(3)
        fleet.fit(strict=True)
        blocks = score_blocks(fleet)
        odd = fleet.tenants[0]
        blocks[odd] = blocks[odd][: SCORE // 2]
        fleet.score(blocks)
        planned = fleet.score(blocks)
        account = fleet.last_score_plan
        assert account["planned"] is True
        assert account["batched_tenants"] == 2
        assert account["serial_tenants"] == 1
        direct = fleet.score(blocks, batch=False)
        for tenant_id in fleet.tenants:
            assert np.array_equal(
                planned[tenant_id].spe, direct[tenant_id].spe
            )

    def test_refit_retires_the_plan(self):
        """A model install must never serve stale plan parameters."""
        fleet = make_fleet(3)
        fleet.fit(strict=True)
        blocks = score_blocks(fleet)
        fleet.score(blocks)
        fleet.score(blocks)
        assert fleet.last_score_plan["planned"] is True
        fleet.ingest(
            fleet.tenants[0],
            synthetic_tenant_traffic(
                fleet.tenants[0], 64, links=LINKS, start_row=WARMUP
            ),
        )
        fleet.fit(tenants=[fleet.tenants[0]], strict=True)
        replanned = fleet.score(blocks)
        assert fleet.last_score_plan["planned"] is False
        direct = fleet.score(blocks, batch=False)
        for tenant_id in fleet.tenants:
            assert np.array_equal(
                replanned[tenant_id].spe, direct[tenant_id].spe
            )

    def test_add_tenant_retires_the_plan(self):
        fleet = make_fleet(3)
        fleet.fit(strict=True)
        blocks = score_blocks(fleet)
        fleet.score(blocks)
        fleet.score(blocks)
        assert fleet.last_score_plan["planned"] is True
        fleet.add_tenant(
            "acme-99", synthetic_tenant_traffic("acme-99", WARMUP, links=LINKS)
        )
        fleet.score(blocks)
        assert fleet.last_score_plan["planned"] is False

    def test_invalidate_score_plans_forces_replan(self):
        fleet = make_fleet(2)
        fleet.fit(strict=True)
        blocks = score_blocks(fleet)
        fleet.score(blocks)
        fleet.score(blocks)
        assert fleet.last_score_plan["planned"] is True
        fleet.invalidate_score_plans()
        fleet.score(blocks)
        assert fleet.last_score_plan["planned"] is False

    def test_non_ndarray_blocks_take_the_validating_path(self):
        fleet = make_fleet(2)
        fleet.fit(strict=True)
        arrays = score_blocks(fleet)
        lists = {t: b.tolist() for t, b in arrays.items()}
        from_lists = fleet.score(lists)
        assert fleet.last_score_plan["planned"] is False
        from_lists_again = fleet.score(lists)
        assert fleet.last_score_plan["planned"] is False
        from_arrays = fleet.score(arrays)
        for tenant_id in fleet.tenants:
            assert np.array_equal(
                from_lists[tenant_id].spe, from_arrays[tenant_id].spe
            )
            assert np.array_equal(
                from_lists_again[tenant_id].spe, from_arrays[tenant_id].spe
            )

    def test_stack_cache_evicts_exactly_one_lru_entry(self):
        """Regression: a 33rd group evicts one entry, not the cache."""
        from repro.pipeline.fleet import _STACK_CACHE_ENTRIES

        fleet = make_fleet(2)
        fleet.fit(strict=True)
        sentinel = object()
        for index in range(_STACK_CACHE_ENTRIES):
            fleet._stack_cache[("sentinel", index)] = sentinel
        assert len(fleet._stack_cache) == _STACK_CACHE_ENTRIES
        fleet.score(score_blocks(fleet))  # one real miss -> one insert
        assert len(fleet._stack_cache) == _STACK_CACHE_ENTRIES
        remaining = list(fleet._stack_cache)
        assert ("sentinel", 0) not in remaining  # only the oldest left
        for index in range(1, _STACK_CACHE_ENTRIES):
            assert ("sentinel", index) in remaining

    def test_stack_cache_hit_refreshes_recency(self):
        """A hit moves its entry to the MRU end, protecting it."""
        from repro.pipeline.fleet import _STACK_CACHE_ENTRIES

        fleet = make_fleet(2)
        fleet.fit(strict=True)
        blocks = score_blocks(fleet)
        fleet.score(blocks)  # real entry inserted (and plan built)
        (real_key,) = fleet._stack_cache
        sentinel = object()
        for index in range(_STACK_CACHE_ENTRIES - 1):
            fleet._stack_cache[("sentinel", index)] = sentinel
        assert list(fleet._stack_cache)[0] == real_key  # currently LRU
        fleet.invalidate_score_plans()  # force the stacking path again
        fleet.score(blocks)  # hit: real entry becomes most-recent
        assert list(fleet._stack_cache)[-1] == real_key


# ----------------------------------------------------------------------
# Fault isolation: one tenant's crash never touches another.


class TestFaultIsolation:
    def crash_plan(self, task, attempts):
        return FaultPlan(
            faults=(
                WorkerFault(
                    task=task,
                    action="crash",
                    stage="fleet-fit",
                    attempts=attempts,
                ),
            )
        )

    def test_survivors_bit_identical_under_crash(self):
        baseline = make_fleet(4, workers=2, fault_policy="partial")
        baseline.fit(strict=True)
        blocks = score_blocks(baseline)
        expected = baseline.score(blocks)

        crashed = make_fleet(
            4,
            workers=2,
            fault_policy="partial",
            max_retries=1,
            fault_plan=self.crash_plan(task=1, attempts=2),
        )
        report = crashed.fit()
        victim = crashed.tenants[1]
        assert report.lost == (victim,)
        outcome = {o.tenant: o for o in report.outcomes}[victim]
        assert outcome.status == "lost"
        assert outcome.report.worker_deaths >= 1

        survivors = {t: blocks[t] for t in crashed.tenants if t != victim}
        alarms = crashed.score(survivors)
        for tenant_id in survivors:
            assert np.array_equal(
                alarms[tenant_id].spe, expected[tenant_id].spe
            )
            assert np.array_equal(
                alarms[tenant_id].flags, expected[tenant_id].flags
            )

    def test_crash_with_retry_budget_recovers(self):
        fleet = make_fleet(
            3,
            workers=2,
            max_retries=2,
            fault_policy="retry",
            fault_plan=self.crash_plan(task=0, attempts=1),
        )
        report = fleet.fit(strict=True)
        assert report.clean
        assert report.report.worker_deaths >= 1

    def test_lost_tenant_keeps_previous_version(self):
        fleet = make_fleet(3, workers=1, fault_policy="partial")
        fleet.fit(strict=True)
        victim = fleet.tenants[0]
        before = fleet.lifecycle(victim).current

        fleet.fault_plan = self.crash_plan(task=0, attempts=3)
        fleet.max_retries = 1
        for tenant_id in fleet.tenants:
            fleet.ingest(
                tenant_id,
                synthetic_tenant_traffic(
                    tenant_id, 32, links=LINKS, start_row=WARMUP
                ),
            )
        report = fleet.fit()
        assert report.lost == (victim,)
        assert fleet.lifecycle(victim).current is before
        refreshed = [
            o.tenant for o in report.outcomes if o.status == "fitted"
        ]
        for tenant_id in refreshed:
            assert fleet.lifecycle(tenant_id).current.version == 2

    def test_strict_raises_after_installing_survivors(self):
        fleet = make_fleet(
            3,
            workers=2,
            fault_policy="fail-fast",
            fault_plan=self.crash_plan(task=2, attempts=10),
        )
        with pytest.raises(FleetError, match="lost tenants"):
            fleet.fit(strict=True)
        # The crash was tenant 2's problem alone: the others came up.
        for tenant_id in fleet.tenants[:2]:
            assert fleet.lifecycle(tenant_id).current.version == 1

    def test_partial_policy_never_raises_strict(self):
        fleet = make_fleet(
            3,
            workers=2,
            fault_policy="partial",
            max_retries=0,
            fault_plan=self.crash_plan(task=0, attempts=5),
        )
        report = fleet.fit(strict=True)
        assert len(report.lost) == 1


# ----------------------------------------------------------------------
# Checkpoints: tenant-namespaced paths and bitwise restores.


class TestCheckpointPaths:
    @pytest.mark.parametrize(
        "tenant_id",
        ["plain", "umbrella/eu", "a b c", "..", "ten%ant", "ünïcode"],
    )
    def test_roundtrip_and_containment(self, tmp_path, tenant_id):
        path = tenant_checkpoint_path(tmp_path, tenant_id)
        assert path.parent == tmp_path / "tenants"
        assert unquote(path.name[: -len(".ckpt")]) == tenant_id

    def test_distinct_tenants_never_collide(self, tmp_path):
        ids = ["a/b", "a%2Fb", "a b", "a+b", "a", "b", "a.b", "a..b"]
        paths = {tenant_checkpoint_path(tmp_path, t) for t in ids}
        assert len(paths) == len(ids)

    def test_rejects_non_string_ids(self, tmp_path):
        with pytest.raises(FleetError):
            tenant_checkpoint_path(tmp_path, "")
        with pytest.raises(FleetError):
            tenant_checkpoint_path(tmp_path, 7)


class TestFleetRestore:
    def test_restore_rescores_bitwise(self, tmp_path):
        fleet = make_fleet(3, checkpoint_dir=tmp_path)
        fleet.fit(strict=True)
        blocks = score_blocks(fleet)
        expected = fleet.score(blocks)
        summaries = fleet.checkpoint()
        assert set(summaries) == set(fleet.tenants)

        restored = FleetManager.restore(tmp_path)
        assert restored.tenants == fleet.tenants
        alarms = restored.score(blocks)
        for tenant_id in fleet.tenants:
            assert np.array_equal(
                alarms[tenant_id].spe, expected[tenant_id].spe
            )
            assert np.array_equal(
                alarms[tenant_id].flags, expected[tenant_id].flags
            )
            assert (
                restored.lifecycle(tenant_id).current.threshold
                == fleet.lifecycle(tenant_id).current.threshold
            )

    def test_restore_keeps_per_tenant_fault_policy(self, tmp_path):
        fleet = make_fleet(2, checkpoint_dir=tmp_path)
        fleet.add_tenant(
            "fragile",
            synthetic_tenant_traffic("fragile", WARMUP, links=LINKS),
            fault_policy="partial",
        )
        fleet.fit(strict=True)
        fleet.checkpoint()
        restored = FleetManager.restore(tmp_path)
        assert restored._state("fragile").fault_policy == "partial"
        assert restored._state(fleet.tenants[0]).fault_policy is None

    def test_restored_fleet_refits_and_scores(self, tmp_path):
        fleet = make_fleet(2, checkpoint_dir=tmp_path)
        fleet.fit(strict=True)
        fleet.checkpoint()
        restored = FleetManager.restore(tmp_path)
        for tenant_id in restored.tenants:
            restored.ingest(
                tenant_id,
                synthetic_tenant_traffic(
                    tenant_id, 64, links=LINKS, start_row=WARMUP
                ),
            )
        report = restored.fit(strict=True)
        assert report.clean
        for tenant_id in restored.tenants:
            assert restored.lifecycle(tenant_id).current.version == 2

    def test_restore_empty_directory_raises(self, tmp_path):
        with pytest.raises(FleetError, match="no fleet checkpoint"):
            FleetManager.restore(tmp_path)


# ----------------------------------------------------------------------
# Guardrails and the end-to-end harness.


class TestGuardrails:
    def test_duplicate_tenant_rejected(self):
        fleet = FleetManager(workers=1)
        fleet.add_tenant("dup")
        with pytest.raises(FleetError, match="already registered"):
            fleet.add_tenant("dup")

    def test_unknown_tenant_rejected(self):
        fleet = FleetManager(workers=1)
        with pytest.raises(FleetError, match="unknown tenant"):
            fleet.ingest("ghost", np.zeros((4, 3)))

    def test_fit_without_tenants_raises(self):
        with pytest.raises(FleetError, match="no tenants"):
            FleetManager(workers=1).fit()

    def test_too_few_warmup_rows_raises(self):
        fleet = FleetManager(workers=1)
        fleet.add_tenant("thin", np.ones((1, 4)))
        with pytest.raises(FleetError, match=">= 2 warmup rows"):
            fleet.fit()

    def test_status_reports_every_tenant(self):
        fleet = make_fleet(2)
        fleet.fit(strict=True)
        fleet.add_tenant("pending-only", np.ones((4, LINKS)))
        rows = {entry["tenant"]: entry for entry in fleet.status()}
        assert rows["acme-00"]["fitted"] is True
        assert rows["pending-only"]["fitted"] is False
        assert rows["pending-only"]["rows"] == 4


class TestRunFleetCheck:
    def test_all_gates_pass(self, tmp_path):
        report = run_fleet_check(
            num_tenants=3,
            warmup_rows=120,
            score_rows=32,
            links=10,
            workers=2,
            checkpoint_dir=tmp_path,
        )
        assert report["ok"]
        assert report["parity_ok"]
        assert report["isolation_ok"]
        assert report["restore_ok"]
        assert report["crash_outcome"]["status"] == "lost"

    def test_rejects_single_tenant(self):
        with pytest.raises(FleetError, match=">= 2 tenants"):
            run_fleet_check(num_tenants=1)
