"""Synthetic dataset builders.

:func:`build_dataset` is the main entry point of the data layer: it takes
a preset name (``"sprint-1"``, ``"sprint-2"``, ``"abilene"``) or a custom
:class:`~repro.traffic.workloads.WorkloadConfig` and assembles the full
world — topology, SPF routing, one week of OD traffic, injected
ground-truth anomalies, and the link measurement matrix.
"""

from __future__ import annotations


from repro.datasets.dataset import Dataset
from repro.exceptions import DatasetError
from repro.routing.protocol import SPFRouting
from repro.routing.routing_matrix import build_routing_matrix
from repro.topology.library import abilene, sprint_europe
from repro.topology.network import Network
from repro.topology.validation import check_network
from repro.traffic.anomalies import inject_anomalies, make_anomaly_events
from repro.traffic.noise import make_noise_model
from repro.traffic.od_flows import ODFlowGenerator
from repro.traffic.workloads import WorkloadConfig, workload_for

__all__ = ["build_dataset", "dataset_from_config"]


def build_dataset(name: str, ecmp: bool = False) -> Dataset:
    """Build one of the paper's three evaluation datasets by preset name.

    The result is fully deterministic: presets pin every seed.

    >>> ds = build_dataset("abilene")
    >>> (ds.num_bins, ds.num_links, ds.num_flows)
    (1008, 41, 121)
    """
    return dataset_from_config(workload_for(name), ecmp=ecmp)


def dataset_from_config(
    config: WorkloadConfig,
    network: Network | None = None,
    ecmp: bool = False,
) -> Dataset:
    """Build a dataset from an explicit workload configuration.

    Parameters
    ----------
    config:
        Full generator parameterization (see
        :class:`~repro.traffic.workloads.WorkloadConfig`).
    network:
        Override the topology named by ``config.topology`` (ablations use
        this to re-run a workload on a different graph).
    ecmp:
        Route with equal-cost multipath splitting instead of the default
        deterministic single-path SPF.
    """
    if network is None:
        network = _topology_for(config.topology)
    check_network(network, require_connected=True, require_intra_pop=True)

    table = SPFRouting(network, ecmp=ecmp).compute()
    routing = build_routing_matrix(network, table)

    noise = make_noise_model(
        config.noise_kind,
        relative_std=config.noise_relative,
        exponent=config.noise_exponent,
        floor=config.noise_floor,
    )
    generator = ODFlowGenerator(
        network,
        total_bytes_per_bin=config.total_bytes_per_bin,
        num_patterns=config.num_patterns,
        diurnal_strength=config.diurnal_strength,
        diurnal_profile=config.diurnal_profile(),
        noise=noise,
        gravity_jitter=config.gravity_jitter,
        self_traffic_factor=config.self_traffic_factor,
        pattern_mixing=config.pattern_mixing,
        seed=config.traffic_seed,
    )
    clean = generator.generate(config.num_bins, bin_seconds=config.bin_seconds)

    events = make_anomaly_events(
        num_events=config.num_anomalies,
        num_bins=config.num_bins,
        num_flows=clean.num_flows,
        size_range=config.anomaly_size_range,
        seed=config.anomaly_seed,
        pareto_shape=config.anomaly_pareto_shape,
        negative_fraction=config.anomaly_negative_fraction,
    )
    traffic, effective_events = inject_anomalies(clean, events)

    link_traffic = traffic.link_loads(routing)
    return Dataset(
        name=config.name,
        network=network,
        routing=routing,
        od_traffic=traffic,
        link_traffic=link_traffic,
        true_events=tuple(effective_events),
        config=config,
    )


def _topology_for(name: str) -> Network:
    if name == "abilene":
        return abilene()
    if name == "sprint-europe":
        return sprint_europe()
    raise DatasetError(f"unknown topology: {name!r}")
