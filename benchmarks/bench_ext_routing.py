"""Extension bench: routing-anomaly diagnosis (§9 ongoing work).

Fails every failable Abilene edge in turn, replays one traffic bin
through the post-failure routing, and measures how often the identifier
(a) detects the event and (b) names the correct edge — while plain
volume anomalies keep being classified as volume.
"""

import numpy as np

from repro.core import SPEDetector
from repro.core.routing_anomalies import RoutingAnomalyIdentifier
from repro.routing import apply_events

from conftest import write_result


def test_ext_routing_anomaly_sweep(benchmark, abilene_ds, results_dir):
    detector = SPEDetector().fit(abilene_ds.link_traffic)
    identifier = RoutingAnomalyIdentifier(
        abilene_ds.network, abilene_ds.routing, detector.model
    )

    def sweep():
        detected = 0
        correct_edge = 0
        total = 0
        for hypothesis in identifier.hypotheses:
            after = apply_events(abilene_ds.network, [hypothesis.failure])
            time_bin = 200 + 17 * total  # spread over the trace
            y = after.link_loads(abilene_ds.od_traffic.values[time_bin])
            total += 1
            if float(detector.model.spe(y)) > detector.threshold:
                detected += 1
            diagnosis = identifier.identify(y)
            if diagnosis.kind == "routing" and {
                diagnosis.failure.source,
                diagnosis.failure.target,
            } == {hypothesis.failure.source, hypothesis.failure.target}:
                correct_edge += 1
        return detected, correct_edge, total

    detected, correct_edge, total = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )

    # Control: volume anomalies stay classified as volume.
    rng = np.random.default_rng(3)
    volume_correct = 0
    volume_total = 10
    for _ in range(volume_total):
        flow = int(rng.integers(0, abilene_ds.num_flows))
        time_bin = int(rng.integers(0, abilene_ds.num_bins))
        y = abilene_ds.link_traffic[time_bin] + 2e8 * abilene_ds.routing.column(flow)
        diagnosis = identifier.identify(y)
        if diagnosis.kind == "volume" and diagnosis.flow_index == flow:
            volume_correct += 1

    text = "\n".join(
        [
            f"candidate edges: {total}",
            f"failures detected by SPE: {detected}/{total}",
            f"failed edge correctly named: {correct_edge}/{total}",
            f"volume-anomaly controls kept as volume: "
            f"{volume_correct}/{volume_total}",
        ]
    )
    write_result(results_dir, "ext_routing", text)

    assert detected >= total * 0.9
    assert correct_edge >= total * 0.7
    assert volume_correct >= volume_total * 0.8
