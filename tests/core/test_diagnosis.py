"""Tests for repro.core.diagnosis (the detect->identify->quantify pipeline)."""

import numpy as np
import pytest

from repro.core import AnomalyDiagnoser
from repro.exceptions import ModelError, NotFittedError


@pytest.fixture(scope="module")
def diagnoser(request):
    sprint1 = request.getfixturevalue("sprint1")
    return AnomalyDiagnoser().fit(sprint1.link_traffic, sprint1.routing)


class TestFit:
    def test_not_fitted_raises(self, sprint1):
        with pytest.raises(NotFittedError):
            AnomalyDiagnoser().diagnose(sprint1.link_traffic)

    def test_dimension_mismatch_rejected(self, sprint1, abilene_ds):
        with pytest.raises(ModelError):
            AnomalyDiagnoser().fit(sprint1.link_traffic, abilene_ds.routing)

    def test_exposes_detector_and_routing(self, diagnoser, sprint1):
        assert diagnoser.detector.threshold > 0
        assert diagnoser.routing is sprint1.routing


class TestDiagnose:
    def test_diagnoses_at_flagged_bins_only(self, diagnoser, sprint1):
        detection = diagnoser.detect(sprint1.link_traffic)
        diagnoses = diagnoser.diagnose(sprint1.link_traffic)
        assert [d.time_bin for d in diagnoses] == detection.anomalous_bins.tolist()

    def test_diagnosis_fields_consistent(self, diagnoser, sprint1):
        for diagnosis in diagnoser.diagnose(sprint1.link_traffic):
            assert diagnosis.spe > diagnosis.threshold
            assert diagnosis.od_pair == sprint1.routing.od_pairs[diagnosis.flow_index]
            assert np.isfinite(diagnosis.estimated_bytes)

    def test_finds_largest_true_events(self, diagnoser, sprint1):
        """Top ground-truth anomalies must be diagnosed with the right
        flow and a size in the right ballpark."""
        diagnoses = {d.time_bin: d for d in diagnoser.diagnose(sprint1.link_traffic)}
        top_events = sorted(
            sprint1.true_events, key=lambda e: -abs(e.amplitude_bytes)
        )[:5]
        for event in top_events:
            assert event.time_bin in diagnoses
            diagnosis = diagnoses[event.time_bin]
            assert diagnosis.flow_index == event.flow_index
            assert abs(diagnosis.estimated_bytes) == pytest.approx(
                abs(event.amplitude_bytes), rel=0.5
            )

    def test_single_timestep_diagnosis(self, diagnoser, sprint1):
        flow = sprint1.routing.od_index("ams", "mad")
        y = sprint1.link_traffic[100].copy() + 6e7 * sprint1.routing.column(flow)
        diagnosis = diagnoser.diagnose_timestep(y, time_bin=100)
        assert diagnosis.flow_index == flow
        assert diagnosis.estimated_bytes == pytest.approx(6e7, rel=0.35)

    def test_confidence_override(self, diagnoser, sprint1):
        strict = diagnoser.diagnose(sprint1.link_traffic, confidence=0.9999)
        loose = diagnoser.diagnose(sprint1.link_traffic, confidence=0.995)
        assert len(loose) >= len(strict)

    def test_str_rendering(self, diagnoser, sprint1):
        diagnoses = diagnoser.diagnose(sprint1.link_traffic)
        if diagnoses:
            text = str(diagnoses[0])
            assert "bin" in text and "->" in text
