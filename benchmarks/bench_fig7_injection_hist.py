"""Figure 7: histograms of per-flow detection rates, large vs small
injections (Sprint-1).

The paper's shape: large injections concentrate near detection rate 1.0;
small injections concentrate near 0.0.
"""

import numpy as np

from repro.validation import InjectionStudy

from conftest import write_result


def _histogram_text(rates: np.ndarray, label: str) -> str:
    counts, edges = np.histogram(rates, bins=10, range=(0.0, 1.0))
    lines = [f"{label}: per-flow detection rate histogram"]
    peak = max(int(counts.max()), 1)
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(40 * count / peak))
        lines.append(f"  {lo:4.2f}-{hi:4.2f}  {count:4d}  {bar}")
    return "\n".join(lines)


def test_fig7_histograms(benchmark, sprint1, results_dir):
    study = InjectionStudy(sprint1)

    def run():
        large = study.run(3.0e7).detection_rate_by_flow()
        small = study.run(1.5e7).detection_rate_by_flow()
        return large, small

    large, small = benchmark(run)
    text = "\n\n".join(
        [
            _histogram_text(large, "Large injected spike (3.0e7)"),
            _histogram_text(small, "Small injected spike (1.5e7)"),
        ]
    )
    write_result(results_dir, "fig7_injection_hist", text)

    # Fig. 7(a): mass concentrated at high detection rates.
    assert np.mean(large >= 0.9) > 0.6
    # Fig. 7(b): mass concentrated at low detection rates.
    assert np.mean(small <= 0.4) > 0.6
    # The two histograms barely overlap in their bulk.
    assert np.median(large) > 0.9
    assert np.median(small) < 0.4
