"""Tests for repro.traffic.metrics (§7.2 alternative link metrics)."""

import numpy as np
import pytest

from repro.core import SPEDetector
from repro.exceptions import TrafficError
from repro.traffic import (
    average_packet_size_links,
    inject_small_packet_flood,
    packet_count_links,
)


class TestPacketCountLinks:
    def test_shape_and_scale(self, sprint1):
        packets = packet_count_links(
            sprint1.od_traffic, sprint1.routing, jitter=0.0, seed=0
        )
        bytes_links = sprint1.link_traffic
        assert packets.shape == bytes_links.shape
        # With zero jitter, packets = bytes / mean size exactly.
        assert np.allclose(packets * 500.0, bytes_links, rtol=1e-9)

    def test_jitter_perturbs_but_preserves_scale(self, sprint1):
        packets = packet_count_links(
            sprint1.od_traffic, sprint1.routing, jitter=0.02, seed=0
        )
        expected = sprint1.link_traffic / 500.0
        rel = np.abs(packets - expected) / np.maximum(expected, 1.0)
        assert np.median(rel) < 0.05

    def test_volume_anomaly_visible_in_packet_metric(self, sprint1):
        """§7.2: the subspace method applies to packet counts; a volume
        anomaly surfaces there too."""
        packets = packet_count_links(
            sprint1.od_traffic, sprint1.routing, jitter=0.01, seed=1
        )
        detector = SPEDetector().fit(packets)
        top = max(sprint1.true_events, key=lambda e: abs(e.amplitude_bytes))
        assert detector.detect(packets).flags[top.time_bin]

    def test_validation(self, sprint1):
        with pytest.raises(TrafficError):
            packet_count_links(sprint1.od_traffic, sprint1.routing, jitter=-1)


class TestAveragePacketSize:
    def test_near_mean_packet_size(self, sprint1):
        avg = average_packet_size_links(
            sprint1.od_traffic, sprint1.routing, jitter=0.01, seed=2
        )
        busy = sprint1.link_traffic.mean(axis=0) > 1e6
        assert np.allclose(avg[:, busy].mean(), 500.0, rtol=0.05)

    def test_volume_anomaly_nearly_invisible(self, sprint1):
        """A volume anomaly made of ordinary packets does not move the
        average packet size — it is a different anomaly class."""
        avg = average_packet_size_links(
            sprint1.od_traffic, sprint1.routing, jitter=0.01, seed=3
        )
        top = max(sprint1.true_events, key=lambda e: abs(e.amplitude_bytes))
        link = sprint1.routing.links_of_flow(top.flow_index)[0]
        column = avg[:, sprint1.routing.link_index(link)]
        deviation = abs(column[top.time_bin] - np.median(column))
        assert deviation < 5 * column.std()


class TestSmallPacketFlood:
    def test_flood_visible_in_packet_metric_not_bytes(self, sprint1):
        flow = sprint1.routing.od_index("lon", "mil")
        time_bin = 300
        extra_packets = 2e5  # 2e5 * 64B = 1.3e7 bytes: below the knee
        packet_links, avg_links = inject_small_packet_flood(
            sprint1.od_traffic,
            sprint1.routing,
            flow_index=flow,
            time_bin=time_bin,
            extra_packets=extra_packets,
            seed=4,
        )
        # Packet-count detector fires...
        packet_detector = SPEDetector().fit(packet_links)
        assert packet_detector.detect(packet_links).flags[time_bin]
        # ... while the byte-count detector stays quiet (the flood adds
        # only ~1.9e7 bytes, below the Sprint detection boundary).
        byte_matrix = sprint1.link_traffic.copy()
        byte_matrix[time_bin] += extra_packets * 64.0 * sprint1.routing.column(flow)
        byte_detector = SPEDetector().fit(sprint1.link_traffic)
        assert not byte_detector.detect(byte_matrix[time_bin]).flags[0]

    def test_flood_depresses_average_packet_size(self, sprint1):
        flow = sprint1.routing.od_index("lon", "mil")
        time_bin = 300
        _, avg_links = inject_small_packet_flood(
            sprint1.od_traffic,
            sprint1.routing,
            flow_index=flow,
            time_bin=time_bin,
            extra_packets=5e5,
            seed=5,
        )
        for link_name in sprint1.routing.links_of_flow(flow):
            column = avg_links[:, sprint1.routing.link_index(link_name)]
            assert column[time_bin] < np.median(column) - 3 * column.std()

    def test_validation(self, sprint1):
        with pytest.raises(TrafficError):
            inject_small_packet_flood(
                sprint1.od_traffic, sprint1.routing, 0, 0, extra_packets=0
            )
        with pytest.raises(TrafficError):
            inject_small_packet_flood(
                sprint1.od_traffic, sprint1.routing, 0, 10**9, extra_packets=10
            )
