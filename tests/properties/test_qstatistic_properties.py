"""Property-based tests for the vectorized Q-statistic threshold sweep.

``q_thresholds`` powers every confidence grid in the pipeline layer;
these properties pin the two contracts grid drivers rely on: loop
consistency with the scalar :func:`~repro.core.qstatistic.q_threshold`
(including the Box fallback) and monotonicity in the confidence level.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.qstatistic import q_threshold, q_thresholds
from repro.exceptions import ModelError


def eigen_spectra(min_size=1, max_size=12):
    """Random positive residual spectra."""
    sizes = st.integers(min_size, max_size)
    return sizes.flatmap(
        lambda n: hnp.arrays(
            dtype=np.float64,
            shape=n,
            elements=st.floats(1e-6, 1e6, allow_nan=False),
        )
    )


def confidence_ladders(min_size=2, max_size=6):
    """Strictly increasing confidence grids inside (0, 1)."""
    return st.lists(
        st.floats(0.9, 0.99999), min_size=min_size, max_size=max_size,
        unique=True,
    ).map(sorted)


@settings(max_examples=80, deadline=None)
@given(eigen_spectra(), confidence_ladders())
def test_q_thresholds_matches_scalar_loop(spectrum, confidences):
    vectorized = q_thresholds(spectrum, np.asarray(confidences))
    looped = np.array([q_threshold(spectrum, c) for c in confidences])
    assert np.allclose(vectorized, looped, rtol=1e-12, atol=0.0)


@settings(max_examples=80, deadline=None)
@given(eigen_spectra(), confidence_ladders())
def test_q_thresholds_monotone_in_confidence(spectrum, confidences):
    """A stricter confidence level can never lower the SPE limit."""
    thresholds = q_thresholds(spectrum, np.asarray(confidences))
    assert np.all(np.diff(thresholds) >= -1e-9 * np.abs(thresholds[:-1]))


@settings(max_examples=40, deadline=None)
@given(eigen_spectra(), st.floats(0.9, 0.9999))
def test_singleton_grid_equals_scalar(spectrum, confidence):
    grid = q_thresholds(spectrum, np.asarray([confidence]))
    assert grid.shape == (1,)
    assert grid[0] == pytest.approx(
        q_threshold(spectrum, confidence), rel=1e-12
    )


def test_rejects_out_of_range_levels():
    spectrum = np.array([3.0, 2.0, 1.0])
    with pytest.raises(ModelError, match="confidence"):
        q_thresholds(spectrum, np.array([0.5, 1.0]))
    with pytest.raises(ModelError, match="vector"):
        q_thresholds(spectrum, np.array([[0.9]]))
