"""Principal Component Analysis of the link measurement matrix (§4.2).

The paper treats each row of the ``(t, m)`` measurement matrix ``Y`` as a
point in ``R^m``, centers the columns, and extracts principal axes
``v_1, ..., v_m`` ordered by captured variance.  The normalized
projections ``u_i = Y v_i / ‖Y v_i‖`` are the common temporal patterns of
the link ensemble (paper Fig. 4).

Implementation: the decomposition only ever needs the *right* singular
basis and the singular values, so :meth:`PCA.fit` picks the cheapest
economy route for the matrix shape (``method="auto"``):

``gram-covariance``
    ``t ≫ m`` (the paper's regime: a week of bins over tens of links).
    Eigendecomposition of the ``(m, m)`` Gram matrix ``YᵀY`` — one BLAS-3
    ``syrk`` plus an ``m × m`` symmetric eigensolve, so the cost scales
    with ``min(t, m)`` instead of ``max(t, m)``.  This route is computed
    through the mergeable sufficient statistics of
    :mod:`repro.core.suffstats` (canonical row tiles, uncentered moments
    with a rank-one centering correction), so :meth:`PCA.fit_from_stats`
    on merged per-chunk statistics is *bit-identical* to the monolithic
    fit — the exactness contract the sharded engine
    (:mod:`repro.pipeline.sharded`) is built on.
``gram-sample``
    ``m ≫ t``.  Eigendecomposition of the ``(t, t)`` Gram ``YYᵀ``; the
    right singular vectors are recovered as ``Yᵀu_i/σ_i`` and the basis
    is completed deterministically for the null directions.
``svd``
    Balanced shapes.  Thin SVD (``full_matrices=False``) of the centered
    matrix — never materializes the ``(t, t)`` left basis the detection
    pipeline immediately discards.

``method="svd-full"`` keeps the pre-economy reference path
(``full_matrices=True``) for equivalence tests and benchmarks.

Sign convention: each component's largest-magnitude coordinate is made
positive, so results are deterministic across solver routes and SVD
backends.
"""

from __future__ import annotations

import numpy as np

from repro._util import ensure_matrix
from repro.core.suffstats import FinalizedStats, SufficientStats
from repro.exceptions import ModelError, NotFittedError

__all__ = ["PCA"]

#: ``method="auto"`` switches from thin SVD to a Gram eigensolve once the
#: long side is at least this many times the short side.  The crossover
#: is flat in practice — ``syrk`` + ``eigh`` already wins slightly at 2:1
#: and wins by an order of magnitude at the paper's ~20:1 aspect.
_GRAM_ASPECT_RATIO = 4

_METHODS = ("auto", "svd", "gram", "svd-full")


def _deterministic_signs(components: np.ndarray) -> np.ndarray:
    """Flip columns so each one's largest-|coordinate| entry is positive.

    One vectorized ``argmax``/fancy-index pass over all columns; negation
    is exact in IEEE-754, so the result is bit-identical to flipping the
    columns one at a time (the regression suite pins this).
    """
    if components.size == 0:
        return components
    pivots = np.argmax(np.abs(components), axis=0)
    columns = np.arange(components.shape[1])
    flip = components[pivots, columns] < 0
    components[:, flip] = -components[:, flip]
    return components


def _complete_basis(partial: np.ndarray) -> np.ndarray:
    """Extend ``(m, k)`` orthonormal columns to a full ``(m, m)`` basis.

    The added columns span the orthogonal complement (the zero-variance
    directions of a short-and-wide matrix); they are computed with a
    deterministic complete QR, so repeated fits agree bit for bit.
    """
    m, k = partial.shape
    if k >= m:
        return partial
    q, _ = np.linalg.qr(partial, mode="complete")
    tail = _deterministic_signs(np.ascontiguousarray(q[:, k:]))
    return np.concatenate([partial, tail], axis=1)


class PCA:
    """PCA of a timeseries matrix with the paper's conventions.

    Parameters
    ----------
    center:
        Subtract per-column means before decomposing (the paper always
        does; disabling is for tests only).
    method:
        Eigensolver route: ``"auto"`` (default) picks by aspect ratio,
        ``"svd"`` forces the thin SVD, ``"gram"`` forces the Gram
        eigensolve on the cheaper side, and ``"svd-full"`` keeps the
        legacy ``full_matrices=True`` reference path.
    dtype:
        Precision of the downstream *scoring* kernel (``"float64"``
        default, or ``"float32"``).  The fit itself always runs in
        float64 — mean, components, eigenvalues, and hence the
        separation rank and Q-statistic threshold are bit-identical
        across modes — the knob only tells
        :class:`~repro.core.subspace.SubspaceModel` which precision to
        project rows in, with error bounded by
        :func:`~repro.core.subspace.float32_spe_band`.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> y = rng.normal(size=(100, 5)) @ np.diag([5, 1, 1, 1, 1])
    >>> pca = PCA().fit(y)
    >>> bool(pca.variance_fractions()[0] > 0.5)
    True
    """

    def __init__(
        self,
        center: bool = True,
        method: str = "auto",
        dtype: np.dtype | type | str = np.float64,
    ) -> None:
        if method not in _METHODS:
            raise ModelError(
                f"unknown PCA method {method!r}; choose from {_METHODS}"
            )
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ModelError(
                f"scoring dtype must be float32 or float64, got {dtype}"
            )
        self.center = center
        self.method = method
        self.dtype = dtype
        self._mean: np.ndarray | None = None
        self._components: np.ndarray | None = None  # (m, m): columns are v_i
        self._singular_values: np.ndarray | None = None
        self._num_samples: int = 0
        self._solver: str | None = None

    # ------------------------------------------------------------------
    def fit(self, measurements: np.ndarray) -> "PCA":
        """Decompose a ``(t, m)`` measurement matrix.

        Requires ``t >= 2`` (variance needs at least two samples).
        """
        measurements = ensure_matrix(
            measurements, name="measurement matrix", error=ModelError
        )
        t, m = measurements.shape
        if t < 2:
            raise ModelError(f"need at least 2 time samples, got {t}")
        if m < 1:
            raise ModelError("measurement matrix has no columns")

        solver = self.method
        if solver == "auto":
            if t >= _GRAM_ASPECT_RATIO * m or m >= _GRAM_ASPECT_RATIO * t:
                solver = "gram"
            else:
                solver = "svd"
        if solver == "gram" and t >= m:
            # The tall gram-covariance route *is* the sufficient-stats
            # fit on one chunk — by construction, so that a fit from
            # merged per-shard statistics reproduces this one bit for
            # bit (see repro.core.suffstats).  Finiteness was checked
            # above; skip the second full-matrix scan.
            return self._fit_finalized(
                SufficientStats.from_block(
                    measurements, validate=False
                ).finalize()
            )

        self._num_samples = t
        self._mean = (
            measurements.mean(axis=0) if self.center else np.zeros(m)
        )
        centered = measurements - self._mean

        if solver == "gram":
            components, singular_values, self._solver = _fit_gram_sample(
                centered
            )
        elif solver == "svd":
            components, singular_values, self._solver = _fit_svd(
                centered, full_matrices=False
            )
        else:  # svd-full: the legacy reference route
            components, singular_values, self._solver = _fit_svd(
                centered, full_matrices=True
            )

        # The decomposition only determines min(t, m) directions; pad with
        # exact zeros for the degenerate directions of a short-and-wide
        # matrix and complete the basis deterministically.
        if singular_values.size < m:
            padded = np.zeros(m)
            padded[: singular_values.size] = singular_values
            singular_values = padded
        components = _complete_basis(components)
        # Deterministic sign: largest-|coordinate| entry of each v_i > 0.
        self._components = _deterministic_signs(components)
        self._singular_values = singular_values
        return self

    # ------------------------------------------------------------------
    def fit_from_stats(
        self, stats: SufficientStats | FinalizedStats
    ) -> "PCA":
        """Fit from mergeable sufficient statistics instead of raw rows.

        ``stats`` may be a (merged) :class:`~repro.core.suffstats.
        SufficientStats` or an already-finalized reduction.  The fit
        always takes the gram-covariance route — the only one expressible
        in ``(t, S, G)`` — and is bit-identical to
        ``PCA(method="gram").fit(Y)`` whenever ``t >= m``, for *any*
        chunking of ``Y`` into per-shard statistics (the sharded
        engine's exactness contract; pinned by the property suite).
        """
        if self.method not in ("auto", "gram"):
            raise ModelError(
                f"method {self.method!r} cannot fit from sufficient "
                "statistics; use method='auto' or 'gram'"
            )
        if isinstance(stats, SufficientStats):
            stats = stats.finalize()
        if not isinstance(stats, FinalizedStats):
            raise ModelError(
                "fit_from_stats expects SufficientStats or FinalizedStats, "
                f"got {type(stats).__name__}"
            )
        return self._fit_finalized(stats)

    def _fit_finalized(self, stats: FinalizedStats) -> "PCA":
        """The gram-covariance eigensolve over finalized statistics."""
        t, m = stats.count, stats.num_columns
        if t < 2:
            raise ModelError(f"need at least 2 time samples, got {t}")
        self._num_samples = t
        self._mean = stats.mean if self.center else np.zeros(m)
        gram = stats.centered_gram() if self.center else stats.uncentered_gram()
        eigenvalues, eigenvectors = np.linalg.eigh(gram)
        order = np.argsort(eigenvalues)[::-1]
        self._singular_values = np.sqrt(
            np.clip(eigenvalues[order], 0.0, None)
        )
        self._components = _deterministic_signs(eigenvectors[:, order])
        self._solver = "gram-covariance"
        return self

    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if self._components is None:
            raise NotFittedError("PCA.fit must be called first")

    @property
    def solver(self) -> str:
        """The eigensolver route the last fit actually took.

        One of ``"svd"``, ``"svd-full"``, ``"gram-covariance"`` (``(m, m)``
        Gram) or ``"gram-sample"`` (``(t, t)`` Gram).
        """
        self._require_fitted()
        return self._solver

    @property
    def num_components(self) -> int:
        """Dimensionality ``m`` of the measurement space."""
        self._require_fitted()
        return self._components.shape[1]

    @property
    def num_samples(self) -> int:
        """Number of time samples the decomposition was fitted on."""
        self._require_fitted()
        return self._num_samples

    @property
    def mean(self) -> np.ndarray:
        """Per-column training mean (zeros when centering is disabled)."""
        self._require_fitted()
        return self._mean.copy()

    @property
    def components(self) -> np.ndarray:
        """``(m, m)`` orthonormal matrix; column ``i`` is the axis ``v_i``."""
        self._require_fitted()
        return self._components.copy()

    def component(self, index: int) -> np.ndarray:
        """Principal axis ``v_index`` (0-based)."""
        self._require_fitted()
        if not 0 <= index < self.num_components:
            raise ModelError(
                f"component index {index} out of range [0, {self.num_components})"
            )
        return self._components[:, index].copy()

    # ------------------------------------------------------------------
    def captured_variance(self) -> np.ndarray:
        """Raw captured "variance" per axis: ``‖Y v_i‖²`` (paper notation)."""
        self._require_fitted()
        return self._singular_values**2

    def eigenvalues(self) -> np.ndarray:
        """Sample-covariance eigenvalues ``λ_i = ‖Y v_i‖² / (t − 1)``.

        These are the values the Q-statistic consumes (DESIGN.md §5).
        """
        self._require_fitted()
        return self._singular_values**2 / (self._num_samples - 1)

    def variance_fractions(self) -> np.ndarray:
        """Fraction of total variance captured by each axis (paper Fig. 3)."""
        variances = self.captured_variance()
        total = variances.sum()
        if total == 0:
            return np.zeros_like(variances)
        return variances / total

    def effective_dimension(self, fraction: float = 0.95) -> int:
        """Smallest number of axes capturing ``fraction`` of total variance."""
        if not 0.0 < fraction <= 1.0:
            raise ModelError(f"fraction must lie in (0, 1], got {fraction}")
        cumulative = np.cumsum(self.variance_fractions())
        return int(np.searchsorted(cumulative, fraction - 1e-12) + 1)

    # ------------------------------------------------------------------
    def transform(self, measurements: np.ndarray) -> np.ndarray:
        """Map measurements onto the principal axes (scores ``Y v_i``)."""
        self._require_fitted()
        measurements = np.asarray(measurements, dtype=np.float64)
        centered = measurements - self._mean
        return centered @ self._components

    def projection_timeseries(self, measurements: np.ndarray, index: int) -> np.ndarray:
        """The unit-norm temporal pattern ``u_i = Y v_i / ‖Y v_i‖`` (§4.3).

        Evaluated on arbitrary measurements (typically the training data);
        a zero-variance axis has no direction and raises.
        """
        scores = self.transform(measurements)[:, index]
        norm = np.linalg.norm(scores)
        if norm == 0:
            raise ModelError(f"axis {index} captures no variance in this data")
        return scores / norm

    def inverse_transform(self, scores: np.ndarray) -> np.ndarray:
        """Map principal-axis scores back to measurement space."""
        self._require_fitted()
        scores = np.asarray(scores, dtype=np.float64)
        return scores @ self._components.T + self._mean


# ----------------------------------------------------------------------
# Solver routes.  Each returns (components, singular_values, solver_tag)
# with components ``(m, k)`` orthonormal (k = number of determined
# directions) and singular values descending.


def _fit_svd(
    centered: np.ndarray, full_matrices: bool
) -> tuple[np.ndarray, np.ndarray, str]:
    """Thin (or legacy full) SVD of the centered matrix."""
    _, singular_values, vt = np.linalg.svd(
        centered, full_matrices=full_matrices
    )
    return vt.T, singular_values, "svd-full" if full_matrices else "svd"


def _fit_gram_sample(
    centered: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, str]:
    """Symmetric eigensolve of the ``(t, t)`` sample Gram (``t < m``).

    Eigendecompose ``YYᵀ`` and recover the axes as ``Yᵀ u_i / σ_i``
    (directions with σ ≈ 0 are indeterminate and left to deterministic
    basis completion).  The ``t >= m`` Gram route lives on the
    sufficient-statistics path (:meth:`PCA._fit_finalized`).
    """
    t, m = centered.shape
    gram = centered @ centered.T  # (t, t)
    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    order = np.argsort(eigenvalues)[::-1]
    singular_values = np.sqrt(np.clip(eigenvalues[order], 0.0, None))
    left = eigenvectors[:, order]
    # Recover right singular vectors where σ is numerically nonzero.
    # The spectrum was squared through the Gram matrix, so eigenvalue
    # rounding dust of order λ₀·t·eps surfaces as σ ≈ σ₀·√(t·eps) — the
    # cutoff must live on that scale, not the σ₀·t·eps of a direct SVD
    # (else dust columns pass as real and their "recovered" axes are
    # garbage that breaks basis orthonormality on rank-deficient data).
    cutoff = singular_values[0] * np.sqrt(
        max(t, m) * np.finfo(np.float64).eps
    )
    rank = int(np.count_nonzero(singular_values > cutoff))
    components = (centered.T @ left[:, :rank]) / singular_values[:rank]
    # Re-orthonormalize: dividing by σ amplifies rounding in the small-σ
    # columns; one thin QR restores orthogonality without changing the
    # spanned subspace (R is upper-triangular and near-identity).
    components, r = np.linalg.qr(components)
    components *= np.sign(np.diag(r))
    return components, singular_values[:rank], "gram-sample"
