"""Point-of-Presence (PoP) model.

A backbone network is composed of PoPs connected by links (paper §2).  A PoP
is identified by a short name (e.g. ``"nycm"`` for New York in Abilene) and
may carry descriptive metadata used only for display and plotting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import TopologyError

__all__ = ["PoP"]


@dataclass(frozen=True, slots=True)
class PoP:
    """A network Point of Presence.

    Parameters
    ----------
    name:
        Unique short identifier within a network (case-sensitive).
    city:
        Human-readable location, for display only.
    latitude, longitude:
        Optional coordinates in degrees, for plotting topologies.
    population:
        Optional relative size of the customer base attached to this PoP.
        The gravity traffic model uses it to set mean OD-flow rates; it is
        a unitless weight, not a literal census count.
    """

    name: str
    city: str = ""
    latitude: float | None = None
    longitude: float | None = None
    population: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise TopologyError("PoP name must be a non-empty string")
        if any(ch.isspace() for ch in self.name):
            raise TopologyError(f"PoP name may not contain whitespace: {self.name!r}")
        if self.population <= 0:
            raise TopologyError(
                f"PoP population weight must be positive, got {self.population!r}"
            )
        if (self.latitude is None) != (self.longitude is None):
            raise TopologyError(
                "latitude and longitude must be given together or not at all"
            )
        if self.latitude is not None and not -90.0 <= self.latitude <= 90.0:
            raise TopologyError(f"latitude out of range: {self.latitude!r}")
        if self.longitude is not None and not -180.0 <= self.longitude <= 180.0:
            raise TopologyError(f"longitude out of range: {self.longitude!r}")

    @property
    def display_name(self) -> str:
        """City name when available, else the short identifier."""
        return self.city or self.name

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
