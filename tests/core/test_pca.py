"""Tests for repro.core.pca (§4.2)."""

import numpy as np
import pytest

from repro.core import PCA
from repro.exceptions import ModelError, NotFittedError


@pytest.fixture
def anisotropic_data(rng):
    # 200 samples in R^5 with variance concentrated on two axes.
    latent = rng.normal(size=(200, 5))
    return latent @ np.diag([10.0, 4.0, 1.0, 0.5, 0.1]) + 100.0


class TestFit:
    def test_components_orthonormal(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        v = pca.components
        assert np.allclose(v.T @ v, np.eye(5), atol=1e-10)

    def test_variance_ordering(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        captured = pca.captured_variance()
        assert np.all(np.diff(captured) <= 1e-9)

    def test_mean_computed(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        assert np.allclose(pca.mean, anisotropic_data.mean(axis=0))

    def test_no_centering_option(self, anisotropic_data):
        pca = PCA(center=False).fit(anisotropic_data)
        assert np.allclose(pca.mean, 0.0)

    def test_captured_variance_matches_projection_norm(self, anisotropic_data):
        """The paper's definition: lambda_i = ||Y v_i||^2 on centered Y."""
        pca = PCA().fit(anisotropic_data)
        centered = anisotropic_data - anisotropic_data.mean(axis=0)
        for i in range(5):
            projected = centered @ pca.component(i)
            assert pca.captured_variance()[i] == pytest.approx(
                float(projected @ projected), rel=1e-9
            )

    def test_eigenvalues_are_covariance_eigenvalues(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        covariance = np.cov(anisotropic_data, rowvar=False)
        expected = np.sort(np.linalg.eigvalsh(covariance))[::-1]
        assert np.allclose(pca.eigenvalues(), expected, rtol=1e-9)

    def test_total_variance_conserved(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        centered = anisotropic_data - anisotropic_data.mean(axis=0)
        assert pca.captured_variance().sum() == pytest.approx(
            float(np.sum(centered**2)), rel=1e-9
        )

    def test_deterministic_sign_convention(self, anisotropic_data):
        a = PCA().fit(anisotropic_data)
        b = PCA().fit(anisotropic_data.copy())
        assert np.allclose(a.components, b.components)
        for i in range(5):
            v = a.component(i)
            assert v[np.argmax(np.abs(v))] > 0

    def test_short_wide_matrix_padded(self, rng):
        # Fewer samples than dimensions: trailing axes get zero variance.
        data = rng.normal(size=(4, 10))
        pca = PCA().fit(data)
        assert pca.num_components == 10
        assert np.allclose(pca.captured_variance()[4:], 0.0)


class TestFractionsAndDimension:
    def test_fractions_sum_to_one(self, anisotropic_data):
        assert PCA().fit(anisotropic_data).variance_fractions().sum() == pytest.approx(1.0)

    def test_effective_dimension(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        assert pca.effective_dimension(0.5) <= 2
        assert pca.effective_dimension(1.0) <= 5

    def test_effective_dimension_validation(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        with pytest.raises(ModelError):
            pca.effective_dimension(0.0)

    def test_paper_fig3_shape(self, sprint1):
        """Fig. 3: >40 links, but 3-4 components capture the vast
        majority of the variance."""
        pca = PCA().fit(sprint1.link_traffic)
        assert pca.num_components == 49
        assert pca.variance_fractions()[:4].sum() > 0.9


class TestTransforms:
    def test_transform_inverse_roundtrip(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        scores = pca.transform(anisotropic_data)
        rebuilt = pca.inverse_transform(scores)
        assert np.allclose(rebuilt, anisotropic_data, atol=1e-8)

    def test_projection_timeseries_unit_norm(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        u0 = pca.projection_timeseries(anisotropic_data, 0)
        assert np.linalg.norm(u0) == pytest.approx(1.0)

    def test_projection_timeseries_orthogonal(self, anisotropic_data):
        """The u_i of §4.3 are orthogonal by construction."""
        pca = PCA().fit(anisotropic_data)
        u0 = pca.projection_timeseries(anisotropic_data, 0)
        u1 = pca.projection_timeseries(anisotropic_data, 1)
        assert abs(float(u0 @ u1)) < 1e-10

    def test_zero_variance_axis_rejected(self, rng):
        data = np.zeros((10, 3))
        data[:, 0] = rng.normal(size=10)
        pca = PCA().fit(data)
        with pytest.raises(ModelError):
            pca.projection_timeseries(data, 2)


class TestValidation:
    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            PCA().transform(np.ones((2, 2)))

    def test_one_sample_rejected(self):
        with pytest.raises(ModelError):
            PCA().fit(np.ones((1, 3)))

    def test_non_finite_rejected(self):
        data = np.ones((5, 3))
        data[0, 0] = np.inf
        with pytest.raises(ModelError):
            PCA().fit(data)

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ModelError):
            PCA().fit(np.ones(5))

    def test_component_index_out_of_range(self, anisotropic_data):
        pca = PCA().fit(anisotropic_data)
        with pytest.raises(ModelError):
            pca.component(99)
