"""Vectorized scenario grids: datasets × injection sizes × confidences.

Evaluating the subspace method across operating points is the unit of
work practitioners actually run — "how does the alarm rate move between
99.5% and 99.9% confidence, on each network, and what detection rate
does a 40 MB spike get?".  Done naively that is one full fit-and-detect
per scenario; :class:`BatchRunner` factors the grid instead:

* the subspace model is fitted **once per dataset** (the separation does
  not depend on the confidence level);
* all confidence thresholds come from one vectorized
  :func:`~repro.core.qstatistic.q_thresholds` call;
* detection across the whole grid is a single broadcast comparison of
  the per-timestep SPE vector against the threshold vector;
* injection scenarios reuse the closed-form ``SPE′`` algebra of
  :class:`~repro.validation.injection.InjectionStudy`, so a ``T × N``
  sweep never rebuilds a traffic matrix.

The baseline (no-injection) scenarios are numerically identical to
running :class:`~repro.core.detection.SPEDetector` separately per
confidence level — tests assert it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.qstatistic import q_thresholds
from repro.datasets.dataset import Dataset
from repro.exceptions import ValidationError
from repro.pipeline.pipeline import DetectionPipeline
from repro.validation.injection import InjectionStudy

__all__ = ["BatchRunner", "BatchReport", "ScenarioResult"]


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one (dataset, confidence, injection) scenario.

    Attributes
    ----------
    dataset:
        Dataset name.
    confidence:
        The Q-statistic confidence level ``1 − α``.
    threshold:
        The SPE limit ``δ²_α`` at that level.
    injection_size:
        Injected spike size in bytes, or None for the baseline scenario
        (detection on the unmodified trace).
    num_alarms, alarm_rate:
        Baseline scenarios: flagged bins on the trace.  Injection
        scenarios: alarms are per injected cell, so these are None.
    detection_rate:
        Injection scenarios: fraction of injected cells detected.
    identification_rate:
        Injection scenarios: fraction of *detected* cells whose injected
        flow won identification (the paper's conditional metric).
    flags:
        Baseline scenarios: the per-timestep boolean flags (for parity
        checks and downstream scoring).  None for injections.
    """

    dataset: str
    confidence: float
    threshold: float
    injection_size: float | None
    num_alarms: int | None
    alarm_rate: float | None
    detection_rate: float | None
    identification_rate: float | None
    flags: np.ndarray | None = field(repr=False, default=None)

    @property
    def is_baseline(self) -> bool:
        """True for the no-injection scenario."""
        return self.injection_size is None


@dataclass(frozen=True)
class BatchReport:
    """All scenario outcomes of one :meth:`BatchRunner.run` pass."""

    scenarios: tuple[ScenarioResult, ...]

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self):
        return iter(self.scenarios)

    def baseline(self, dataset: str, confidence: float) -> ScenarioResult:
        """The no-injection scenario for one (dataset, confidence)."""
        for scenario in self.scenarios:
            if (
                scenario.is_baseline
                and scenario.dataset == dataset
                and scenario.confidence == confidence
            ):
                return scenario
        raise ValidationError(
            f"no baseline scenario for ({dataset!r}, {confidence})"
        )

    def table(self) -> str:
        """A fixed-width text table of every scenario, one per row."""
        header = (
            f"{'dataset':<14} {'confidence':>10} {'threshold':>11} "
            f"{'injection':>11} {'alarms':>7} {'det rate':>9} {'ident rate':>11}"
        )
        lines = [header, "-" * len(header)]
        for s in self.scenarios:
            injection = "-" if s.is_baseline else f"{s.injection_size:.2e}"
            alarms = f"{s.num_alarms}" if s.num_alarms is not None else "-"
            det = (
                f"{s.detection_rate * 100:.1f}%"
                if s.detection_rate is not None
                else "-"
            )
            ident = (
                f"{s.identification_rate * 100:.1f}%"
                if s.identification_rate is not None
                else "-"
            )
            lines.append(
                f"{s.dataset:<14} {s.confidence:>10.4f} {s.threshold:>11.3e} "
                f"{injection:>11} {alarms:>7} {det:>9} {ident:>11}"
            )
        return "\n".join(lines)


class BatchRunner:
    """Evaluate many scenarios over shared fitted models.

    Parameters
    ----------
    datasets:
        The evaluation worlds; each is fitted exactly once.
    confidences:
        Confidence levels to sweep (the paper reports 0.995 and 0.999).
    injection_sizes:
        Spike sizes (bytes) for §6.3-style injection grids; empty for
        detection-only batches.
    injection_bins:
        Leading time bins swept by each injection scenario (the paper
        uses one day = 144).
    threshold_sigma, normal_rank:
        Forwarded to the per-dataset :class:`DetectionPipeline`.

    Examples
    --------
    >>> from repro.datasets import build_dataset
    >>> from repro.pipeline import BatchRunner
    >>> report = BatchRunner(
    ...     [build_dataset("abilene")],
    ...     confidences=(0.995, 0.999),
    ... ).run()
    >>> len(report)
    2
    """

    def __init__(
        self,
        datasets: Sequence[Dataset],
        confidences: Sequence[float] = (0.999,),
        injection_sizes: Sequence[float] = (),
        injection_bins: int = 144,
        threshold_sigma: float = 3.0,
        normal_rank: int | None = None,
    ) -> None:
        if not datasets:
            raise ValidationError("at least one dataset is required")
        if not confidences:
            raise ValidationError("at least one confidence level is required")
        if injection_bins < 1:
            raise ValidationError(
                f"injection_bins must be >= 1, got {injection_bins}"
            )
        self.datasets = list(datasets)
        self.confidences = np.asarray(confidences, dtype=np.float64)
        if np.any((self.confidences <= 0.0) | (self.confidences >= 1.0)):
            raise ValidationError("every confidence must lie in (0, 1)")
        self.injection_sizes = [float(size) for size in injection_sizes]
        if any(size == 0.0 for size in self.injection_sizes):
            raise ValidationError("injection sizes must be non-zero")
        self.injection_bins = injection_bins
        self.threshold_sigma = threshold_sigma
        self.normal_rank = normal_rank
        self._pipelines: dict[str, DetectionPipeline] = {}

    # ------------------------------------------------------------------
    def pipeline_for(self, dataset: Dataset) -> DetectionPipeline:
        """The (cached) fitted pipeline for one dataset."""
        pipeline = self._pipelines.get(dataset.name)
        if pipeline is None:
            pipeline = DetectionPipeline(
                confidence=float(self.confidences[0]),
                threshold_sigma=self.threshold_sigma,
                normal_rank=self.normal_rank,
            ).fit(dataset.link_traffic, routing=dataset.routing)
            self._pipelines[dataset.name] = pipeline
        return pipeline

    def run(self) -> BatchReport:
        """Evaluate the whole grid; one :class:`ScenarioResult` per cell.

        Scenario order: datasets outermost, then confidences, with each
        (dataset, confidence) emitting its baseline scenario followed by
        one scenario per injection size.
        """
        scenarios: list[ScenarioResult] = []
        for dataset in self.datasets:
            pipeline = self.pipeline_for(dataset)
            model = pipeline.detector.model
            thresholds = q_thresholds(
                model.residual_eigenvalues(), self.confidences
            )
            spe = np.asarray(model.spe(dataset.link_traffic))
            # All confidence levels in one broadcast: (t, 1) > (1, c).
            flag_grid = spe[:, None] > thresholds[None, :]

            injections: list[tuple[float, np.ndarray, np.ndarray]] = []
            if self.injection_sizes:
                # Reuse the pipeline's fitted detector so injections run
                # under exactly the baselines' subspace model.
                study = InjectionStudy(dataset, detector=pipeline.detector)
                time_bins = np.arange(
                    min(self.injection_bins, dataset.num_bins)
                )
                flow_indices = np.arange(dataset.num_flows)
                for size in self.injection_sizes:
                    # identified(t, i) is threshold-independent; compute
                    # it once per size and reuse across confidences.
                    result = study.run(
                        size, time_bins=time_bins, flow_indices=flow_indices
                    )
                    injections.append(
                        (size, result.spe_after, result.identified)
                    )

            for c_index, confidence in enumerate(self.confidences):
                threshold = float(thresholds[c_index])
                flags = flag_grid[:, c_index]
                scenarios.append(
                    ScenarioResult(
                        dataset=dataset.name,
                        confidence=float(confidence),
                        threshold=threshold,
                        injection_size=None,
                        num_alarms=int(np.count_nonzero(flags)),
                        alarm_rate=float(flags.mean()) if flags.size else 0.0,
                        detection_rate=None,
                        identification_rate=None,
                        flags=flags,
                    )
                )
                for size, grid, identified in injections:
                    detected = grid > threshold
                    ident_rate = (
                        float(identified[detected].mean())
                        if detected.any()
                        else 0.0
                    )
                    scenarios.append(
                        ScenarioResult(
                            dataset=dataset.name,
                            confidence=float(confidence),
                            threshold=threshold,
                            injection_size=size,
                            num_alarms=None,
                            alarm_rate=None,
                            detection_rate=float(detected.mean()),
                            identification_rate=ident_rate,
                        )
                    )
        return BatchReport(scenarios=tuple(scenarios))
