"""End-to-end measurement pipeline.

Ties the measurement plane together the way the paper's data collection
worked (§3):

1. true OD traffic is exported at fine granularity (5-min or 1-min bins);
2. a sampled-flow collector estimates OD bytes from sampled packets;
3. estimates are re-binned to 10-minute analysis bins;
4. SNMP counters provide per-link byte counts;
5. an agreement check compares sampling-adjusted flow counts, mapped onto
   links via the routing matrix, against the SNMP counts — the paper
   found 1-5% agreement on links above 1 Mbps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import rng_from
from repro.exceptions import MeasurementError
from repro.measurement.binning import rebin_matrix, subdivide_matrix
from repro.measurement.netflow import FlowCollector
from repro.measurement.sampling import (
    PacketSampler,
    PacketSizeModel,
    PeriodicSampler,
    RandomSampler,
)
from repro.measurement.snmp import SNMPPoller, decode_counters
from repro.routing.routing_matrix import RoutingMatrix
from repro.traffic.matrix import TrafficMatrix

__all__ = ["MeasurementPipeline", "MeasurementResult"]


@dataclass(frozen=True)
class MeasurementResult:
    """Everything the measurement plane produces for one trace.

    Attributes
    ----------
    od_estimates:
        ``(bins, flows)`` sampling-adjusted OD byte estimates on analysis
        bins (the data the paper's *validation* consumes).
    link_counts:
        ``(bins, links)`` SNMP-derived link byte counts (the data the
        *subspace method* consumes).
    agreement_error:
        Per-link median relative error between flow-derived and
        SNMP-derived link counts (the paper's 1-5% consistency check).
    fine_bin_seconds:
        Export granularity used internally.
    """

    od_estimates: np.ndarray
    link_counts: np.ndarray
    agreement_error: np.ndarray
    fine_bin_seconds: float

    def max_agreement_error(self) -> float:
        """Worst per-link median relative error."""
        return float(np.max(self.agreement_error))


class MeasurementPipeline:
    """Simulates the full collection stack for one network.

    Parameters
    ----------
    routing:
        Routing matrix mapping OD flows to links.
    sampler:
        Packet sampler; defaults to Sprint-style periodic 1-in-250.
    size_model:
        Packet-size model shared by exporter and estimator.
    fine_factor:
        Number of export bins per analysis bin (2 for 5-min exports under
        10-min analysis bins; 10 for 1-min exports).
    subdivision_roughness:
        Burstiness of the within-bin traffic split.
    snmp:
        SNMP poller; defaults to lossless 64-bit counters.
    seed:
        Randomness source for subdivision and sampling.
    """

    def __init__(
        self,
        routing: RoutingMatrix,
        sampler: PacketSampler | None = None,
        size_model: PacketSizeModel | None = None,
        fine_factor: int = 2,
        subdivision_roughness: float = 0.1,
        snmp: SNMPPoller | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if fine_factor < 1:
            raise MeasurementError(f"fine_factor must be >= 1, got {fine_factor}")
        self.routing = routing
        self.sampler = sampler if sampler is not None else PeriodicSampler(250)
        self.size_model = size_model if size_model is not None else PacketSizeModel()
        self.fine_factor = fine_factor
        self.subdivision_roughness = subdivision_roughness
        self.snmp = snmp if snmp is not None else SNMPPoller()
        self._rng = rng_from(seed)

    @classmethod
    def sprint_style(
        cls, routing: RoutingMatrix, seed: int | np.random.Generator | None = None
    ) -> "MeasurementPipeline":
        """Periodic 1-in-250 sampling, 5-minute exports (paper's Sprint setup)."""
        return cls(
            routing,
            sampler=PeriodicSampler(250),
            fine_factor=2,
            seed=seed,
        )

    @classmethod
    def abilene_style(
        cls, routing: RoutingMatrix, seed: int | np.random.Generator | None = None
    ) -> "MeasurementPipeline":
        """Random 1% sampling, 1-minute exports (paper's Abilene setup)."""
        return cls(
            routing,
            sampler=RandomSampler(0.01),
            fine_factor=10,
            seed=seed,
        )

    def run(self, traffic: TrafficMatrix) -> MeasurementResult:
        """Measure a true OD traffic matrix.

        Returns sampled OD estimates, SNMP link counts, and the
        flow-vs-SNMP agreement error, all on the analysis (input) bins.
        """
        if traffic.num_flows != self.routing.num_flows:
            raise MeasurementError(
                f"traffic has {traffic.num_flows} flows but routing matrix "
                f"covers {self.routing.num_flows}"
            )
        fine = subdivide_matrix(
            traffic.values,
            self.fine_factor,
            roughness=self.subdivision_roughness,
            seed=self._rng,
        )
        collector = FlowCollector(
            self.sampler, size_model=self.size_model, seed=self._rng
        )
        fine_estimates = collector.estimate_matrix(fine)
        od_estimates = rebin_matrix(fine_estimates, self.fine_factor)

        true_links = traffic.link_loads(self.routing)
        readings = self.snmp.poll(true_links)
        link_counts = decode_counters(readings, counter_bits=self.snmp.counter_bits)

        estimated_links = self.routing.link_loads(od_estimates)
        agreement = _median_relative_error(estimated_links, link_counts)
        return MeasurementResult(
            od_estimates=od_estimates,
            link_counts=link_counts,
            agreement_error=agreement,
            fine_bin_seconds=traffic.bin_seconds / self.fine_factor,
        )


def _median_relative_error(estimated: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Per-link median of |estimate - truth| / truth over bins with traffic."""
    if estimated.shape != truth.shape:
        raise MeasurementError(
            f"shape mismatch: {estimated.shape} vs {truth.shape}"
        )
    errors = np.zeros(truth.shape[1])
    for j in range(truth.shape[1]):
        mask = truth[:, j] > 0
        if not np.any(mask):
            errors[j] = 0.0
            continue
        rel = np.abs(estimated[mask, j] - truth[mask, j]) / truth[mask, j]
        errors[j] = float(np.median(rel))
    return errors
