"""Tests for repro.scenarios.fusion (spatial fusion vs monolithic)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.scenarios import FAMILIES, run_fusion_suite
from repro.scenarios.fusion import FUSION_SCHEMA_VERSION


@pytest.fixture(scope="module")
def report():
    """One full 7-family core-suite pass (module-scoped: it compiles and
    fits every scenario twice — monolithic + spatial)."""
    return run_fusion_suite("core", num_zones=2)


class TestAcceptance:
    def test_covers_every_taxonomy_family(self, report):
        assert set(report.families()) == set(FAMILIES)
        assert len(report) == 7

    def test_some_fusion_mode_matches_monolithic_within_5_percent(
        self, report
    ):
        """The acceptance gate: at least one fusion mode matches the
        monolithic detector's recall within 5% at equal false-alarm
        budget."""
        within = report.modes_within(0.05)
        assert within, (
            "no fusion mode within 5% of monolithic recall: "
            + ", ".join(
                f"{mode}={report.mean_recall(mode):.3f}"
                for mode in report.modes
            )
            + f" vs monolithic={report.mean_recall('monolithic'):.3f}"
        )

    def test_per_family_numbers_reported(self, report):
        """Per-family recall is part of the suite output for every mode."""
        payload = report.to_json()
        assert set(payload["family_recall"]) == set(FAMILIES)
        for family, recalls in payload["family_recall"].items():
            assert set(recalls) == {"monolithic", *report.modes}
            for value in recalls.values():
                assert 0.0 <= value <= 1.0
        table = report.table()
        for family in FAMILIES:
            assert family in table


class TestReport:
    def test_scenario_scores_structure(self, report):
        for score in report:
            assert set(score.recall_at_budget) == {
                "monolithic",
                *report.modes,
            }
            assert set(score.native) == {"monolithic", *report.modes}
            for recall, fa in score.native.values():
                assert 0.0 <= recall <= 1.0
                assert 0.0 <= fa <= 1.0
            assert score.num_truth_bins > 0

    def test_family_recall_aggregates_member_scenarios(self, report):
        values = [
            score.recall_at_budget["monolithic"]
            for score in report
            if "spike" in score.families
        ]
        assert report.family_recall("spike", "monolithic") == pytest.approx(
            float(np.mean(values))
        )
        with pytest.raises(ValidationError):
            report.family_recall("tsunami", "monolithic")

    def test_best_mode_is_argmax(self, report):
        best = report.best_mode()
        assert report.mean_recall(best) == max(
            report.mean_recall(mode) for mode in report.modes
        )

    def test_to_json_is_versioned_and_canonical(self, report):
        payload = report.to_json()
        assert payload["schema_version"] == FUSION_SCHEMA_VERSION
        assert payload["suite"] == "core"
        assert len(payload["scenarios"]) == 7
        # Deterministic: a fresh run serializes identically.
        again = run_fusion_suite("core", num_zones=2).to_json()
        assert payload == again


class TestValidation:
    def test_rejects_bad_budget(self):
        with pytest.raises(ValidationError):
            run_fusion_suite("core", fa_budget=0.0)
        with pytest.raises(ValidationError):
            run_fusion_suite("core", fa_budget=1.5)

    def test_rejects_unknown_modes(self):
        with pytest.raises(ValidationError, match="unknown fusion"):
            run_fusion_suite("core", modes=("union", "quorum"))

    def test_accepts_explicit_spec_sequence(self):
        from repro.scenarios import get_suite

        specs = get_suite("core")[:1]
        report = run_fusion_suite(specs, num_zones=2)
        assert report.suite == "custom"
        assert len(report) == 1
