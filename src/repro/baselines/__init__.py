"""Temporal baselines.

The paper uses two classes of single-timeseries methods (§6.2):

* forecasting — EWMA (exponential smoothing) and Holt–Winters;
* signal analysis — Fourier filtering on eight fixed periods, and
  wavelet-based low-frequency modeling.

They serve two roles in the reproduction: extracting "true" anomalies from
OD-flow timeseries (the paper's validation protocol), and acting as the
comparison points of Figure 10, where the same methods are applied to
*link* timeseries and contrasted with the subspace residual.
"""

from repro.baselines.autoregressive import ARModel
from repro.baselines.base import TimeseriesModel
from repro.baselines.ewma import EWMAModel
from repro.baselines.fourier import FourierModel
from repro.baselines.holt_winters import HoltWintersModel
from repro.baselines.wavelet import WaveletModel

__all__ = [
    "TimeseriesModel",
    "ARModel",
    "EWMAModel",
    "FourierModel",
    "HoltWintersModel",
    "WaveletModel",
]
