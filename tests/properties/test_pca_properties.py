"""Property-based tests for PCA and the subspace decomposition.

These check the algebraic invariants the subspace method rests on, over
arbitrary (finite, well-conditioned) data matrices.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import PCA, SubspaceModel


def matrices(min_rows=4, max_rows=40, min_cols=2, max_cols=8):
    """Random finite measurement matrices with bounded magnitude."""
    shapes = st.tuples(
        st.integers(min_rows, max_rows), st.integers(min_cols, max_cols)
    )
    return shapes.flatmap(
        lambda shape: hnp.arrays(
            dtype=np.float64,
            shape=shape,
            elements=st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
            ),
        )
    )


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_components_orthonormal(data):
    pca = PCA().fit(data)
    v = pca.components
    assert np.allclose(v.T @ v, np.eye(v.shape[1]), atol=1e-8)


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_variance_ordering_and_conservation(data):
    pca = PCA().fit(data)
    captured = pca.captured_variance()
    assert np.all(np.diff(captured) <= 1e-6 * max(captured.max(), 1.0))
    centered = data - data.mean(axis=0)
    assert captured.sum() == pytest.approx(float(np.sum(centered**2)), rel=1e-6, abs=1e-6)


@settings(max_examples=60, deadline=None)
@given(matrices(), st.integers(0, 8))
def test_projection_energy_split(data, rank_seed):
    """||y - mean||^2 = ||y_hat||^2 + ||y_tilde||^2 for every rank."""
    pca = PCA().fit(data)
    rank = rank_seed % (pca.num_components + 1)
    model = SubspaceModel.with_rank(pca, rank)
    modeled, residual = model.decompose(data)
    total = model.state_magnitude(data)
    split = np.einsum("ij,ij->i", modeled, modeled) + np.einsum(
        "ij,ij->i", residual, residual
    )
    scale = max(float(np.max(total)), 1.0)
    assert np.allclose(split, total, atol=1e-6 * scale)


@settings(max_examples=60, deadline=None)
@given(matrices(), st.integers(0, 8))
def test_projectors_idempotent_and_complementary(data, rank_seed):
    pca = PCA().fit(data)
    rank = rank_seed % (pca.num_components + 1)
    model = SubspaceModel.with_rank(pca, rank)
    c = model.normal_projector
    c_tilde = model.anomalous_projector
    assert np.allclose(c @ c, c, atol=1e-8)
    assert np.allclose(c_tilde @ c_tilde, c_tilde, atol=1e-8)
    assert np.allclose(c + c_tilde, np.eye(c.shape[0]), atol=1e-10)
    assert np.allclose(c @ c_tilde, 0.0, atol=1e-8)


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_spe_nonnegative_and_zero_at_full_rank(data):
    pca = PCA().fit(data)
    model_full = SubspaceModel.with_rank(pca, pca.num_components)
    spe_full = model_full.spe(data)
    scale = max(float(np.max(np.abs(data))), 1.0)
    assert np.all(np.asarray(spe_full) <= 1e-12 * scale**2 + 1e-6)
    model_zero = SubspaceModel.with_rank(pca, 0)
    spe_zero = model_zero.spe(data)
    assert np.all(np.asarray(spe_zero) >= -1e-9)


@settings(max_examples=40, deadline=None)
@given(matrices(min_rows=6), st.floats(0.1, 1000.0))
def test_spe_scale_equivariance(data, scale):
    """Scaling the data scales SPE quadratically (threshold follows)."""
    pca_a = PCA().fit(data)
    model_a = SubspaceModel.with_rank(pca_a, 1)
    pca_b = PCA().fit(data * scale)
    model_b = SubspaceModel.with_rank(pca_b, 1)
    spe_a = np.asarray(model_a.spe(data))
    spe_b = np.asarray(model_b.spe(data * scale))
    ref = max(float(spe_a.max()), 1e-9)
    assert np.allclose(spe_b, spe_a * scale**2, atol=1e-5 * ref * scale**2)


@settings(max_examples=40, deadline=None)
@given(matrices(min_rows=4, max_rows=60, min_cols=2, max_cols=10))
def test_fit_methods_agree_on_random_shapes(data):
    """`svd`, `gram` and the legacy `svd-full` reference produce the
    same model on arbitrary shapes: equal spectra and an identical
    reconstructed covariance (the basis itself may differ by sign or
    by rotation inside degenerate eigenspaces)."""
    reference = PCA(method="svd-full").fit(data)
    ref_eigenvalues = reference.eigenvalues()
    ref_cov = (
        reference.components * ref_eigenvalues
    ) @ reference.components.T
    scale = max(float(ref_eigenvalues.max(initial=0.0)), 1.0)
    for method in ("svd", "gram", "auto"):
        pca = PCA(method=method).fit(data)
        assert np.allclose(
            pca.eigenvalues(), ref_eigenvalues, atol=1e-8 * scale
        )
        cov = (pca.components * pca.eigenvalues()) @ pca.components.T
        assert np.allclose(cov, ref_cov, atol=1e-7 * scale)
        v = pca.components
        assert np.allclose(v.T @ v, np.eye(v.shape[1]), atol=1e-8)
