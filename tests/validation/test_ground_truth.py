"""Tests for repro.validation.ground_truth (§6.2)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.validation import extract_true_anomalies, find_knee
from repro.validation.ground_truth import method_for


class TestExtraction:
    @pytest.mark.parametrize("method", ["fourier", "ewma"])
    def test_finds_top_injected_events(self, sprint1, method):
        """The extractor must rediscover the largest injected spikes at
        the right (time, flow) coordinates."""
        ranked = extract_true_anomalies(sprint1.od_traffic, method=method, top_k=40)
        found = {(a.time_bin, a.flow_index) for a in ranked}
        top_events = sorted(
            sprint1.true_events, key=lambda e: -abs(e.amplitude_bytes)
        )[:5]
        hits = sum(
            1 for e in top_events if (e.time_bin, e.flow_index) in found
        )
        assert hits >= 4

    def test_ranked_descending(self, sprint1):
        ranked = extract_true_anomalies(sprint1.od_traffic, top_k=40)
        sizes = [a.size_bytes for a in ranked]
        assert sizes == sorted(sizes, reverse=True)

    def test_size_estimates_near_truth(self, sprint1):
        """§6.2: extraction size estimates track the injected amplitudes
        (with method error — the paper observed under/over-estimation)."""
        ranked = extract_true_anomalies(sprint1.od_traffic, method="ewma", top_k=40)
        by_coord = {(a.time_bin, a.flow_index): a.size_bytes for a in ranked}
        errors = []
        for event in sorted(
            sprint1.true_events, key=lambda e: -abs(e.amplitude_bytes)
        )[:5]:
            key = (event.time_bin, event.flow_index)
            if key in by_coord:
                errors.append(
                    abs(by_coord[key] - abs(event.amplitude_bytes))
                    / abs(event.amplitude_bytes)
                )
        assert errors and float(np.mean(errors)) < 0.3

    def test_top_k_respected(self, sprint1):
        assert len(extract_true_anomalies(sprint1.od_traffic, top_k=10)) == 10

    def test_local_window_dedupes_neighbors(self, toy_net):
        """A two-bin spike must produce one candidate, not two."""
        from repro.traffic import TrafficMatrix

        values = np.full((100, toy_net.num_od_pairs), 1000.0)
        values[50, 3] += 900.0
        values[51, 3] += 800.0
        traffic = TrafficMatrix(values, toy_net.od_pairs)
        ranked = extract_true_anomalies(traffic, method="ewma", top_k=5)
        from_flow3 = [a for a in ranked if a.flow_index == 3 and a.size_bytes > 100]
        assert len(from_flow3) == 1

    def test_validation(self, sprint1):
        with pytest.raises(ValidationError):
            extract_true_anomalies(sprint1.od_traffic, top_k=0)
        with pytest.raises(ValidationError):
            extract_true_anomalies(sprint1.od_traffic, local_window=0)
        with pytest.raises(ValidationError):
            method_for("arima")


class TestFindKnee:
    def test_sharp_knee_found(self):
        sizes = np.array([100.0, 90.0, 80.0, 10.0, 9.0, 8.0, 7.0, 6.0])
        knee = find_knee(sizes)
        assert knee in (2, 3)

    def test_paper_like_profile(self, sprint1):
        """On the ranked extraction the knee separates the anomalies
        that 'stand out' from the flat noise tail: everything left of
        the knee is clearly above the tail level, and the above-cutoff
        anomalies all sit left of (or at) the knee."""
        ranked = extract_true_anomalies(sprint1.od_traffic, method="ewma", top_k=40)
        sizes = np.array([a.size_bytes for a in ranked])
        knee = find_knee(sizes)
        above = int(np.sum(sizes >= 2e7))
        tail_level = float(np.median(sizes[-10:]))
        assert above <= knee + 1
        assert sizes[knee] > 1.2 * tail_level
        assert 4 <= knee <= 20

    def test_flat_profile_returns_zero(self):
        assert find_knee(np.array([5.0, 5.0, 5.0])) == 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            find_knee(np.array([1.0, 2.0]))
        with pytest.raises(ValidationError):
            find_knee(np.array([1.0, 5.0, 2.0]))  # not descending
