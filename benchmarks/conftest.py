"""Benchmark fixtures.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md §4).  Expensive artifacts are session-scoped; every benchmark
also writes its rendered output to ``results/`` so the artifacts survive
the run.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

from repro.datasets import build_dataset

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: BLAS/OpenMP thread-pool variables that change measured wall-clocks.
_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def runtime_environment() -> dict:
    """Library versions and thread configuration behind a measurement.

    Recorded into every ``BENCH_*.json`` artifact so performance
    trajectories across PRs stay interpretable: a 2x "regression" that
    coincides with ``OMP_NUM_THREADS`` dropping from 8 to 1 is not a
    regression.
    """
    import numpy

    try:
        import scipy

        scipy_version = scipy.__version__
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        scipy_version = None
    return {
        "python_version": platform.python_version(),
        "numpy_version": numpy.__version__,
        "scipy_version": scipy_version,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "thread_env": {
            name: os.environ.get(name) for name in _THREAD_ENV_VARS
        },
    }


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def sprint1():
    return build_dataset("sprint-1")


@pytest.fixture(scope="session")
def sprint2():
    return build_dataset("sprint-2")


@pytest.fixture(scope="session")
def abilene_ds():
    return build_dataset("abilene")


@pytest.fixture(scope="session")
def all_datasets(sprint1, sprint2, abilene_ds):
    return [sprint1, sprint2, abilene_ds]


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered artifact and echo it to stdout."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")


def write_json_result(results_dir: Path, name: str, payload: dict) -> Path:
    """Persist a machine-readable ``BENCH_<name>.json`` artifact.

    Performance benchmarks emit these so speedups, wall-clock times and
    grid sizes stay diffable across PRs (the txt artifacts are for
    humans).  Every artifact also records the numpy/BLAS thread
    configuration it was measured under (see
    :func:`runtime_environment`) and the scoring precision the numbers
    were taken at (``dtype``; benchmarks that don't thread the knob
    measure the float64 default).
    """
    payload = dict(payload)
    payload.setdefault("environment", runtime_environment())
    payload.setdefault("dtype", "float64")
    path = Path(results_dir) / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[{name}] wrote {path}")
    return path
