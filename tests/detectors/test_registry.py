"""Tests for the detector registry."""

import numpy as np
import pytest

from repro import detectors
from repro.detectors import SubspaceDetector, TemporalDetector
from repro.exceptions import ModelError


class TestGet:
    def test_builtin_names(self):
        assert set(detectors.available()) >= {
            "subspace",
            "ewma",
            "fourier",
            "ar",
            "holt-winters",
            "wavelet",
        }

    def test_returns_fresh_unfitted_instances(self):
        first = detectors.get("ewma")
        second = detectors.get("ewma")
        assert first is not second
        assert not first.is_fitted

    def test_subspace_type(self):
        assert isinstance(detectors.get("subspace"), SubspaceDetector)

    def test_temporal_types(self):
        for name in ("ewma", "fourier", "ar", "holt-winters", "wavelet"):
            detector = detectors.get(name)
            assert isinstance(detector, TemporalDetector)
            assert detector.name == name

    def test_case_and_whitespace_insensitive(self):
        assert detectors.get(" EWMA ").name == "ewma"

    def test_aliases(self):
        assert detectors.get("holtwinters").name == "holt-winters"
        assert detectors.get("spe").name == "subspace"
        assert detectors.get("pca").name == "subspace"

    def test_unknown_name(self):
        with pytest.raises(ModelError, match="unknown detector"):
            detectors.get("prophet")

    def test_empty_name(self):
        with pytest.raises(ModelError):
            detectors.get("  ")

    def test_kwargs_forwarded(self):
        detector = detectors.get("holt-winters", bin_seconds=300.0)
        assert detector.model.season_bins == 288
        detector = detectors.get("ewma", alpha=0.4)
        assert detector.model.alpha == 0.4

    def test_uniform_kwargs_accepted_everywhere(self):
        for name in (
            "subspace", "ewma", "fourier", "ar", "holt-winters", "wavelet"
        ):
            detector = detectors.get(
                name, confidence=0.95, bin_seconds=600.0
            )
            assert detector.confidence == 0.95


class TestResolveNames:
    def test_orders_and_dedups(self):
        assert detectors.resolve_names(
            ["EWMA", "subspace", "ewma", "spe"]
        ) == ("ewma", "subspace")

    def test_unknown_raises(self):
        with pytest.raises(ModelError, match="unknown detector"):
            detectors.resolve_names(["subspace", "lstm"])

    def test_empty_raises(self):
        with pytest.raises(ModelError):
            detectors.resolve_names([])


class TestRegister:
    def test_duplicate_rejected(self):
        with pytest.raises(ModelError, match="already registered"):
            detectors.register("ewma", lambda **kw: None)

    def test_custom_detector_round_trip(self):
        class Constant:
            name = "constant"

            def __init__(self, **kwargs):
                self._fitted = False

            def fit(self, measurements):
                self._fitted = True
                return self

            def score(self, measurements):
                return np.zeros(np.asarray(measurements).shape[0])

            def detect(self, measurements, confidence=None):
                from repro.detectors import DetectorAlarms

                scores = self.score(measurements)
                return DetectorAlarms(
                    scores=scores,
                    threshold=0.0,
                    flags=scores > 0.0,
                    confidence=confidence or 0.999,
                )

        detectors.register(
            "test-constant", lambda **kw: Constant(**kw), overwrite=True
        )
        detector = detectors.get("test-constant")
        assert isinstance(detector, detectors.Detector)
        assert detector.fit(np.ones((4, 2))).score(np.ones((4, 2))).shape == (4,)
