"""Versioned model lifecycle for the always-on detection service.

The service never scores a row against a half-updated model.  Instead it
holds a sequence of immutable :class:`ModelVersion` records, each
wrapping a fully fitted :class:`~repro.core.detection.SPEDetector`, and
:class:`ModelLifecycleManager` owns the transitions:

``bootstrap``
    Fit version 1 from a warmup block (the service will not accept
    traffic before this).
``append_rows``
    Fold freshly ingested rows into the running
    :class:`~repro.core.suffstats.SufficientStats` (pass 1 of a future
    refit, paid incrementally) and retain them for the separation
    moments pass.
``refit``
    Fit a candidate from the accumulated statistics via
    :meth:`TemporalCoordinator.fit_from_stats
    <repro.pipeline.sharded.TemporalCoordinator.fit_from_stats>`, then
    *atomically* swap it in: the swap is a single reference assignment
    under the manager lock, recorded with the exact row boundary, so a
    concurrent ingest scores either entirely under the old version or
    entirely under the new one — never a blend, never a dropped row.

Because the statistics path is bit-identical to a monolithic fit, an
offline :class:`~repro.pipeline.pipeline.DetectionPipeline` refit on the
rows ``[0, trained_rows)`` reproduces each version's detector exactly —
the parity property the service tests pin.
"""

from __future__ import annotations

import pickle
import threading
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro._util import atomic_pickle_dump, ensure_matrix
from repro.core.detection import SPEDetector
from repro.core.suffstats import DEFAULT_TILE_ROWS, SufficientStats
from repro.exceptions import CheckpointError, ServiceError
from repro.pipeline.sharded import TemporalCoordinator

__all__ = ["ModelVersion", "ModelLifecycleManager", "CHECKPOINT_SCHEMA_VERSION"]

#: Bump when the checkpoint payload shape changes.
CHECKPOINT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ModelVersion:
    """One immutable fitted model in the service's version sequence.

    Attributes
    ----------
    version:
        Monotonic id, 1 for the bootstrap fit.
    detector:
        The fully fitted :class:`~repro.core.detection.SPEDetector`.
    trained_rows:
        The model was fitted on absolute rows ``[0, trained_rows)``.
    activated_at_row:
        First absolute row index scored under this version — the
        hot-swap boundary.  Equals ``trained_rows`` for the bootstrap
        version (warmup rows are never scored).
    retired_at_row:
        First absolute row index *no longer* scored under this version,
        or ``None`` while active.
    """

    version: int
    detector: SPEDetector
    trained_rows: int
    activated_at_row: int
    retired_at_row: int | None = None

    @property
    def threshold(self) -> float:
        """The version's Q-statistic limit ``δ²_α``."""
        return self.detector.threshold

    @property
    def normal_rank(self) -> int:
        """The version's fitted normal-subspace rank."""
        return self.detector.normal_rank

    def summary(self) -> dict:
        """JSON-friendly description (event log / ``/version`` payload)."""
        return {
            "version": self.version,
            "trained_rows": self.trained_rows,
            "activated_at_row": self.activated_at_row,
            "retired_at_row": self.retired_at_row,
            "normal_rank": int(self.normal_rank),
            "threshold": float(self.threshold),
        }


class ModelLifecycleManager:
    """Owns model versions, history statistics, and atomic hot-swaps.

    Parameters mirror :class:`~repro.core.detection.SPEDetector`;
    ``refit_hook`` is a zero-argument callable invoked at the start of
    every candidate fit — the fault-injection tests use it to force a
    refit failure and assert the active model survives untouched.
    """

    def __init__(
        self,
        confidence: float = 0.999,
        threshold_sigma: float = 3.0,
        normal_rank: int | None = None,
        min_normal_rank: int = 1,
        max_normal_rank: int | None = None,
        tile_rows: int = DEFAULT_TILE_ROWS,
        refit_hook: Callable[[], None] | None = None,
        dtype: np.dtype | type | str = np.float64,
    ) -> None:
        self.confidence = confidence
        self.threshold_sigma = threshold_sigma
        self.requested_rank = normal_rank
        self.min_normal_rank = min_normal_rank
        self.max_normal_rank = max_normal_rank
        self.tile_rows = tile_rows
        self.refit_hook = refit_hook
        self.dtype = np.dtype(dtype)
        self._lock = threading.RLock()
        self._blocks: list[np.ndarray] = []
        self._rows = 0
        self._stats: SufficientStats | None = None
        self._current: ModelVersion | None = None
        self._retired: list[ModelVersion] = []
        #: Side-channel state from the checkpoint that restored this
        #: manager ({} when constructed fresh) — the service layer uses
        #: it to resume its own counters (warmup/stream row tallies).
        self.restored_extra: dict = {}

    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        """Absolute rows accumulated (warmup + ingested)."""
        with self._lock:
            return self._rows

    @property
    def num_links(self) -> int:
        """Measurement width ``m`` fixed by the warmup block."""
        with self._lock:
            if self._stats is None:
                raise ServiceError("bootstrap the lifecycle first")
            return self._stats.num_columns

    @property
    def current(self) -> ModelVersion:
        """The active model version (atomic read)."""
        with self._lock:
            if self._current is None:
                raise ServiceError(
                    "no model is active: call bootstrap() first"
                )
            return self._current

    @property
    def is_bootstrapped(self) -> bool:
        with self._lock:
            return self._current is not None

    def version_history(self) -> list[ModelVersion]:
        """Every version ever activated, oldest first (active one last)."""
        with self._lock:
            history = list(self._retired)
            if self._current is not None:
                history.append(self._current)
            return history

    # ------------------------------------------------------------------
    def bootstrap(self, warmup: np.ndarray) -> ModelVersion:
        """Fit version 1 from a ``(t, m)`` warmup block."""
        warmup = ensure_matrix(
            warmup, name="warmup", error=ServiceError, check_finite=False
        )
        if warmup.shape[0] < 2:
            raise ServiceError(
                f"warmup needs at least 2 rows, got {warmup.shape[0]}"
            )
        with self._lock:
            if self._current is not None:
                raise ServiceError("lifecycle is already bootstrapped")
            self._stats = SufficientStats.from_block(
                warmup, start_row=0, tile_rows=self.tile_rows
            )
            self._blocks = [warmup]
            self._rows = warmup.shape[0]
            detector = self._fit_candidate_locked()
            self._current = ModelVersion(
                version=1,
                detector=detector,
                trained_rows=self._rows,
                activated_at_row=self._rows,
            )
            return self._current

    @classmethod
    def from_fitted(
        cls,
        detector: SPEDetector,
        stats: SufficientStats,
        blocks: Sequence[np.ndarray],
        rows: int,
        **kwargs,
    ) -> "ModelLifecycleManager":
        """Adopt an externally fitted version-1 model.

        The multi-tenant fleet amortizes bootstrap fits across tenants
        on a shared worker pool, so the fit happens *outside* the
        manager; this constructor installs the result with the same
        bookkeeping :meth:`bootstrap` would have produced.  ``stats``
        and ``blocks`` must cover exactly the ``rows`` the detector was
        trained on (the state :meth:`history_snapshot` returns), so a
        later :meth:`refit` or :meth:`restore` reproduces the detector
        bit-identically.  ``kwargs`` are the constructor's fit knobs.
        """
        manager = cls(**kwargs)
        if rows < 2:
            raise ServiceError(f"a fitted history needs >= 2 rows, got {rows}")
        with manager._lock:
            manager._stats = stats
            manager._blocks = list(blocks)
            manager._rows = int(rows)
            manager._current = ModelVersion(
                version=1,
                detector=detector,
                trained_rows=int(rows),
                activated_at_row=int(rows),
            )
        return manager

    def history_snapshot(
        self,
    ) -> tuple[SufficientStats, tuple[np.ndarray, ...], int]:
        """Consistent ``(stats, blocks, rows)`` snapshot of the history.

        This is the state :meth:`fit_candidate` fits from, exposed so
        external schedulers (the fleet's shared pool) can run the same
        fit in a worker process and install the result via
        :meth:`activate` — bit-identical to an in-process refit, since
        both paths feed identical statistics to the same kernel.
        """
        with self._lock:
            if self._stats is None:
                raise ServiceError("bootstrap the lifecycle first")
            return self._stats, tuple(self._blocks), self._rows

    def append_rows(self, block: np.ndarray) -> None:
        """Fold newly scored rows into the history (post-scoring)."""
        block = ensure_matrix(
            block, name="rows", error=ServiceError, check_finite=False
        )
        if block.shape[0] == 0:
            return
        with self._lock:
            if self._stats is None:
                raise ServiceError("bootstrap the lifecycle first")
            if block.shape[1] != self._stats.num_columns:
                raise ServiceError(
                    f"row width {block.shape[1]} != expected "
                    f"{self._stats.num_columns}"
                )
            chunk = SufficientStats.from_block(
                block, start_row=self._rows, tile_rows=self.tile_rows
            )
            self._stats = self._stats.merge(chunk)
            self._blocks.append(block)
            self._rows += block.shape[0]

    # ------------------------------------------------------------------
    def _coordinator(self) -> TemporalCoordinator:
        return TemporalCoordinator(
            workers=1,
            confidence=self.confidence,
            threshold_sigma=self.threshold_sigma,
            normal_rank=self.requested_rank,
            min_normal_rank=self.min_normal_rank,
            max_normal_rank=self.max_normal_rank,
            tile_rows=self.tile_rows,
            dtype=self.dtype,
        )

    def _fit_candidate_locked(self) -> SPEDetector:
        """Fit a detector from the current snapshot (lock already held)."""
        stats = self._stats
        blocks = tuple(self._blocks)
        return self._fit_candidate(stats, blocks)

    def _fit_candidate(
        self, stats: SufficientStats, blocks: tuple[np.ndarray, ...]
    ) -> SPEDetector:
        if self.refit_hook is not None:
            self.refit_hook()
        fit = self._coordinator().fit_from_stats(
            stats, lambda: iter(blocks)
        )
        return fit.detector

    def fit_candidate(self) -> tuple[SPEDetector, int]:
        """Fit a candidate model from a consistent history snapshot.

        Runs *outside* the manager lock (ingestion keeps flowing while
        the candidate fits); returns the detector and the number of rows
        it was trained on.  Raises whatever the fit raises — the caller
        decides whether that is fatal.
        """
        with self._lock:
            if self._stats is None:
                raise ServiceError("bootstrap the lifecycle first")
            stats = self._stats
            blocks = tuple(self._blocks)
            trained_rows = self._rows
        detector = self._fit_candidate(stats, blocks)
        return detector, trained_rows

    def refit(self) -> ModelVersion:
        """Fit a candidate and atomically hot-swap it in.

        The swap itself is a single reference assignment under the lock:
        the retiring version records ``retired_at_row`` equal to the new
        version's ``activated_at_row``, so the boundary partitions the
        row stream exactly — no row is scored under both models and none
        is dropped.
        """
        detector, trained_rows = self.fit_candidate()
        return self.activate(detector, trained_rows)

    def activate(
        self, detector: SPEDetector, trained_rows: int
    ) -> ModelVersion:
        """Atomically install a fitted candidate as the new version."""
        with self._lock:
            if self._current is None:
                raise ServiceError("bootstrap the lifecycle first")
            boundary = self._rows
            retiring = self._current
            self._retired.append(
                ModelVersion(
                    version=retiring.version,
                    detector=retiring.detector,
                    trained_rows=retiring.trained_rows,
                    activated_at_row=retiring.activated_at_row,
                    retired_at_row=boundary,
                )
            )
            self._current = ModelVersion(
                version=retiring.version + 1,
                detector=detector,
                trained_rows=trained_rows,
                activated_at_row=boundary,
            )
            return self._current

    # ------------------------------------------------------------------
    def checkpoint(self, path: str | Path, extra: dict | None = None) -> dict:
        """Serialize the full lifecycle state to ``path`` atomically.

        The payload carries the merged sufficient statistics, the raw
        history blocks (needed by the separation rule's moments pass on
        the next refit), the version bookkeeping, the fit configuration,
        and an optional ``extra`` dict of caller state (the service
        stores its row counters there).  The write goes through
        :func:`~repro._util.atomic_pickle_dump` — temp file in the same
        directory, fsync, ``os.replace`` — so a crash mid-write leaves
        the previous complete checkpoint, never a torn file.  Returns
        the summary section for logging.
        """
        with self._lock:
            if self._stats is None or self._current is None:
                raise ServiceError("bootstrap the lifecycle first")
            payload = {
                "schema_version": CHECKPOINT_SCHEMA_VERSION,
                "config": {
                    "confidence": self.confidence,
                    "threshold_sigma": self.threshold_sigma,
                    "normal_rank": self.requested_rank,
                    "min_normal_rank": self.min_normal_rank,
                    "max_normal_rank": self.max_normal_rank,
                    "tile_rows": self.tile_rows,
                    "dtype": str(self.dtype),
                },
                "stats": self._stats,
                "blocks": list(self._blocks),
                "rows": self._rows,
                "current": self._current.summary(),
                "retired": [v.summary() for v in self._retired],
                "extra": dict(extra or {}),
            }
        atomic_pickle_dump(path, payload)
        return payload["current"]

    @classmethod
    def restore(cls, path: str | Path) -> "ModelLifecycleManager":
        """Rebuild a lifecycle manager from a checkpoint.

        The active detector is *refit from the checkpointed statistics*
        rather than unpickled, which keeps the checkpoint free of
        fitted-model internals; by the sufficient-statistics exactness
        guarantee the restored detector is bit-identical to the one that
        wrote the checkpoint (the restore tests pin threshold, mean, and
        components bitwise).

        A file that cannot be read or unpickled — truncated, scribbled,
        missing — raises :class:`~repro.exceptions.CheckpointError`; a
        readable payload from an incompatible schema raises
        :class:`~repro.exceptions.ServiceError`.
        """
        try:
            with Path(path).open("rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, MemoryError, ValueError) as err:
            raise CheckpointError(
                f"unreadable service checkpoint {path}: {err}"
            ) from err
        if not isinstance(payload, dict):
            raise CheckpointError(
                f"malformed service checkpoint {path}: "
                f"expected dict payload, got {type(payload).__name__}"
            )
        if payload.get("schema_version") != CHECKPOINT_SCHEMA_VERSION:
            raise ServiceError(
                "unsupported checkpoint schema "
                f"{payload.get('schema_version')!r}"
            )
        try:
            config = payload["config"]
            manager = cls(
                confidence=config["confidence"],
                threshold_sigma=config["threshold_sigma"],
                normal_rank=config["normal_rank"],
                min_normal_rank=config["min_normal_rank"],
                max_normal_rank=config["max_normal_rank"],
                tile_rows=config["tile_rows"],
                # Schema-1 checkpoints written before the dtype knob
                # existed carry no entry; those models scored in float64.
                dtype=config.get("dtype", "float64"),
            )
            current = payload["current"]
        except (KeyError, TypeError) as err:
            raise CheckpointError(
                f"malformed service checkpoint {path}: {err}"
            ) from err
        manager.restored_extra = dict(payload.get("extra") or {})
        with manager._lock:
            manager._stats = payload["stats"]
            manager._blocks = list(payload["blocks"])
            manager._rows = payload["rows"]
            # Refit on the trained prefix only: rows ingested after the
            # checkpointed model was fitted belong to the *next* refit.
            trained = current["trained_rows"]
            stats, blocks = _history_prefix(
                manager._blocks, trained, manager.tile_rows
            )
            detector = manager._fit_candidate(stats, blocks)
            manager._current = ModelVersion(
                version=current["version"],
                detector=detector,
                trained_rows=trained,
                activated_at_row=current["activated_at_row"],
            )
        return manager


def _history_prefix(
    blocks: list[np.ndarray], rows: int, tile_rows: int
) -> tuple[SufficientStats, tuple[np.ndarray, ...]]:
    """Statistics + chunk list covering exactly the first ``rows`` rows."""
    prefix: list[np.ndarray] = []
    seen = 0
    for block in blocks:
        if seen >= rows:
            break
        take = min(block.shape[0], rows - seen)
        prefix.append(block[:take])
        seen += take
    if seen != rows:
        raise ServiceError(
            f"history holds {seen} rows but the checkpoint claims {rows}"
        )
    stats: SufficientStats | None = None
    offset = 0
    for block in prefix:
        chunk = SufficientStats.from_block(
            block, start_row=offset, tile_rows=tile_rows
        )
        stats = chunk if stats is None else stats.merge(chunk)
        offset += block.shape[0]
    return stats, tuple(prefix)
