"""Routing-anomaly diagnosis (the paper's §9 "ongoing work").

A routing change (link failure, IS-IS weight change) shifts *groups* of
OD flows simultaneously.  Seen from the original routing matrix, the
measurement vector moves by

    Δy = Σ_{j moved} x_j · (A'_j − A_j)

— a multi-flow anomaly (§7.2) whose per-flow signatures are the
*differences* of routing-matrix columns.  This module builds one
hypothesis per candidate inter-PoP edge failure and identifies the best
explanation of a flagged measurement among them plus the ordinary
single-flow candidates.

This realizes the paper's proposed extension with the machinery the
paper itself supplies: the hypothesis framework of §5.2/§7.2 with an
enlarged anomaly set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.identification import identify_multi_flow
from repro.core.subspace import SubspaceModel
from repro.exceptions import ModelError, RoutingError
from repro.routing.events import LinkFailure, apply_events, reroute_delta
from repro.routing.routing_matrix import RoutingMatrix
from repro.topology.network import Network

__all__ = ["RoutingAnomalyIdentifier", "RoutingHypothesis", "RoutingDiagnosis"]


@dataclass(frozen=True)
class RoutingHypothesis:
    """One candidate routing event and its link-space signature.

    Attributes
    ----------
    failure:
        The candidate failed edge.
    moved_flows:
        Indices of OD flows the failure reroutes.
    signature:
        ``(m, k)`` matrix of unit-norm per-flow delta columns
        ``(A'_j − A_j)/‖·‖``.
    column_norms:
        Norms used in the normalization (to recover byte intensities).
    """

    failure: LinkFailure
    moved_flows: tuple[int, ...]
    signature: np.ndarray
    column_norms: np.ndarray


@dataclass(frozen=True)
class RoutingDiagnosis:
    """Outcome of routing-anomaly identification at one timestep.

    Attributes
    ----------
    kind:
        ``"routing"`` when a reroute hypothesis won, ``"volume"`` when a
        single-flow volume anomaly explains the data better.
    failure:
        The winning candidate edge (None for volume anomalies).
    flow_index:
        The winning single flow (None for routing anomalies).
    intensities:
        Estimated per-moved-flow traffic (bytes) for routing anomalies.
    residual_spe:
        Residual energy left unexplained by the winner.
    """

    kind: str
    failure: LinkFailure | None
    flow_index: int | None
    intensities: np.ndarray | None
    residual_spe: float


class RoutingAnomalyIdentifier:
    """Identify link-failure reroutes from link measurements.

    Parameters
    ----------
    network:
        The topology (supplies candidate edges).
    routing:
        The *operational* routing matrix (pre-event).
    model:
        A fitted subspace model over the same link set.
    """

    def __init__(
        self,
        network: Network,
        routing: RoutingMatrix,
        model: SubspaceModel,
    ) -> None:
        if routing.num_links != model.num_links:
            raise ModelError(
                f"routing matrix covers {routing.num_links} links but the "
                f"model expects {model.num_links}"
            )
        self.network = network
        self.routing = routing
        self.model = model
        self._theta = routing.normalized_columns()
        self._hypotheses = self._build_hypotheses()

    # ------------------------------------------------------------------
    @property
    def hypotheses(self) -> list[RoutingHypothesis]:
        """All candidate single-edge failures with nontrivial signatures."""
        return list(self._hypotheses)

    def _build_hypotheses(self) -> list[RoutingHypothesis]:
        seen_edges: set[frozenset[str]] = set()
        hypotheses = []
        for link in self.network.inter_pop_links:
            edge = frozenset((link.source, link.target))
            if edge in seen_edges:
                continue
            seen_edges.add(edge)
            failure = LinkFailure(link.source, link.target)
            try:
                after = apply_events(self.network, [failure])
            except RoutingError:
                # Failure disconnects the network; not diagnosable as a
                # reroute (every flow through it simply vanishes).
                continue
            moved = reroute_delta(self.routing, after)
            if not moved:
                continue
            indices = tuple(self.routing.od_index(o, d) for o, d in moved)
            deltas = after.matrix[:, list(indices)] - self.routing.matrix[
                :, list(indices)
            ]
            norms = np.linalg.norm(deltas, axis=0)
            keep = norms > 1e-12
            if not np.any(keep):
                continue
            hypotheses.append(
                RoutingHypothesis(
                    failure=failure,
                    moved_flows=tuple(np.array(indices)[keep]),
                    signature=deltas[:, keep] / norms[keep],
                    column_norms=norms[keep],
                )
            )
        return hypotheses

    # ------------------------------------------------------------------
    def identify(self, measurement: np.ndarray) -> RoutingDiagnosis:
        """Best explanation of ``measurement``: a reroute or a volume
        anomaly.

        Offers every single OD flow plus every candidate edge failure to
        the §7.2 multi-flow identifier and reports the winner.
        """
        measurement = np.asarray(measurement, dtype=np.float64)
        n = self.routing.num_flows
        hypotheses: list[np.ndarray] = [self._theta[:, [j]] for j in range(n)]
        for hypothesis in self._hypotheses:
            hypotheses.append(hypothesis.signature)

        outcome = identify_multi_flow(self.model, hypotheses, measurement)
        if outcome.hypothesis_index < n:
            return RoutingDiagnosis(
                kind="volume",
                failure=None,
                flow_index=outcome.hypothesis_index,
                intensities=None,
                residual_spe=outcome.residual_spe,
            )
        winner = self._hypotheses[outcome.hypothesis_index - n]
        intensities = np.asarray(outcome.magnitudes) / winner.column_norms
        return RoutingDiagnosis(
            kind="routing",
            failure=winner.failure,
            flow_index=None,
            intensities=intensities,
            residual_spe=outcome.residual_spe,
        )
