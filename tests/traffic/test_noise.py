"""Tests for repro.traffic.noise."""

import numpy as np
import pytest

from repro.exceptions import TrafficError
from repro.traffic.noise import (
    GaussianNoise,
    LognormalNoise,
    NoNoise,
)
from repro.traffic.noise import make_noise_model


@pytest.fixture
def means():
    return np.array([1e4, 1e6, 1e8])


class TestGaussianNoise:
    def test_shape(self, means, rng):
        noise = GaussianNoise().sample(means, 50, rng)
        assert noise.shape == (50, 3)

    def test_zero_mean(self, means, rng):
        noise = GaussianNoise(relative_std=0.1).sample(means, 20_000, rng)
        assert np.allclose(noise.mean(axis=0) / means, 0.0, atol=0.01)

    def test_std_scales_with_mean_power(self, means, rng):
        model = GaussianNoise(relative_std=100.0, exponent=0.5)
        noise = model.sample(means, 20_000, rng)
        expected = 100.0 * np.sqrt(means)
        assert np.allclose(noise.std(axis=0), expected, rtol=0.05)

    def test_floor_applies_to_small_flows(self, rng):
        model = GaussianNoise(relative_std=0.01, exponent=1.0, floor=1e5)
        stds = model.std_for(np.array([1.0, 1e9]))
        assert stds[0] == pytest.approx(1e5)
        assert stds[1] == pytest.approx(1e7)

    def test_validation(self):
        with pytest.raises(Exception):
            GaussianNoise(relative_std=-1.0)

    def test_negative_means_rejected(self, rng):
        with pytest.raises(TrafficError):
            GaussianNoise().sample(np.array([-1.0]), 10, rng)


class TestLognormalNoise:
    def test_shape(self, means, rng):
        noise = LognormalNoise(sigma=0.2).sample(means, 50, rng)
        assert noise.shape == (50, 3)

    def test_recentred_to_zero_mean(self, means, rng):
        noise = LognormalNoise(sigma=0.3).sample(means, 100_000, rng)
        assert np.allclose(noise.mean(axis=0) / means, 0.0, atol=0.02)

    def test_right_skewed(self, rng):
        noise = LognormalNoise(sigma=0.5).sample(np.array([1e6]), 100_000, rng)
        column = noise[:, 0]
        skew = np.mean(((column - column.mean()) / column.std()) ** 3)
        assert skew > 0.5

    def test_zero_sigma_is_silent(self, means, rng):
        noise = LognormalNoise(sigma=0.0).sample(means, 10, rng)
        assert np.all(noise == 0)


class TestNoNoise:
    def test_all_zero(self, means, rng):
        assert np.all(NoNoise().sample(means, 10, rng) == 0)


class TestFactory:
    def test_gaussian(self):
        model = make_noise_model("gaussian", relative_std=0.1)
        assert isinstance(model, GaussianNoise)

    def test_lognormal(self):
        assert isinstance(make_noise_model("lognormal"), LognormalNoise)

    def test_none(self):
        assert isinstance(make_noise_model("none"), NoNoise)

    def test_case_insensitive(self):
        assert isinstance(make_noise_model("GAUSSIAN"), GaussianNoise)

    def test_unknown_rejected(self):
        with pytest.raises(TrafficError):
            make_noise_model("pink")
