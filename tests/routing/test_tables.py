"""Tests for repro.routing.tables."""

import pytest

from repro.exceptions import RoutingError
from repro.routing import Route, RoutingTable


def simple_table() -> RoutingTable:
    return RoutingTable(
        {
            ("a", "b"): (Route(("a", "b"), ("a->b",)),),
            ("a", "a"): (Route(("a",), ("a=a",)),),
        }
    )


class TestRoute:
    def test_properties(self):
        route = Route(("a", "b", "c"), ("a->b", "b->c"), fraction=0.5)
        assert route.origin == "a"
        assert route.destination == "c"
        assert route.num_hops == 2
        assert route.fraction == pytest.approx(0.5)

    def test_empty_pops_rejected(self):
        with pytest.raises(RoutingError):
            Route((), ("a->b",))

    def test_empty_links_rejected(self):
        with pytest.raises(RoutingError):
            Route(("a", "b"), ())

    def test_fraction_bounds(self):
        with pytest.raises(RoutingError):
            Route(("a", "b"), ("a->b",), fraction=0.0)
        with pytest.raises(RoutingError):
            Route(("a", "b"), ("a->b",), fraction=1.5)


class TestRoutingTable:
    def test_route_lookup(self):
        table = simple_table()
        assert table.route("a", "b").links == ("a->b",)

    def test_unknown_od_pair_rejected(self):
        with pytest.raises(RoutingError):
            simple_table().routes("b", "a")

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(RoutingError, match="sum"):
            RoutingTable(
                {("a", "b"): (Route(("a", "b"), ("a->b",), fraction=0.6),)}
            )

    def test_ecmp_fractions_accepted(self):
        table = RoutingTable(
            {
                ("a", "c"): (
                    Route(("a", "b", "c"), ("a->b", "b->c"), fraction=0.5),
                    Route(("a", "d", "c"), ("a->d", "d->c"), fraction=0.5),
                )
            }
        )
        assert len(table.routes("a", "c")) == 2

    def test_single_route_accessor_rejects_ecmp(self):
        table = RoutingTable(
            {
                ("a", "c"): (
                    Route(("a", "b", "c"), ("a->b", "b->c"), fraction=0.5),
                    Route(("a", "d", "c"), ("a->d", "d->c"), fraction=0.5),
                )
            }
        )
        with pytest.raises(RoutingError, match="ECMP"):
            table.route("a", "c")

    def test_route_filed_under_wrong_pair_rejected(self):
        with pytest.raises(RoutingError, match="wrong OD pair"):
            RoutingTable({("a", "c"): (Route(("a", "b"), ("a->b",)),)})

    def test_empty_route_set_rejected(self):
        with pytest.raises(RoutingError):
            RoutingTable({("a", "b"): ()})

    def test_links_used(self):
        assert simple_table().links_used() == {"a->b", "a=a"}

    def test_container_protocol(self):
        table = simple_table()
        assert len(table) == 2
        assert ("a", "b") in table
        assert ("b", "a") not in table
        assert set(table) == {("a", "b"), ("a", "a")}
