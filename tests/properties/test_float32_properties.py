"""Property-based tests for the validated float32 scoring mode.

The analytical claim (see :func:`repro.core.subspace.float32_spe_band`):
with rows centered in float64 before the cast, the float32 SPE differs
from the float64 SPE by at most ``16·(m+2)·u32·‖y − ȳ‖²``.  These tests
pin the bound over arbitrary well-conditioned ensembles, and pin the
consequence the service relies on — alarm decisions can only disagree
inside the band around the threshold.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.detection import SPEDetector
from repro.core.subspace import SubspaceModel, float32_spe_band


def matrices(min_rows=8, max_rows=60, min_cols=3, max_cols=10):
    """Random finite measurement matrices with bounded magnitude."""
    shapes = st.tuples(
        st.integers(min_rows, max_rows), st.integers(min_cols, max_cols)
    )
    return shapes.flatmap(
        lambda shape: hnp.arrays(
            dtype=np.float64,
            shape=shape,
            elements=st.floats(
                min_value=-1e6,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
        )
    )


@settings(max_examples=60, deadline=None)
@given(matrices(), st.integers(0, 9))
def test_float32_spe_stays_inside_the_band(data, rank_seed):
    from repro.core.pca import PCA

    pca = PCA().fit(data)
    rank = min(rank_seed, pca.num_components)
    model64 = SubspaceModel(pca, rank)
    model32 = SubspaceModel(pca, rank)
    model32.dtype = np.dtype(np.float32)
    spe64 = np.atleast_1d(model64.spe(data))
    spe32 = np.atleast_1d(model32.spe(data))
    band = np.atleast_1d(
        float32_spe_band(model64.state_magnitude(data), pca.num_components)
    )
    assert np.all(np.abs(spe32 - spe64) <= band)


@settings(max_examples=40, deadline=None)
@given(matrices(min_rows=16))
def test_alarm_disagreements_only_inside_the_band(data):
    d64 = SPEDetector(confidence=0.99).fit(data)
    d32 = SPEDetector(confidence=0.99, dtype="float32").fit(data)
    threshold = float(d64.threshold)
    assert float(d32.threshold) == threshold  # fit is float64 in both
    flags64 = d64.detect(data).flags
    flags32 = d32.detect(data).flags
    band = np.atleast_1d(
        float32_spe_band(d64.model.state_magnitude(data), data.shape[1])
    )
    spe64 = np.atleast_1d(d64.spe(data))
    disagree = flags64 != flags32
    assert np.all(np.abs(spe64[disagree] - threshold) <= band[disagree])


@settings(max_examples=60, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.integers(1, 20),
        elements=st.floats(min_value=0, max_value=1e12, allow_nan=False),
    ),
    st.integers(1, 2000),
)
def test_band_is_positive_and_monotone_in_magnitude(magnitudes, num_links):
    band = np.atleast_1d(float32_spe_band(magnitudes, num_links))
    assert np.all(band > 0)  # the underflow term keeps it off zero
    doubled = np.atleast_1d(float32_spe_band(2.0 * magnitudes, num_links))
    assert np.all(doubled >= band)
    # The relative term dominates at real traffic magnitudes.
    u32 = float(np.finfo(np.float32).eps)
    assert np.all(band >= 16.0 * (num_links + 2) * u32 * magnitudes)
