"""Tests for repro.core.online (§7.1 streaming deployment)."""

import numpy as np
import pytest

from repro.core import OnlineSubspaceDetector
from repro.exceptions import ModelError, NotFittedError


class TestWarmUp:
    def test_requires_warm_up(self, sprint1):
        detector = OnlineSubspaceDetector()
        with pytest.raises(NotFittedError):
            detector.process(sprint1.link_traffic[0])

    def test_warm_up_fits_model(self, sprint1):
        detector = OnlineSubspaceDetector(window_bins=288)
        detector.warm_up(sprint1.link_traffic[:288])
        assert detector.is_fitted
        assert detector.threshold > 0

    def test_warm_up_uses_trailing_window(self, sprint1):
        """Only the trailing ``window_bins`` rows seed the model."""
        detector = OnlineSubspaceDetector(window_bins=100)
        detector.warm_up(sprint1.link_traffic[:288])
        trailing = OnlineSubspaceDetector(window_bins=100)
        trailing.warm_up(sprint1.link_traffic[188:288])
        assert detector.threshold == trailing.threshold

    def test_validation(self):
        with pytest.raises(ModelError):
            OnlineSubspaceDetector(window_bins=1)
        with pytest.raises(ModelError):
            OnlineSubspaceDetector(refit_interval=0)


class TestStreaming:
    def test_processes_and_counts(self, sprint1):
        detector = OnlineSubspaceDetector(window_bins=288, refit_interval=None)
        detector.warm_up(sprint1.link_traffic[:288])
        outcomes = detector.process_block(sprint1.link_traffic[288:432])
        assert len(outcomes) == 144
        assert [o.index for o in outcomes] == list(range(144))

    def test_tracks_batch_detection_without_refresh(self, sprint1):
        """With refreshes disabled, the basis stays at the warm-up model:
        alarms match the batch detector, and scores stay within the
        small drift of the exponentially folded mean (the adapter folds
        every arrival; the old implementation froze the model between
        refits)."""
        from repro.core import SPEDetector

        train = sprint1.link_traffic[:504]
        test = sprint1.link_traffic[504:648]
        batch = SPEDetector().fit(train)
        expected = batch.detect(test)

        online = OnlineSubspaceDetector(window_bins=504, refit_interval=None)
        online.warm_up(train)
        outcomes = online.process_block(test)
        spe = np.array([o.spe for o in outcomes])
        assert np.allclose(spe, expected.spe, rtol=0.05)
        assert [o.is_anomalous for o in outcomes] == expected.flags.tolist()
        assert online.threshold == pytest.approx(batch.threshold, rel=1e-9)

    def test_matches_streaming_detector_bit_for_bit(self, sprint1):
        """The anti-drift contract of the consolidation: the per-arrival
        adapter and the windowed StreamingDetector are the *same*
        engine — identical SPE, thresholds and alarms when fed the same
        rows through one-row windows."""
        from repro.pipeline import DetectionPipeline

        train = sprint1.link_traffic[:504]
        test = sprint1.link_traffic[504:600]

        online = OnlineSubspaceDetector(window_bins=504, refit_interval=36)
        online.warm_up(train)
        outcomes = online.process_block(test)

        pipeline = DetectionPipeline().fit(train)
        streaming = pipeline.streaming(
            forgetting=1.0 / 504, refresh_interval=36
        )
        for outcome, row in zip(outcomes, test):
            window = streaming.process_window(row[None, :], refresh=False)
            assert outcome.spe == window.spe[0]
            assert outcome.threshold == window.threshold
            assert outcome.is_anomalous == bool(window.flags[0])

    def test_detects_injected_spike_in_stream(self, sprint1):
        detector = OnlineSubspaceDetector(
            window_bins=504, refit_interval=None, routing=sprint1.routing
        )
        detector.warm_up(sprint1.link_traffic[:504])
        flow = sprint1.routing.od_index("lon", "mad")
        y = sprint1.link_traffic[600].copy() + 6e7 * sprint1.routing.column(flow)
        outcome = detector.process(y)
        assert outcome.is_anomalous
        assert outcome.flow_index == flow
        assert outcome.od_pair == ("lon", "mad")
        assert outcome.estimated_bytes == pytest.approx(6e7, rel=0.35)

    def test_refit_happens_on_schedule(self, sprint1):
        detector = OnlineSubspaceDetector(window_bins=288, refit_interval=50)
        detector.warm_up(sprint1.link_traffic[:288])
        outcomes = detector.process_block(sprint1.link_traffic[288:408])
        ages = [o.model_age for o in outcomes]
        assert max(ages) < 50
        # Age resets after each refit.
        assert ages[49] == 49 and ages[50] == 0

    def test_no_identification_without_routing(self, sprint1):
        detector = OnlineSubspaceDetector(window_bins=504, refit_interval=None)
        detector.warm_up(sprint1.link_traffic[:504])
        flow = sprint1.routing.od_index("lon", "mad")
        y = sprint1.link_traffic[600].copy() + 8e7 * sprint1.routing.column(flow)
        outcome = detector.process(y)
        assert outcome.is_anomalous
        assert outcome.flow_index is None

    def test_threshold_stable_across_windows_at_fixed_rank(self, sprint1):
        """§7.1: the subspace model is reasonably stable over time.  At a
        fixed normal rank, thresholds fitted on the two half-weeks stay
        within a small factor (the halves differ in weekday/weekend mix,
        so exact equality is not expected)."""
        a = OnlineSubspaceDetector(
            window_bins=504, refit_interval=None, normal_rank=3
        )
        a.warm_up(sprint1.link_traffic[:504])
        b = OnlineSubspaceDetector(
            window_bins=504, refit_interval=None, normal_rank=3
        )
        b.warm_up(sprint1.link_traffic[504:])
        ratio = a.threshold / b.threshold
        assert 0.2 < ratio < 5.0

    def test_normal_subspace_stable_across_windows(self, sprint1):
        """The projection P P^T itself barely moves between half-weeks:
        principal angles between the two normal subspaces stay small."""
        from repro.core import PCA

        first = PCA().fit(sprint1.link_traffic[:504]).components[:, :3]
        second = PCA().fit(sprint1.link_traffic[504:]).components[:, :3]
        # Cosines of principal angles = singular values of P1^T P2.
        cosines = np.linalg.svd(first.T @ second, compute_uv=False)
        assert cosines.min() > 0.8

    def test_vector_shape_validation(self, sprint1):
        detector = OnlineSubspaceDetector(window_bins=288)
        detector.warm_up(sprint1.link_traffic[:288])
        with pytest.raises(ModelError):
            detector.process(sprint1.link_traffic[:2])
