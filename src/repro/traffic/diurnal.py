"""Diurnal and weekly temporal patterns.

Backbone traffic follows strong daily and weekly cycles; the paper's
Figure 4 shows these cycles dominating the first principal components of
link traffic.  This module builds the *shared temporal basis* from which
the generator composes per-flow timeseries, and also provides the Fourier
periods the paper uses for its baseline analysis (7d, 5d, 3d, 24h, 12h,
6h, 3h, 1.5h — §6.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive
from repro.exceptions import TrafficError

__all__ = [
    "DiurnalProfile",
    "weekly_basis",
    "fourier_periods_hours",
    "time_of_day_hours",
    "day_of_week",
]

#: Fourier basis periods used by the paper's baseline (§6.2), in hours.
_PAPER_PERIODS_HOURS = (7 * 24.0, 5 * 24.0, 3 * 24.0, 24.0, 12.0, 6.0, 3.0, 1.5)

_SECONDS_PER_HOUR = 3600.0
_HOURS_PER_DAY = 24.0


def fourier_periods_hours() -> tuple[float, ...]:
    """The eight basis periods of the paper's Fourier baseline, in hours."""
    return _PAPER_PERIODS_HOURS


def time_of_day_hours(num_bins: int, bin_seconds: float) -> np.ndarray:
    """Hour-of-day (0..24) for each time bin, starting at midnight Monday."""
    check_positive(bin_seconds, "bin_seconds")
    if num_bins < 1:
        raise TrafficError(f"num_bins must be >= 1, got {num_bins}")
    hours = np.arange(num_bins) * (bin_seconds / _SECONDS_PER_HOUR)
    return hours % _HOURS_PER_DAY


def day_of_week(num_bins: int, bin_seconds: float) -> np.ndarray:
    """Day index (0=Monday .. 6=Sunday) for each time bin."""
    check_positive(bin_seconds, "bin_seconds")
    hours = np.arange(num_bins) * (bin_seconds / _SECONDS_PER_HOUR)
    return (hours // _HOURS_PER_DAY).astype(int) % 7


@dataclass(frozen=True)
class DiurnalProfile:
    """A normalized daily activity cycle with a weekend damping factor.

    The profile is a truncated Fourier series over the 24-hour day:

    ``s(h) = Σ_k amplitude_k · cos(2π·k·(h − peak_hour_k)/24)``

    scaled so that its peak magnitude is 1, then multiplied by
    ``weekend_factor`` on Saturdays and Sundays.  Values are *relative*
    modulations around a mean of zero; the generator applies them as
    ``mean · (1 + strength · s(t))``.

    Parameters
    ----------
    harmonic_amplitudes:
        Amplitude of each daily harmonic (k = 1, 2, ...).
    peak_hour:
        Hour of day (0..24) at which the fundamental peaks.
    weekend_factor:
        Multiplier applied to the cycle on days 5 and 6 (Sat/Sun); values
        below 1 flatten weekend traffic, as observed on commercial
        backbones.
    """

    harmonic_amplitudes: tuple[float, ...] = (1.0, 0.35, 0.12)
    peak_hour: float = 14.0
    weekend_factor: float = 0.55

    def __post_init__(self) -> None:
        if not self.harmonic_amplitudes:
            raise TrafficError("at least one harmonic amplitude is required")
        if all(a == 0 for a in self.harmonic_amplitudes):
            raise TrafficError("harmonic amplitudes must not all be zero")
        if not 0.0 <= self.peak_hour < 24.0:
            raise TrafficError(f"peak_hour must lie in [0, 24), got {self.peak_hour}")
        if self.weekend_factor < 0:
            raise TrafficError(
                f"weekend_factor must be non-negative, got {self.weekend_factor}"
            )

    def evaluate(self, num_bins: int, bin_seconds: float) -> np.ndarray:
        """Sample the profile on a time grid; peak magnitude normalized to 1."""
        hours = time_of_day_hours(num_bins, bin_seconds)
        days = day_of_week(num_bins, bin_seconds)
        signal = np.zeros(num_bins)
        for k, amplitude in enumerate(self.harmonic_amplitudes, start=1):
            phase = 2.0 * np.pi * k * (hours - self.peak_hour) / _HOURS_PER_DAY
            signal += amplitude * np.cos(phase)
        peak = np.max(np.abs(signal))
        if peak > 0:
            signal = signal / peak
        weekend = (days == 5) | (days == 6)
        signal = np.where(weekend, self.weekend_factor * signal, signal)
        return signal

    def shifted(self, hours: float) -> "DiurnalProfile":
        """A copy of this profile whose peak occurs ``hours`` later."""
        return DiurnalProfile(
            harmonic_amplitudes=self.harmonic_amplitudes,
            peak_hour=(self.peak_hour + hours) % 24.0,
            weekend_factor=self.weekend_factor,
        )


def weekly_basis(
    num_bins: int,
    bin_seconds: float,
    num_patterns: int = 3,
    base_profile: DiurnalProfile | None = None,
) -> np.ndarray:
    """Build the shared temporal basis: a ``(num_patterns, num_bins)`` array.

    Pattern 0 is the base diurnal profile; later patterns are the same
    cycle shifted by a few hours (regional time-zone offsets) with milder
    weekend damping, plus a slow weekly trend for the final pattern.  Each
    row is normalized to peak magnitude 1.
    """
    if num_patterns < 1:
        raise TrafficError(f"num_patterns must be >= 1, got {num_patterns}")
    profile = base_profile if base_profile is not None else DiurnalProfile()
    rows = [profile.evaluate(num_bins, bin_seconds)]
    # Shifts are spread widely so the patterns are close to orthogonal and
    # the variance of link traffic distributes across as many principal
    # components as there are patterns (cf. paper Fig. 3, where 3-4 axes
    # carry non-negligible variance rather than one dominant axis).
    shift_hours = (6.0, 12.0, 18.0, 3.0)
    for k in range(1, num_patterns):
        if k - 1 < len(shift_hours):
            shifted = profile.shifted(shift_hours[k - 1])
            rows.append(shifted.evaluate(num_bins, bin_seconds))
        else:
            # Beyond the shift table, fall back to a slow weekly sinusoid.
            hours_abs = np.arange(num_bins) * (bin_seconds / _SECONDS_PER_HOUR)
            week_hours = 7 * 24.0
            row = np.cos(2.0 * np.pi * (k - len(shift_hours) + 1) * hours_abs / week_hours)
            rows.append(row / np.max(np.abs(row)))
    return np.vstack(rows[:num_patterns])
