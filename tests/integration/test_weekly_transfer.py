"""Model transfer over time (§7.1).

The paper argues the projection ``P Pᵀ`` is stable enough that the SVD
need only run occasionally.  These tests quantify that claim:

* across the two *halves* of one week (the paper's deployment scenario:
  a model fitted on recent history applied forward), the transferred
  subspace detects like a natively fitted one;
* across our two Sprint *worlds* the subspaces stay within tens of
  degrees — a conservative bound, since the synthetic weeks draw
  independent gravity structure and therefore differ more than real
  consecutive weeks on one network would.
"""

import numpy as np
import pytest

from repro.core import PCA, SPEDetector, principal_angles
from repro.core.qstatistic import q_threshold
from repro.datasets import build_dataset


@pytest.fixture(scope="module")
def sprint_weeks():
    return build_dataset("sprint-1"), build_dataset("sprint-2")


def transfer_detect(
    basis: np.ndarray, target: np.ndarray, confidence: float = 0.999
) -> tuple[np.ndarray, float]:
    """Detect on ``target`` using a foreign normal basis.

    Recentres with the target's mean and rescales the threshold from the
    target's residual moments — both cheap streaming statistics; no SVD.
    """
    mean = target.mean(axis=0)
    centered = target - mean
    residual = centered - (centered @ basis) @ basis.T
    spe = np.einsum("ij,ij->i", residual, residual)
    eigenvalues = np.sort(
        np.linalg.eigvalsh((residual.T @ residual) / (target.shape[0] - 1))
    )[::-1]
    rank = basis.shape[1]
    threshold = q_threshold(eigenvalues[: eigenvalues.size - rank], confidence)
    return spe > threshold, float(threshold)


class TestIntraWeekTransfer:
    def test_first_half_model_detects_second_half(self, sprint1):
        """Fit P on days 1-3.5, diagnose days 3.5-7 without refitting."""
        first, second = sprint1.link_traffic[:504], sprint1.link_traffic[504:]
        rank = SPEDetector().fit(first).normal_rank
        basis = PCA().fit(first).components[:, :rank]

        flags, _ = transfer_detect(basis, second)
        native = SPEDetector(normal_rank=rank).fit(second)
        native_flags = native.detect(second).flags

        agreement = float(np.mean(flags == native_flags))
        assert agreement > 0.97

        events = [
            e
            for e in sprint1.true_events
            if e.time_bin >= 504 and abs(e.amplitude_bytes) >= 2e7
        ]
        if events:
            caught = sum(1 for e in events if flags[e.time_bin - 504])
            assert caught >= len(events) * 0.6

    def test_half_week_subspace_angles_small(self, sprint1):
        p1 = PCA().fit(sprint1.link_traffic[:504]).components[:, :3]
        p2 = PCA().fit(sprint1.link_traffic[504:]).components[:, :3]
        angles = np.degrees(principal_angles(p1, p2))
        assert angles.max() < 25.0


class TestCrossWorldStability:
    def test_cross_week_angles_bounded(self, sprint_weeks):
        """Independent gravity draws rotate the weaker axes, but the
        subspaces stay within tens of degrees (dominant axes much
        closer)."""
        week1, week2 = sprint_weeks
        p1 = PCA().fit(week1.link_traffic).components[:, :3]
        p2 = PCA().fit(week2.link_traffic).components[:, :3]
        angles = np.degrees(principal_angles(p1, p2))
        assert angles.min() < 15.0  # the dominant direction barely moves
        assert angles.max() < 45.0

    def test_stale_mean_breaks_detection(self, sprint_weeks):
        """The mean must be refreshed: applying week-1's detector
        verbatim (mean, threshold and all) to week-2 data inflates SPE
        everywhere — recentring is the cheap, necessary step the
        transfer recipe above performs."""
        week1, week2 = sprint_weeks
        detector1 = SPEDetector().fit(week1.link_traffic)
        stale = detector1.detect(week2.link_traffic)
        assert stale.alarm_rate() > 0.15
