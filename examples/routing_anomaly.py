#!/usr/bin/env python3
"""Diagnosing a routing anomaly (the paper's §9 "ongoing work").

A link failure reroutes groups of OD flows at once.  Seen through the
original routing matrix, the measurement vector shifts along the
*difference* of routing columns for every moved flow — a multi-flow
anomaly whose signature is known per candidate edge.  This example:

1. fits the subspace model on normal Abilene traffic;
2. simulates the failure of an Abilene edge mid-trace;
3. shows that detection fires, that ordinary single-flow identification
   is the wrong tool for the event, and that the routing-anomaly
   identifier names the failed edge and recovers the moved traffic.

Run:  python examples/routing_anomaly.py
"""

import numpy as np

from repro import build_dataset
from repro.core import SPEDetector, identify_single_flow
from repro.core.routing_anomalies import RoutingAnomalyIdentifier
from repro.routing import LinkFailure, apply_events


def main() -> None:
    dataset = build_dataset("abilene")
    detector = SPEDetector(confidence=0.999).fit(dataset.link_traffic)
    print(f"Fitted on {dataset.name}: rank {detector.normal_rank}, "
          f"threshold {detector.threshold:.3e}")

    identifier = RoutingAnomalyIdentifier(
        dataset.network, dataset.routing, detector.model
    )
    print(f"Candidate edge failures with nontrivial reroutes: "
          f"{len(identifier.hypotheses)}")

    # Fail the Denver-Kansas City edge at one timestep.
    failure = LinkFailure("dnvr", "kscy")
    after = apply_events(dataset.network, [failure])
    time_bin = 400
    y = after.link_loads(dataset.od_traffic.values[time_bin])

    spe = float(detector.model.spe(y))
    print(f"\nEdge dnvr-kscy fails at bin {time_bin}:")
    print(f"  SPE {spe:.3e} vs threshold {detector.threshold:.3e} "
          f"-> detected: {spe > detector.threshold}")

    single = identify_single_flow(
        detector.model, dataset.routing.normalized_columns(), y
    )
    origin, destination = dataset.routing.od_pairs[single.flow_index]
    print(f"  naive single-flow identification blames: {origin}->{destination} "
          "(wrong tool: the event moved several flows)")

    diagnosis = identifier.identify(y)
    print(f"  routing-anomaly identification: kind={diagnosis.kind}", end="")
    if diagnosis.kind == "routing":
        print(f", edge {diagnosis.failure.source}-{diagnosis.failure.target}")
        hypothesis = next(
            h
            for h in identifier.hypotheses
            if {h.failure.source, h.failure.target}
            == {diagnosis.failure.source, diagnosis.failure.target}
        )
        moved = hypothesis.moved_flows
        true_traffic = dataset.od_traffic.values[time_bin, list(moved)]
        print(f"  {len(moved)} flows moved; recovered intensities "
              "(top 5 by traffic):")
        order = np.argsort(-true_traffic)[:5]
        for k in order:
            o, d = dataset.routing.od_pairs[moved[k]]
            print(
                f"    {o}->{d}: recovered {diagnosis.intensities[k]:.2e} "
                f"vs true {true_traffic[k]:.2e}"
            )
    else:
        print()

    # Control: a plain volume anomaly is still classified as such.
    flow = dataset.routing.od_index("sttl", "atla")
    y_volume = dataset.link_traffic[500] + 2e8 * dataset.routing.column(flow)
    control = identifier.identify(y_volume)
    o, d = dataset.routing.od_pairs[control.flow_index]
    print(f"\nControl (volume anomaly on sttl->atla): kind={control.kind}, "
          f"flow {o}->{d}")


if __name__ == "__main__":
    main()
