"""Online (streaming) application of the subspace method (§7.1).

The paper envisions the method as a first-level online monitoring tool:
the expensive part — the SVD — runs occasionally (the projection matrix
``P Pᵀ`` is stable week to week), while each arriving measurement vector
costs only one matrix-vector product.

:class:`OnlineSubspaceDetector` implements exactly that: it keeps a
sliding window of recent measurements, refits PCA / subspaces / threshold
every ``refit_interval`` arrivals, and scores each arrival against the
*current* model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.detection import SPEDetector
from repro.core.identification import identify_single_flow
from repro.core.quantification import quantify
from repro.exceptions import ModelError, NotFittedError
from repro.routing.routing_matrix import RoutingMatrix

__all__ = ["OnlineSubspaceDetector", "StreamDiagnosis"]


@dataclass(frozen=True)
class StreamDiagnosis:
    """Outcome for one streamed measurement vector.

    Attributes
    ----------
    index:
        Arrival counter (0-based, counting from the start of streaming).
    spe, threshold:
        The arrival's squared prediction error and the current limit.
    is_anomalous:
        Whether detection fired.
    flow_index, od_pair, estimated_bytes:
        Identification/quantification results — only populated when
        detection fired and a routing matrix was supplied.
    model_age:
        Arrivals processed since the model was last (re)fitted.
    """

    index: int
    spe: float
    threshold: float
    is_anomalous: bool
    flow_index: int | None
    od_pair: tuple[str, str] | None
    estimated_bytes: float | None
    model_age: int


class OnlineSubspaceDetector:
    """Streaming anomaly diagnosis with periodic refits.

    Parameters
    ----------
    window_bins:
        Sliding-window length used for (re)fitting — one week of
        10-minute bins (1008) in the paper's setting.
    refit_interval:
        Refit the PCA/threshold every this many arrivals (None = never
        refit after the initial fit; §7.1 notes weekly stability).
    confidence, threshold_sigma, normal_rank:
        Forwarded to :class:`~repro.core.detection.SPEDetector`.
    routing:
        Optional routing matrix enabling identification/quantification of
        flagged arrivals.
    """

    def __init__(
        self,
        window_bins: int = 1008,
        refit_interval: int | None = 144,
        confidence: float = 0.999,
        threshold_sigma: float = 3.0,
        normal_rank: int | None = None,
        routing: RoutingMatrix | None = None,
    ) -> None:
        if window_bins < 2:
            raise ModelError(f"window_bins must be >= 2, got {window_bins}")
        if refit_interval is not None and refit_interval < 1:
            raise ModelError(
                f"refit_interval must be >= 1 or None, got {refit_interval}"
            )
        self.window_bins = window_bins
        self.refit_interval = refit_interval
        self.routing = routing
        self._detector_kwargs = {
            "confidence": confidence,
            "threshold_sigma": threshold_sigma,
            "normal_rank": normal_rank,
        }
        self._window: deque[np.ndarray] = deque(maxlen=window_bins)
        self._detector: SPEDetector | None = None
        self._directions: np.ndarray | None = None
        self._arrivals = 0
        self._model_age = 0

    # ------------------------------------------------------------------
    def warm_up(self, measurements: np.ndarray) -> "OnlineSubspaceDetector":
        """Seed the window with historical data and fit the initial model."""
        measurements = np.asarray(measurements, dtype=np.float64)
        if measurements.ndim != 2:
            raise ModelError(
                f"warm-up data must be (t, m), got shape {measurements.shape}"
            )
        if measurements.shape[0] < 2:
            raise ModelError("warm-up needs at least 2 measurement vectors")
        for row in measurements[-self.window_bins :]:
            self._window.append(row.copy())
        self._refit()
        return self

    def _refit(self) -> None:
        window = np.vstack(self._window)
        detector = SPEDetector(**self._detector_kwargs)
        detector.fit(window)
        self._detector = detector
        self._model_age = 0
        if self.routing is not None:
            if self.routing.num_links != window.shape[1]:
                raise ModelError(
                    f"routing matrix covers {self.routing.num_links} links "
                    f"but measurements have {window.shape[1]}"
                )
            self._directions = self.routing.normalized_columns()

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """True once :meth:`warm_up` has run."""
        return self._detector is not None

    @property
    def threshold(self) -> float:
        """Current SPE limit."""
        if self._detector is None:
            raise NotFittedError("warm_up must be called before streaming")
        return self._detector.threshold

    def process(self, measurement: np.ndarray) -> StreamDiagnosis:
        """Score one arriving measurement vector and update the window.

        The vector is scored against the *pre-arrival* model, then pushed
        into the window; a refit triggers afterwards when due.  Anomalous
        arrivals are still admitted to the window — with a week of history
        a single spike barely perturbs the eigenstructure, and excluding
        flagged bins would make the model blind to slow drifts.
        """
        if self._detector is None:
            raise NotFittedError("warm_up must be called before streaming")
        measurement = np.asarray(measurement, dtype=np.float64)
        if measurement.ndim != 1:
            raise ModelError(
                f"streamed measurements must be vectors, got {measurement.shape}"
            )

        spe = float(self._detector.spe(measurement))
        threshold = self._detector.threshold
        is_anomalous = spe > threshold

        flow_index: int | None = None
        od_pair: tuple[str, str] | None = None
        estimated: float | None = None
        if is_anomalous and self._directions is not None:
            model = self._detector.model
            identification = identify_single_flow(
                model, self._directions, measurement
            )
            flow_index = identification.flow_index
            od_pair = self.routing.od_pairs[flow_index]
            estimated = quantify(model, self.routing, measurement, identification)

        outcome = StreamDiagnosis(
            index=self._arrivals,
            spe=spe,
            threshold=threshold,
            is_anomalous=is_anomalous,
            flow_index=flow_index,
            od_pair=od_pair,
            estimated_bytes=estimated,
            model_age=self._model_age,
        )

        self._window.append(measurement.copy())
        self._arrivals += 1
        self._model_age += 1
        if (
            self.refit_interval is not None
            and self._model_age >= self.refit_interval
            and len(self._window) >= 2
        ):
            self._refit()
        return outcome

    def process_block(self, measurements: np.ndarray) -> list[StreamDiagnosis]:
        """Stream a ``(t, m)`` block row by row."""
        measurements = np.asarray(measurements, dtype=np.float64)
        if measurements.ndim != 2:
            raise ModelError(
                f"expected a (t, m) block, got shape {measurements.shape}"
            )
        return [self.process(row) for row in measurements]
