"""The subspace method behind the :class:`~repro.detectors.base.Detector`
contract.

:class:`SubspaceDetector` adapts :class:`~repro.core.detection.SPEDetector`
(PCA + 3σ separation + Q-statistic limit): ``score`` is the squared
prediction error ``‖ỹ‖²`` and ``threshold_at`` is the analytic
Jackson–Mudholkar limit ``δ²_α``, so alarms match
:class:`~repro.pipeline.pipeline.DetectionPipeline` bin for bin.

When a routing matrix is bound at construction, :meth:`diagnose` also
exposes the full identify/quantify pipeline for flagged bins — the
comparison engine only needs detection, but operators dropping down from
``repro compare`` to ``repro diagnose`` should see the same model.
"""

from __future__ import annotations

import numpy as np

from repro.core.detection import SPEDetector
from repro.detectors.base import ResidualEnergyDetector
from repro.exceptions import ModelError
from repro.pipeline.pipeline import DetectionPipeline, PipelineResult
from repro.routing.routing_matrix import RoutingMatrix

__all__ = ["SubspaceDetector"]


class SubspaceDetector(ResidualEnergyDetector):
    """PCA subspace detector (the paper's method) as a :class:`Detector`.

    Parameters
    ----------
    confidence:
        Default Q-statistic confidence level (paper: 0.995 / 0.999).
    threshold_sigma, normal_rank, svd_method:
        Forwarded to :class:`~repro.core.detection.SPEDetector`
        (``svd_method`` selects the PCA eigensolver route; the default
        ``"auto"`` picks the economy path for the matrix shape).
    routing:
        Optional routing matrix; when given, :meth:`diagnose` identifies
        and quantifies flagged bins.
    """

    def __init__(
        self,
        confidence: float = 0.999,
        threshold_sigma: float = 3.0,
        normal_rank: int | None = None,
        routing: RoutingMatrix | None = None,
        svd_method: str = "auto",
    ) -> None:
        super().__init__(name="subspace", confidence=confidence)
        self._pipeline = DetectionPipeline(
            confidence=confidence,
            threshold_sigma=threshold_sigma,
            normal_rank=normal_rank,
            svd_method=svd_method,
        )
        self._routing = routing

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._pipeline.is_fitted

    @property
    def detector(self) -> SPEDetector:
        """The underlying fitted :class:`SPEDetector`."""
        return self._pipeline.detector

    @property
    def normal_rank(self) -> int:
        """The fitted normal-subspace rank ``r``."""
        self._require_fitted()
        return self._pipeline.normal_rank

    def fit(self, measurements: np.ndarray) -> "SubspaceDetector":
        self._pipeline.fit(self._as_block(measurements), routing=self._routing)
        return self

    def score(self, measurements: np.ndarray) -> np.ndarray:
        self._require_fitted()
        block = self._as_block(measurements)
        return np.atleast_1d(
            np.asarray(self.detector.model.spe(block), dtype=np.float64)
        )

    def threshold_at(self, confidence: float) -> float:
        self._require_fitted()
        return float(self.detector.threshold_at(confidence))

    # ------------------------------------------------------------------
    def diagnose(
        self,
        measurements: np.ndarray,
        confidence: float | None = None,
    ) -> PipelineResult:
        """Full detect → identify → quantify over a block.

        Requires a routing matrix bound at construction; see
        :meth:`DetectionPipeline.detect
        <repro.pipeline.pipeline.DetectionPipeline.detect>`.
        """
        self._require_fitted()
        if self._routing is None:
            raise ModelError(
                "SubspaceDetector has no routing matrix bound; construct "
                "with routing=... to diagnose"
            )
        return self._pipeline.detect(
            self._as_block(measurements), confidence=confidence
        )
