"""Tests for repro.validation.metrics (§6.1)."""

import numpy as np
import pytest

from repro.core.diagnosis import Diagnosis
from repro.exceptions import ValidationError
from repro.validation import match_diagnoses, score_against_truth
from repro.validation.ground_truth import TrueAnomaly


def diagnosis(time_bin, flow_index, estimated=1e7):
    return Diagnosis(
        time_bin=time_bin,
        spe=2.0,
        threshold=1.0,
        flow_index=flow_index,
        od_pair=("a", "b"),
        estimated_bytes=estimated,
        magnitude=1.0,
    )


def anomaly(time_bin, flow_index, size=1e7):
    return TrueAnomaly(time_bin=time_bin, flow_index=flow_index, size_bytes=size)


class TestMatchDiagnoses:
    def test_exact_match(self):
        matches = match_diagnoses([diagnosis(5, 1)], [anomaly(5, 1)])
        assert matches[0] is not None

    def test_miss(self):
        matches = match_diagnoses([diagnosis(6, 1)], [anomaly(5, 1)])
        assert matches[0] is None

    def test_tolerance(self):
        matches = match_diagnoses([diagnosis(6, 1)], [anomaly(5, 1)], time_tolerance=1)
        assert matches[0] is not None

    def test_each_diagnosis_used_once(self):
        d = diagnosis(5, 1)
        matches = match_diagnoses([d], [anomaly(5, 1), anomaly(5, 2)])
        assert matches[0] is d
        assert matches[1] is None

    def test_closest_wins(self):
        near, far = diagnosis(5, 1), diagnosis(7, 1)
        matches = match_diagnoses([far, near], [anomaly(5, 1)], time_tolerance=2)
        assert matches[0] is near

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValidationError):
            match_diagnoses([], [], time_tolerance=-1)


class TestScoreAgainstTruth:
    def test_perfect_run(self):
        truth = [anomaly(5, 1, size=1e7), anomaly(20, 3, size=2e7)]
        diagnoses = [diagnosis(5, 1, estimated=1e7), diagnosis(20, 3, estimated=2e7)]
        score = score_against_truth(diagnoses, truth, total_bins=100)
        assert score.detection_rate == 1.0
        assert score.false_alarm_rate == 0.0
        assert score.identification_rate == 1.0
        assert score.mean_quantification_error == pytest.approx(0.0)

    def test_missed_detection(self):
        truth = [anomaly(5, 1), anomaly(20, 3)]
        score = score_against_truth([diagnosis(5, 1)], truth, total_bins=100)
        assert score.detected == 1
        assert score.num_true == 2
        assert score.detection_rate == 0.5

    def test_false_alarms_counted(self):
        truth = [anomaly(5, 1)]
        diagnoses = [diagnosis(5, 1), diagnosis(50, 2), diagnosis(60, 2)]
        score = score_against_truth(diagnoses, truth, total_bins=100)
        assert score.false_alarms == 2
        assert score.num_normal_bins == 99
        assert score.false_alarm_rate == pytest.approx(2 / 99)

    def test_wrong_flow_hurts_identification_only(self):
        truth = [anomaly(5, 1)]
        score = score_against_truth([diagnosis(5, 9)], truth, total_bins=100)
        assert score.detection_rate == 1.0
        assert score.identification_rate == 0.0
        assert np.isnan(score.mean_quantification_error)

    def test_quantification_error(self):
        truth = [anomaly(5, 1, size=1e7)]
        score = score_against_truth(
            [diagnosis(5, 1, estimated=1.3e7)], truth, total_bins=100
        )
        assert score.mean_quantification_error == pytest.approx(0.3)

    def test_negative_estimates_compared_by_magnitude(self):
        truth = [anomaly(5, 1, size=1e7)]
        score = score_against_truth(
            [diagnosis(5, 1, estimated=-1e7)], truth, total_bins=100
        )
        assert score.mean_quantification_error == pytest.approx(0.0)

    def test_as_row_formatting(self):
        truth = [anomaly(5, 1, size=1e7)]
        score = score_against_truth(
            [diagnosis(5, 1, estimated=1.2e7)], truth, total_bins=100
        )
        row = score.as_row()
        assert row["Detection"] == "1/1"
        assert row["False Alarm"] == "0/99"
        assert row["Identification"] == "1/1"
        assert row["Quantification"] == "20.0%"

    def test_anomaly_outside_trace_rejected(self):
        with pytest.raises(ValidationError):
            score_against_truth([], [anomaly(500, 1)], total_bins=100)

    def test_empty_truth(self):
        score = score_against_truth([diagnosis(5, 1)], [], total_bins=100)
        assert score.detection_rate == 0.0
        assert score.false_alarms == 1
