"""The streaming (incremental-tracker) subspace method as a detector.

:class:`StreamingSubspaceDetector` puts the library's single streaming
engine — the exponentially weighted
:class:`~repro.core.incremental.IncrementalSubspaceTracker` behind
:class:`~repro.pipeline.streaming.StreamingDetector` — behind the batch
:class:`~repro.detectors.base.Detector` contract, so grid drivers and
the registry can sweep it next to the batch subspace method and the
temporal baselines.  ``fit`` performs the batch warm-up (PCA + 3σ
separation) and seeds the tracker from the batch moments; ``score`` is
the tracker's SPE under the warmed-up basis (stateless — the live,
folding surface is :meth:`streaming`).

Registered as ``streaming-subspace`` with the ``online-subspace`` alias:
both the per-arrival adapter (:class:`~repro.core.online.
OnlineSubspaceDetector`) and the windowed pipeline resolve to this same
engine, and the contract suite pins their scores to each other so the
two streaming surfaces cannot drift apart again.
"""

from __future__ import annotations

import numpy as np

from repro.core.qstatistic import q_threshold
from repro.detectors.base import ResidualEnergyDetector
from repro.pipeline.pipeline import DetectionPipeline
from repro.pipeline.streaming import StreamingDetector

__all__ = ["StreamingSubspaceDetector"]


class StreamingSubspaceDetector(ResidualEnergyDetector):
    """Batch-contract adapter over the incremental subspace tracker.

    Parameters
    ----------
    confidence:
        Default Q-statistic confidence level.
    threshold_sigma, normal_rank:
        Warm-up separation parameters (as for
        :class:`~repro.core.detection.SPEDetector`).
    forgetting:
        Exponential forgetting factor of the tracker (effective memory
        ``1 / forgetting`` arrivals).
    """

    def __init__(
        self,
        confidence: float = 0.999,
        threshold_sigma: float = 3.0,
        normal_rank: int | None = None,
        forgetting: float = 1.0 / 1008.0,
    ) -> None:
        super().__init__(name="streaming-subspace", confidence=confidence)
        self.threshold_sigma = threshold_sigma
        self.normal_rank = normal_rank
        self.forgetting = forgetting
        self._streaming: StreamingDetector | None = None

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._streaming is not None

    @property
    def tracker(self):
        """The underlying warmed-up incremental tracker."""
        self._require_fitted()
        return self._streaming.tracker

    def fit(self, measurements: np.ndarray) -> "StreamingSubspaceDetector":
        block = self._as_block(measurements)
        pipeline = DetectionPipeline(
            confidence=self.confidence,
            threshold_sigma=self.threshold_sigma,
            normal_rank=self.normal_rank,
        ).fit(block)
        self._streaming = pipeline.streaming(forgetting=self.forgetting)
        return self

    def score(self, measurements: np.ndarray) -> np.ndarray:
        """SPE under the current tracked basis (no state update)."""
        self._require_fitted()
        return self._streaming.tracker.spe_block(self._as_block(measurements))

    def threshold_at(self, confidence: float) -> float:
        self._require_fitted()
        tracker = self._streaming.tracker
        return float(
            q_threshold(
                tracker.eigenvalues[tracker.normal_rank :],
                confidence=confidence,
            )
        )

    # ------------------------------------------------------------------
    def streaming(self) -> StreamingDetector:
        """The live (stateful, folding) streaming surface."""
        self._require_fitted()
        return self._streaming
