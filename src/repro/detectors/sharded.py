"""The spatial sharded detection plane as a registry detector.

:class:`ShardedSubspaceDetector` wraps the per-zone subspace models and
alarm-fusion stage of :mod:`repro.pipeline.sharded` in the unified
:class:`~repro.detectors.base.Detector` contract, so the comparison
engine can rank fusion modes head-to-head against the monolithic
``subspace`` detector over the same grids and scenario suites.

``score`` is the fused continuous statistic of the configured fusion
mode; ``threshold_at`` is analytic for ``rescore`` (the pooled-spectrum
Jackson–Mudholkar limit) and an empirical training-score quantile for
``union`` / ``vote`` (whose ratio statistics have no closed-form limit
— the same calibration the temporal baselines use).
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import ResidualEnergyDetector
from repro.exceptions import ModelError
from repro.pipeline.sharded import (
    FUSION_MODES,
    SpatialCoordinator,
    SpatialShardedModel,
)

__all__ = ["ShardedSubspaceDetector"]


class ShardedSubspaceDetector(ResidualEnergyDetector):
    """Per-zone subspace detectors plus pluggable alarm fusion.

    Parameters
    ----------
    confidence:
        Default confidence level (per-zone limits and operating point).
    num_zones:
        Link zones (clamped to the link count at fit time).
    fusion:
        Fusion stage: ``"rescore"`` (default), ``"union"`` or
        ``"vote"`` — see :class:`~repro.pipeline.sharded.
        SpatialShardedModel`.
    scheme:
        Link partition scheme (``"contiguous"`` or ``"round-robin"``).
    votes:
        ``k`` of the k-of-n vote fusion (None = majority).
    threshold_sigma, normal_rank:
        Per-zone model parameters.
    workers:
        Worker processes for the zone fits (1 = in-process; the fitted
        model is identical either way).
    """

    def __init__(
        self,
        confidence: float = 0.999,
        num_zones: int = 2,
        fusion: str = "rescore",
        scheme: str = "contiguous",
        votes: int | None = None,
        threshold_sigma: float = 3.0,
        normal_rank: int | None = None,
        workers: int = 1,
    ) -> None:
        super().__init__(name="sharded-subspace", confidence=confidence)
        if fusion not in FUSION_MODES:
            raise ModelError(
                f"unknown fusion mode {fusion!r}; choose from {FUSION_MODES}"
            )
        self.num_zones = num_zones
        self.fusion = fusion
        self.scheme = scheme
        self.votes = votes
        self.threshold_sigma = threshold_sigma
        self.normal_rank = normal_rank
        self.workers = workers
        self._model: SpatialShardedModel | None = None
        self._train_scores: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._model is not None

    @property
    def model(self) -> SpatialShardedModel:
        """The fitted spatial plane (zones, detectors, fusion)."""
        self._require_fitted()
        return self._model

    def fit(self, measurements: np.ndarray) -> "ShardedSubspaceDetector":
        block = self._as_block(measurements)
        fit = SpatialCoordinator(
            num_zones=min(self.num_zones, block.shape[1]),
            scheme=self.scheme,
            votes=self.votes,
            workers=self.workers,
            confidence=self.confidence,
            threshold_sigma=self.threshold_sigma,
            normal_rank=self.normal_rank,
        ).fit(block)
        self._model = fit.model
        self.report = fit.report
        # union/vote have no analytic limit: calibrate their quantile
        # thresholds on the training scores, temporal-baseline style.
        if self.fusion in ("union", "vote"):
            self._train_scores = self._model.fused_score(block, self.fusion)
        else:
            self._train_scores = None
        return self

    def score(self, measurements: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return self._model.fused_score(
            self._as_block(measurements), self.fusion
        )

    def threshold_at(self, confidence: float) -> float:
        self._require_fitted()
        if self.fusion == "rescore":
            return float(self._model.rescore_threshold(confidence))
        return float(np.quantile(self._train_scores, confidence))
