"""Tests for repro.core.incremental (§7.1 decomposition updating)."""

import numpy as np
import pytest

from repro.core import PCA, IncrementalSubspaceTracker, SPEDetector, principal_angles
from repro.exceptions import ModelError, NotFittedError


class TestPrincipalAngles:
    def test_identical_subspaces(self, rng):
        q, _ = np.linalg.qr(rng.normal(size=(10, 3)))
        angles = principal_angles(q, q)
        assert np.allclose(angles, 0.0, atol=1e-7)

    def test_orthogonal_subspaces(self):
        a = np.eye(4)[:, :2]
        b = np.eye(4)[:, 2:]
        angles = principal_angles(a, b)
        assert np.allclose(angles, np.pi / 2)

    def test_known_angle(self):
        a = np.array([[1.0], [0.0]])
        theta = 0.3
        b = np.array([[np.cos(theta)], [np.sin(theta)]])
        assert principal_angles(a, b)[0] == pytest.approx(theta)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ModelError):
            principal_angles(np.eye(3)[:, :1], np.eye(4)[:, :1])


class TestTracker:
    def test_warm_up_matches_batch_pca(self, sprint1):
        tracker = IncrementalSubspaceTracker(normal_rank=3)
        tracker.warm_up(sprint1.link_traffic)
        batch = PCA().fit(sprint1.link_traffic)
        # Eigenvalues agree (both are sample-covariance spectra).
        assert np.allclose(
            tracker.eigenvalues, batch.eigenvalues(), rtol=1e-8
        )
        # Normal subspaces coincide.
        angles = principal_angles(tracker.normal_basis, batch.components[:, :3])
        assert angles.max() < 1e-6

    def test_detection_agrees_with_batch_detector(self, sprint1):
        tracker = IncrementalSubspaceTracker(normal_rank=3)
        tracker.warm_up(sprint1.link_traffic[:720])
        batch = SPEDetector(normal_rank=3).fit(sprint1.link_traffic[:720])
        disagreements = 0
        for y in sprint1.link_traffic[720:820]:
            spe_inc = tracker.spe(y)
            spe_batch = float(batch.spe(y))
            assert spe_inc == pytest.approx(spe_batch, rel=1e-6)
            inc_flag = spe_inc > tracker.threshold
            batch_flag = spe_batch > batch.threshold
            disagreements += int(inc_flag != batch_flag)
        assert disagreements <= 2  # thresholds differ only in df convention

    def test_streaming_detects_injected_spike(self, sprint1):
        tracker = IncrementalSubspaceTracker(normal_rank=3, refresh_interval=36)
        tracker.warm_up(sprint1.link_traffic[:720])
        flow = sprint1.routing.od_index("lon", "mad")
        alarms = 0
        for i, y in enumerate(sprint1.link_traffic[720:820]):
            if i == 50:
                y = y + 6e7 * sprint1.routing.column(flow)
            _, is_anomalous = tracker.update(y)
            if i == 50:
                assert is_anomalous
            alarms += int(is_anomalous)
        assert alarms < 10

    def test_forgetting_adapts_to_level_shift(self, rng):
        """After a permanent mean shift, a tracker with short memory
        stops alarming once it has re-learned the level."""
        m = 6
        base = rng.normal(0, 1.0, size=(400, m)) + 100.0
        tracker = IncrementalSubspaceTracker(
            normal_rank=1, forgetting=0.05, refresh_interval=1
        )
        tracker.warm_up(base[:200])
        shifted = base[200:] + 25.0  # permanent shift in every component
        flags = [tracker.update(y)[1] for y in shifted]
        # Alarming at first...
        assert any(flags[:10])
        # ... but adapted by the end (short memory).
        assert not any(flags[-50:])

    def test_drift_measured_against_reference(self, sprint1):
        tracker = IncrementalSubspaceTracker(normal_rank=3, refresh_interval=36)
        tracker.warm_up(sprint1.link_traffic[:504])
        reference = tracker.normal_basis
        for y in sprint1.link_traffic[504:648]:
            tracker.update(y)
        drift = tracker.drift_from(reference)
        # §7.1 stability: the tracked subspace barely moves in a day.
        assert drift < 0.3  # radians

    def test_validation(self):
        with pytest.raises(ModelError):
            IncrementalSubspaceTracker(normal_rank=-1)
        with pytest.raises(ModelError):
            IncrementalSubspaceTracker(normal_rank=1, forgetting=0.0)
        with pytest.raises(ModelError):
            IncrementalSubspaceTracker(normal_rank=1, refresh_interval=0)
        with pytest.raises(NotFittedError):
            IncrementalSubspaceTracker(normal_rank=1).spe(np.ones(3))

    def test_rank_exceeding_dimension_rejected(self, rng):
        tracker = IncrementalSubspaceTracker(normal_rank=10)
        with pytest.raises(ModelError):
            tracker.warm_up(rng.normal(size=(20, 4)))
