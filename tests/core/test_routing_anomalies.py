"""Tests for repro.core.routing_anomalies (§9 extension)."""

import numpy as np
import pytest

from repro.core import SPEDetector
from repro.core.routing_anomalies import RoutingAnomalyIdentifier
from repro.exceptions import ModelError
from repro.routing import LinkFailure, SPFRouting, apply_events, build_routing_matrix
from repro.topology.builders import ring_network
from repro.traffic import ODFlowGenerator


@pytest.fixture(scope="module")
def world():
    """A ring world with traffic, fitted model, and identifier."""
    network = ring_network(6)
    routing = build_routing_matrix(network, SPFRouting(network).compute())
    generator = ODFlowGenerator(network, total_bytes_per_bin=2e9, seed=77)
    traffic = generator.generate(288)
    link_traffic = traffic.link_loads(routing)
    detector = SPEDetector().fit(link_traffic)
    identifier = RoutingAnomalyIdentifier(network, routing, detector.model)
    return network, routing, traffic, link_traffic, detector, identifier


class TestHypotheses:
    def test_one_hypothesis_per_undirected_edge(self, world):
        network, _, _, _, _, identifier = world
        # A 6-ring has 6 undirected edges; every failure moves flows.
        assert len(identifier.hypotheses) == 6

    def test_signatures_unit_norm(self, world):
        *_, identifier = world
        for hypothesis in identifier.hypotheses:
            norms = np.linalg.norm(hypothesis.signature, axis=0)
            assert np.allclose(norms, 1.0)

    def test_moved_flows_match_reroute_delta(self, world):
        network, routing, *_ , identifier = world
        from repro.routing.events import reroute_delta

        for hypothesis in identifier.hypotheses:
            after = apply_events(network, [hypothesis.failure])
            moved = {
                routing.od_index(o, d)
                for o, d in reroute_delta(routing, after)
            }
            assert set(hypothesis.moved_flows) <= moved


class TestIdentification:
    def test_recognizes_real_reroute(self, world):
        network, routing, traffic, link_traffic, detector, identifier = world
        failure = LinkFailure("p2", "p3")
        after = apply_events(network, [failure])
        time_bin = 150
        y = after.link_loads(traffic.values[time_bin])

        # The reroute must register as an anomaly at all...
        assert float(detector.model.spe(y)) > detector.threshold
        diagnosis = identifier.identify(y)
        assert diagnosis.kind == "routing"
        assert {diagnosis.failure.source, diagnosis.failure.target} == {"p2", "p3"}

    def test_intensities_recover_moved_traffic(self, world):
        network, routing, traffic, _, _, identifier = world
        failure = LinkFailure("p0", "p1")
        after = apply_events(network, [failure])
        time_bin = 100
        x = traffic.values[time_bin]
        y = after.link_loads(x)
        diagnosis = identifier.identify(y)
        if diagnosis.kind != "routing":
            pytest.skip("reroute not preferred at this bin")
        hypothesis = next(
            h
            for h in identifier.hypotheses
            if {h.failure.source, h.failure.target}
            == {diagnosis.failure.source, diagnosis.failure.target}
        )
        true_traffic = x[list(hypothesis.moved_flows)]
        recovered = diagnosis.intensities
        # Per-flow recovery within ~40% for the bulk of moved flows.
        rel = np.abs(recovered - true_traffic) / np.maximum(true_traffic, 1.0)
        assert np.median(rel) < 0.4

    def test_volume_anomaly_still_wins_for_single_flow(self, world):
        network, routing, traffic, link_traffic, _, identifier = world
        flow = routing.od_index("p1", "p4")
        y = link_traffic[120] + 1.5e8 * routing.column(flow)
        diagnosis = identifier.identify(y)
        assert diagnosis.kind == "volume"
        assert diagnosis.flow_index == flow

    def test_dimension_mismatch_rejected(self, world, toy_routing):
        network, routing, _, link_traffic, detector, _ = world
        with pytest.raises(ModelError):
            RoutingAnomalyIdentifier(network, toy_routing, detector.model)
