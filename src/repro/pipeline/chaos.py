"""The chaos harness: every fault kind against every detection plane.

``repro chaos run`` drives this module: the scenario suite's traces are
pushed through the temporal parallel fit, the spatial zone fit, the
resumable streaming fit and the service checkpoint/restore cycle while
:mod:`repro.pipeline.faults` injects one fault at a time — worker
crashes, hung tasks, in-kernel errors, dropped / duplicated / reordered
chunks, corrupted checkpoints.  The harness asserts the robustness
contract end to end:

* every run **terminates** with a typed report (no hangs — hung tasks
  are bounded by the supervised pool's deadline — and no unhandled
  crashes);
* under the ``retry`` policy, a run whose faults are transient is
  **bit-identical** to the fault-free run on the same trace;
* under the ``partial`` policy, permanently lost work yields a fit
  with ``coverage < 1`` and a populated fault report instead of an
  exception;
* a spatial plane that loses a zone keeps alarming with a
  quorum-adjusted vote and a recall close to the monolithic
  detector's (:func:`measure_degraded_recall` pins the gap over the
  suite).

Everything is deterministic — seeded backoff jitter, picklable fault
plans keyed on ``(stage, task, attempt)`` — so a failure observed in CI
replays exactly.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.detection import SPEDetector
from repro.exceptions import ReproError, ValidationError
from repro.pipeline.faults import FaultInjector
from repro.pipeline.sharded import (
    SpatialCoordinator,
    TemporalCoordinator,
)
from repro.scenarios.spec import compile_scenario
from repro.scenarios.suite import get_suite
from repro.validation.roc import roc_curve

__all__ = [
    "CHAOS_FAULTS",
    "CHAOS_PLANES",
    "ChaosOutcome",
    "ChaosReport",
    "measure_degraded_recall",
    "run_chaos_suite",
]

#: Version of the :meth:`ChaosReport.to_json` payload layout.
CHAOS_SCHEMA_VERSION = 1

#: Fault kinds the harness injects, and the planes each one targets.
CHAOS_FAULTS = (
    "kill_worker",
    "hang_task",
    "fail_task",
    "drop_chunk",
    "duplicate_chunk",
    "delay_chunk",
    "corrupt_checkpoint",
)

#: Detection-plane entry points the harness drives.
CHAOS_PLANES = ("temporal", "spatial", "stream", "service")

#: Which planes each fault kind applies to.  Worker faults hit the
#: supervised pools; chunk faults hit the streaming source; checkpoint
#: corruption hits the stream-resume and service-restart cycles.
_FAULT_PLANES = {
    "kill_worker": ("temporal", "spatial"),
    "hang_task": ("temporal", "spatial"),
    "fail_task": ("temporal", "spatial"),
    "drop_chunk": ("stream",),
    "duplicate_chunk": ("stream",),
    "delay_chunk": ("stream",),
    "corrupt_checkpoint": ("stream", "service"),
}


@dataclass(frozen=True)
class ChaosOutcome:
    """One (scenario, plane, fault, policy) cell of the chaos matrix."""

    scenario: str
    plane: str
    fault: str
    policy: str
    terminated: bool  # run ended with a typed report (or typed error)
    recovered: bool  # fit produced a model (vs a typed abort)
    bit_identical: bool | None  # vs fault-free run; None when n/a
    coverage: float | None  # report coverage; None on typed abort
    faults_recorded: int
    elapsed_seconds: float
    detail: str = ""

    @property
    def ok(self) -> bool:
        """Did this cell uphold the robustness contract?"""
        if not self.terminated:
            return False
        if self.policy == "retry":
            # Transient faults must be retried to a bit-identical fit.
            return self.recovered and self.bit_identical is not False
        if self.policy == "partial":
            # Permanent losses must degrade, not abort.
            return self.recovered and (
                self.coverage is not None and self.coverage <= 1.0
            )
        # fail-fast: a typed abort IS the contract under injected faults.
        return True

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "plane": self.plane,
            "fault": self.fault,
            "policy": self.policy,
            "terminated": self.terminated,
            "recovered": self.recovered,
            "bit_identical": self.bit_identical,
            "coverage": self.coverage,
            "faults_recorded": self.faults_recorded,
            "ok": self.ok,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ChaosReport:
    """All cells of one chaos run, plus the degraded-recall probe."""

    suite: str
    policy: str
    outcomes: tuple[ChaosOutcome, ...]
    degraded_recall: dict | None = None
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    @property
    def failures(self) -> tuple[ChaosOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.ok)

    @property
    def all_ok(self) -> bool:
        return not self.failures

    def to_json(self) -> dict:
        return {
            "schema_version": CHAOS_SCHEMA_VERSION,
            "suite": self.suite,
            "policy": self.policy,
            "cells": len(self.outcomes),
            "failures": len(self.failures),
            "all_ok": self.all_ok,
            "degraded_recall": self.degraded_recall,
            "outcomes": [o.to_json() for o in self.outcomes],
            "elapsed_seconds": self.elapsed_seconds,
        }

    def table(self) -> str:
        header = (
            f"{'scenario':<20} {'plane':<9} {'fault':<19} "
            f"{'ok':<4} {'recov':<6} {'biteq':<6} {'cover':<6} faults"
        )
        lines = [
            f"chaos matrix — suite={self.suite!r} policy={self.policy!r}",
            header,
            "-" * len(header),
        ]
        for o in self.outcomes:
            biteq = "-" if o.bit_identical is None else str(o.bit_identical)
            cover = "-" if o.coverage is None else f"{o.coverage:.2f}"
            lines.append(
                f"{o.scenario:<20} {o.plane:<9} {o.fault:<19} "
                f"{str(o.ok):<4} {str(o.recovered):<6} {biteq:<6} "
                f"{cover:<6} {o.faults_recorded}"
            )
        if self.degraded_recall is not None:
            d = self.degraded_recall
            lines.append("")
            lines.append(
                f"degraded recall (zone {d['dead_zone']} of "
                f"{d['num_zones']} dead, fusion={d['fusion']}): "
                f"{d['degraded']:.3f} vs monolithic {d['monolithic']:.3f} "
                f"(gap {d['gap']:+.3f}, tolerance {d['tolerance']:.3f}, "
                f"{'OK' if d['within_tolerance'] else 'FAIL'})"
            )
        lines.append("")
        lines.append(
            f"{len(self.outcomes)} cells, {len(self.failures)} failure(s), "
            f"{self.elapsed_seconds:.1f}s"
        )
        return "\n".join(lines)


def _detectors_match(a: SPEDetector, b: SPEDetector) -> bool:
    """Bit-exact model equality (mean, basis, spectrum, rank, limit)."""
    pa, pb = a.model.pca, b.model.pca
    return (
        np.array_equal(pa.mean, pb.mean)
        and np.array_equal(pa.components, pb.components)
        and np.array_equal(pa.captured_variance(), pb.captured_variance())
        and a.normal_rank == b.normal_rank
        and a.threshold == b.threshold
    )


def _worker_plan(fault: str, stage: str, policy: str):
    """The fault plan of one worker-fault cell.

    Transient (one attempt) under ``retry`` so recovery is expected;
    permanent under ``partial``/``fail-fast`` so the policy's terminal
    behavior — degrade or typed abort — is what gets exercised.
    """
    attempts = 1 if policy == "retry" else 99
    if fault == "kill_worker":
        return FaultInjector.kill_worker(task=0, stage=stage, attempts=attempts)
    if fault == "hang_task":
        return FaultInjector.hang_task(
            task=0, stage=stage, attempts=attempts, seconds=60.0
        )
    return FaultInjector.fail_task(task=0, stage=stage, attempts=attempts)


def _run_temporal(traffic, fault, policy, deadline, workers):
    clean = TemporalCoordinator(num_shards=workers * 2, workers=1).fit(traffic)
    plan = _worker_plan(fault, "stats", policy)
    coordinator = TemporalCoordinator(
        num_shards=workers * 2,
        workers=workers,
        fault_policy=policy,
        task_deadline=deadline,
        max_retries=1,
        backoff_base=0.01,
        fault_plan=plan,
    )
    fit = coordinator.fit(traffic)
    report = fit.report
    return (
        True,
        _detectors_match(fit.detector, clean.detector),
        report.coverage,
        0 if report.fault is None else len(report.fault.faults),
    )


def _run_spatial(traffic, fault, policy, deadline, workers):
    num_zones = min(4, traffic.shape[1])
    plan = _worker_plan(fault, "zones", policy)
    coordinator = SpatialCoordinator(
        num_zones=num_zones,
        workers=min(workers, num_zones),
        normal_rank=2,
        fault_policy=policy,
        task_deadline=deadline,
        max_retries=1,
        backoff_base=0.01,
        fault_plan=plan,
    )
    fit = coordinator.fit(traffic)
    clean = SpatialCoordinator(
        num_zones=num_zones, workers=1, normal_rank=2
    ).fit(traffic)
    identical = fit.report.coverage == 1.0 and all(
        _detectors_match(a, b)
        for a, b in zip(fit.model.detectors, clean.model.detectors)
    )
    report = fit.report
    return (
        True,
        identical,
        report.coverage,
        0 if report.fault is None else len(report.fault.faults),
    )


def _run_stream(traffic, fault, policy, chunk_rows, workdir):
    clean = TemporalCoordinator(num_shards=2, workers=1).fit(traffic)
    coordinator = TemporalCoordinator(
        num_shards=2,
        workers=1,
        fault_policy=policy,
        max_retries=1,
        backoff_base=0.01,
    )
    if fault == "corrupt_checkpoint":
        path = Path(workdir) / "stream.ckpt"
        source = FaultInjector.chunk_source(traffic, chunk_rows)
        coordinator.fit_stream(
            source, checkpoint_path=path, expected_rows=traffic.shape[0]
        )
        FaultInjector.corrupt_checkpoint(path, mode="truncate")
        fit = coordinator.fit_stream(
            source, checkpoint_path=path, expected_rows=traffic.shape[0]
        )
    else:
        kind = fault.removesuffix("_chunk")
        drop_always = kind == "drop" and policy == "partial"
        source = FaultInjector.chunk_source(
            traffic, chunk_rows, fault=kind, target=1, drop_always=drop_always
        )
        fit = coordinator.fit_stream(
            source, expected_rows=traffic.shape[0]
        )
    report = fit.report
    return (
        True,
        _detectors_match(fit.detector, clean.detector),
        report.coverage,
        0 if report.fault is None else len(report.fault.faults),
    )


def _run_service(traffic, fault, policy, workdir):
    """Checkpoint/restore cycle of the always-on service's lifecycle."""
    from repro.exceptions import CheckpointError, ServiceError
    from repro.service.lifecycle import ModelLifecycleManager

    lifecycle = ModelLifecycleManager(normal_rank=2)
    lifecycle.bootstrap(traffic[: max(64, traffic.shape[0] // 2)])
    path = Path(workdir) / "service.ckpt"
    lifecycle.checkpoint(path)
    FaultInjector.corrupt_checkpoint(path, mode="scribble")
    try:
        ModelLifecycleManager.restore(path)
    except (CheckpointError, ServiceError):
        pass  # a typed refusal is the contract for a damaged checkpoint
    else:  # pragma: no cover - corruption must never restore silently
        return True, False, None, 1
    # An atomic re-checkpoint over the damaged file must restore warm.
    lifecycle.checkpoint(path)
    restored = ModelLifecycleManager.restore(path)
    identical = _detectors_match(
        lifecycle.current.detector, restored.current.detector
    )
    return True, identical, 1.0, 1


def run_chaos_suite(
    suite: str = "core",
    policy: str = "retry",
    faults: tuple[str, ...] = CHAOS_FAULTS,
    planes: tuple[str, ...] = CHAOS_PLANES,
    max_scenarios: int | None = None,
    workers: int = 2,
    deadline: float = 5.0,
    chunk_rows: int = 64,
    degraded_tolerance: float = 0.05,
    probe_degraded_recall: bool = True,
) -> ChaosReport:
    """Drive the full chaos matrix over a scenario suite.

    Every cell must *terminate* — either with a fitted model and a
    typed fault report, or (under ``fail-fast``) with a typed
    :class:`~repro.exceptions.ReproError` — never hang or crash the
    process.  See :class:`ChaosOutcome.ok` for the per-policy contract.
    """
    begin = time.perf_counter()
    if policy not in ("fail-fast", "retry", "partial"):
        raise ValidationError(
            f"unknown chaos policy {policy!r}; "
            "choose 'fail-fast', 'retry' or 'partial'"
        )
    unknown = set(faults) - set(CHAOS_FAULTS)
    if unknown:
        raise ValidationError(
            f"unknown fault kind(s) {sorted(unknown)}; "
            f"choose from {CHAOS_FAULTS}"
        )
    unknown = set(planes) - set(CHAOS_PLANES)
    if unknown:
        raise ValidationError(
            f"unknown plane(s) {sorted(unknown)}; "
            f"choose from {CHAOS_PLANES}"
        )
    specs = get_suite(suite) if isinstance(suite, str) else tuple(suite)
    if max_scenarios is not None:
        specs = specs[:max_scenarios]

    outcomes: list[ChaosOutcome] = []
    for spec in specs:
        traffic = compile_scenario(spec).dataset.link_traffic
        for fault in faults:
            for plane in _FAULT_PLANES[fault]:
                if plane not in planes:
                    continue
                cell_begin = time.perf_counter()
                terminated = True
                recovered = False
                bit_identical: bool | None = None
                coverage: float | None = None
                recorded = 0
                detail = ""
                try:
                    with tempfile.TemporaryDirectory() as workdir:
                        if plane == "temporal":
                            out = _run_temporal(
                                traffic, fault, policy, deadline, workers
                            )
                        elif plane == "spatial":
                            out = _run_spatial(
                                traffic, fault, policy, deadline, workers
                            )
                        elif plane == "stream":
                            out = _run_stream(
                                traffic, fault, policy, chunk_rows, workdir
                            )
                        else:
                            out = _run_service(
                                traffic, fault, policy, workdir
                            )
                    recovered, bit_identical, coverage, recorded = out
                except ReproError as err:
                    # A typed abort: the run terminated with a report.
                    detail = f"{type(err).__name__}: {err}"
                except Exception as err:  # noqa: BLE001 - contract breach
                    terminated = False
                    detail = f"untyped {type(err).__name__}: {err}"
                outcomes.append(
                    ChaosOutcome(
                        scenario=spec.name,
                        plane=plane,
                        fault=fault,
                        policy=policy,
                        terminated=terminated,
                        recovered=recovered,
                        bit_identical=bit_identical,
                        coverage=coverage,
                        faults_recorded=recorded,
                        elapsed_seconds=time.perf_counter() - cell_begin,
                        detail=detail,
                    )
                )

    degraded = None
    if probe_degraded_recall:
        degraded = measure_degraded_recall(
            suite=specs, tolerance=degraded_tolerance
        )
    return ChaosReport(
        suite=suite if isinstance(suite, str) else "custom",
        policy=policy,
        outcomes=tuple(outcomes),
        degraded_recall=degraded,
        elapsed_seconds=time.perf_counter() - begin,
    )


def measure_degraded_recall(
    suite="core",
    num_zones: int = 2,
    dead_zone: int = 1,
    fusion: str = "rescore",
    confidence: float = 0.999,
    fa_budget: float = 0.01,
    tolerance: float = 0.05,
) -> dict:
    """Suite-mean recall of a zone-degraded plane vs the monolithic.

    Fits the spatial plane on every scenario, kills ``dead_zone`` via
    :meth:`~repro.pipeline.sharded.SpatialShardedModel.without_zones`,
    and reads recall at the shared false-alarm budget off exact ROCs —
    the same equal-budget comparison :mod:`repro.scenarios.fusion`
    pins.

    The gate's baseline (``monolithic``) is a monolithic detector fitted
    on the *surviving links*: a dead zone's measurements are physically
    unobservable, so no fusion rule can recover signal from them, and
    comparing against the full-width detector would conflate data loss
    with machinery loss.  What the gate pins is that the quorum-adjusted
    surviving-zone fusion extracts recall within ``tolerance`` of
    everything a single detector could extract from the links the plane
    still sees (with the default two-zone plane the match is exact).
    The full-width recall is reported as ``monolithic_full`` so the raw
    observability cost of the outage stays visible in the same payload.
    """
    specs = get_suite(suite) if isinstance(suite, str) else tuple(suite)
    full_recalls: list[float] = []
    mono_recalls: list[float] = []
    degraded_recalls: list[float] = []
    coverages: list[float] = []
    for spec in specs:
        compiled = compile_scenario(spec)
        traffic = compiled.dataset.link_traffic
        truth = compiled.truth_bins()

        monolithic = SPEDetector(confidence=confidence).fit(traffic)
        spe = np.atleast_1d(np.asarray(monolithic.spe(traffic)))
        full_recalls.append(roc_curve(spe, truth).detection_at(fa_budget))

        zones = min(num_zones, traffic.shape[1])
        plane = SpatialCoordinator(
            num_zones=zones, workers=1, confidence=confidence
        ).fit(traffic)
        degraded = plane.model.without_zones([min(dead_zone, zones - 1)])
        fused = degraded.fused_score(traffic, fusion)
        degraded_recalls.append(
            roc_curve(np.atleast_1d(fused), truth).detection_at(fa_budget)
        )
        coverages.append(degraded.coverage)

        links = sorted(
            link for zone in degraded.zones for link in zone
        )
        survivor = SPEDetector(confidence=confidence).fit(traffic[:, links])
        spe = np.atleast_1d(np.asarray(survivor.spe(traffic[:, links])))
        mono_recalls.append(roc_curve(spe, truth).detection_at(fa_budget))

    monolithic_mean = float(np.mean(mono_recalls))
    degraded_mean = float(np.mean(degraded_recalls))
    gap = degraded_mean - monolithic_mean
    return {
        "suite": suite if isinstance(suite, str) else "custom",
        "num_zones": num_zones,
        "dead_zone": dead_zone,
        "fusion": fusion,
        "fa_budget": fa_budget,
        "coverage": float(np.mean(coverages)),
        "monolithic": monolithic_mean,
        "monolithic_full": float(np.mean(full_recalls)),
        "degraded": degraded_mean,
        "gap": gap,
        "tolerance": tolerance,
        "within_tolerance": gap >= -tolerance,
    }
