"""The :class:`Dataset` container.

A dataset bundles everything one of the paper's evaluation worlds needs:
the network, its routing matrix, the true OD-flow traffic (with the
ground-truth anomaly ledger), and the link measurement matrix the subspace
method consumes.  Consistency (``Y = X Aᵀ``) is verified at construction,
mirroring the paper's approach of constructing link counts from OD flows
via the routing matrix (§3, following [31]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DatasetError
from repro.routing.routing_matrix import RoutingMatrix
from repro.topology.network import Network
from repro.traffic.anomalies import AnomalyEvent
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.workloads import WorkloadConfig

__all__ = ["Dataset"]


@dataclass(frozen=True)
class Dataset:
    """One evaluation world (cf. paper Table 1).

    Attributes
    ----------
    name:
        Dataset identifier (``"sprint-1"``, ``"sprint-2"``, ``"abilene"``,
        or anything for custom datasets).
    network:
        The backbone topology.
    routing:
        Routing matrix ``A`` mapping OD flows to links.
    od_traffic:
        True OD-flow byte counts ``X`` (``(t, n)``), anomalies included.
        This data is *not* an input to the diagnosis method — the paper
        uses it only for validation.
    link_traffic:
        Link byte counts ``Y = X Aᵀ`` (``(t, m)``) — the method's input.
    true_events:
        Ground-truth ledger of injected anomalies (empty for datasets
        built from external measurements).
    config:
        The workload configuration that generated the dataset, when known.
    """

    name: str
    network: Network
    routing: RoutingMatrix
    od_traffic: TrafficMatrix
    link_traffic: np.ndarray
    true_events: tuple[AnomalyEvent, ...] = ()
    config: WorkloadConfig | None = None

    def __post_init__(self) -> None:
        link_traffic = np.asarray(self.link_traffic, dtype=np.float64)
        if link_traffic.ndim != 2:
            raise DatasetError(
                f"link_traffic must be 2-D, got shape {link_traffic.shape}"
            )
        if link_traffic.shape[0] != self.od_traffic.num_bins:
            raise DatasetError(
                f"link_traffic covers {link_traffic.shape[0]} bins but OD "
                f"traffic covers {self.od_traffic.num_bins}"
            )
        if link_traffic.shape[1] != self.routing.num_links:
            raise DatasetError(
                f"link_traffic covers {link_traffic.shape[1]} links but the "
                f"routing matrix has {self.routing.num_links}"
            )
        if self.routing.num_flows != self.od_traffic.num_flows:
            raise DatasetError(
                "routing matrix and OD traffic disagree on the flow count"
            )
        expected = self.od_traffic.link_loads(self.routing)
        if not np.allclose(expected, link_traffic, rtol=1e-9, atol=1e-3):
            raise DatasetError(
                "link_traffic is inconsistent with od_traffic under the "
                "routing matrix (Y != X A^T)"
            )
        for event in self.true_events:
            if event.last_bin >= self.num_bins:
                raise DatasetError(
                    f"ground-truth event at bin {event.time_bin} lies outside "
                    f"the trace ({self.num_bins} bins)"
                )
            if event.flow_index >= self.num_flows:
                raise DatasetError(
                    f"ground-truth event targets flow {event.flow_index} but "
                    f"the trace has {self.num_flows} flows"
                )
        object.__setattr__(self, "link_traffic", link_traffic)

    # ------------------------------------------------------------------
    @property
    def num_bins(self) -> int:
        """Number of time bins ``t``."""
        return self.od_traffic.num_bins

    @property
    def num_links(self) -> int:
        """Number of links ``m``."""
        return self.routing.num_links

    @property
    def num_flows(self) -> int:
        """Number of OD flows ``n``."""
        return self.routing.num_flows

    @property
    def bin_seconds(self) -> float:
        """Analysis bin width in seconds."""
        return self.od_traffic.bin_seconds

    @property
    def measurement_matrix(self) -> np.ndarray:
        """Alias for ``link_traffic`` — the matrix the paper calls ``Y``."""
        return self.link_traffic

    def event_flows(self) -> list[tuple[str, str]]:
        """OD pairs of the ground-truth events, in event order."""
        return [self.routing.od_pairs[e.flow_index] for e in self.true_events]

    def window(self, start_bin: int, end_bin: int) -> "Dataset":
        """A time-sliced copy covering bins ``[start_bin, end_bin)``.

        Ground-truth events are re-indexed to the window; events outside
        it are dropped.
        """
        od = self.od_traffic.window(start_bin, end_bin)
        events = tuple(
            AnomalyEvent(
                time_bin=e.time_bin - start_bin,
                flow_index=e.flow_index,
                amplitude_bytes=e.amplitude_bytes,
                shape=e.shape,
                duration_bins=e.duration_bins,
            )
            for e in self.true_events
            if start_bin <= e.time_bin and e.last_bin < end_bin
        )
        return Dataset(
            name=self.name,
            network=self.network,
            routing=self.routing,
            od_traffic=od,
            link_traffic=self.link_traffic[start_bin:end_bin],
            true_events=events,
            config=self.config,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset({self.name!r}: {self.num_bins} bins x {self.num_links} "
            f"links, {self.num_flows} flows, {len(self.true_events)} events)"
        )
