"""Tests for repro.routing.protocol."""

import pytest

from repro.exceptions import RoutingError
from repro.routing import SPFRouting
from repro.topology import Network, abilene, toy_network
from repro.topology.builders import line_network


class TestSPFRouting:
    def test_covers_every_od_pair(self, toy_net):
        table = SPFRouting(toy_net).compute()
        assert len(table) == toy_net.num_od_pairs
        for origin, destination in toy_net.od_pairs:
            assert (origin, destination) in table

    def test_same_pop_flows_use_intra_pop_links(self, toy_net):
        table = SPFRouting(toy_net).compute()
        route = table.route("b", "b")
        assert route.links == ("b=b",)
        assert route.pops == ("b",)

    def test_single_path_fractions_are_one(self, toy_net):
        table = SPFRouting(toy_net).compute()
        for od_pair in table.od_pairs():
            (route,) = table.routes(*od_pair)
            assert route.fraction == 1.0

    def test_requires_intra_pop_links(self):
        net = Network.from_edges("n", ["a", "b"], [("a", "b")], with_intra_pop=False)
        with pytest.raises(RoutingError, match="intra-PoP"):
            SPFRouting(net)

    def test_routes_are_contiguous(self):
        net = abilene()
        table = SPFRouting(net).compute()
        for origin, destination in net.od_pairs:
            route = table.route(origin, destination)
            assert route.pops[0] == origin
            assert route.pops[-1] == destination
            # Each link connects consecutive path PoPs.
            for pop, link_name in zip(route.pops, route.links):
                assert link_name.startswith(f"{pop}->") or link_name == f"{pop}={pop}"

    def test_exclude_links_forces_detour(self):
        net = toy_network()
        table = SPFRouting(net).compute(exclude_links=["a->b", "b->a"])
        route = table.route("a", "b")
        assert "a->b" not in route.links
        assert route.num_hops == 2

    def test_exclude_unknown_link_rejected(self, toy_net):
        with pytest.raises(RoutingError, match="unknown"):
            SPFRouting(toy_net).compute(exclude_links=["x->y"])

    def test_exclude_intra_pop_link_rejected(self, toy_net):
        with pytest.raises(RoutingError, match="intra-PoP"):
            SPFRouting(toy_net).compute(exclude_links=["a=a"])

    def test_disconnection_raises(self):
        net = line_network(3)
        with pytest.raises(RoutingError, match="no path"):
            SPFRouting(net).compute(exclude_links=["p0->p1", "p1->p0"])

    def test_symmetric_paths_on_unit_weights(self):
        # With all weights 1 and symmetric links, forward and reverse
        # paths have the same length.
        net = abilene()
        table = SPFRouting(net).compute()
        for origin, destination in [("sttl", "atla"), ("losa", "nycm")]:
            forward = table.route(origin, destination)
            backward = table.route(destination, origin)
            assert forward.num_hops == backward.num_hops
