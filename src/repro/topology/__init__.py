"""Network topology model.

This subpackage provides the structural substrate of the reproduction: PoPs
(points of presence), directed links between them, and the
:class:`~repro.topology.network.Network` container that the routing and
traffic layers operate on.

The two backbone networks studied in the paper are available from
:mod:`repro.topology.library`:

>>> from repro.topology import abilene, sprint_europe
>>> abilene().num_links
41
>>> sprint_europe().num_links
49
"""

from repro.topology.link import Link, LinkKind
from repro.topology.node import PoP
from repro.topology.network import Network
from repro.topology.builders import NetworkBuilder, line_network, ring_network, star_network
from repro.topology.library import abilene, sprint_europe, toy_network
from repro.topology.serialization import (
    network_from_dict,
    network_from_json,
    network_to_dict,
    network_to_json,
)
from repro.topology.validation import check_network, connectivity_report

__all__ = [
    "PoP",
    "Link",
    "LinkKind",
    "Network",
    "NetworkBuilder",
    "line_network",
    "ring_network",
    "star_network",
    "abilene",
    "sprint_europe",
    "toy_network",
    "network_to_dict",
    "network_from_dict",
    "network_to_json",
    "network_from_json",
    "check_network",
    "connectivity_report",
]
