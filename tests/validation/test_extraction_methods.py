"""Coverage for the extended ground-truth extraction methods.

The paper's protocol uses EWMA and Fourier; `method_for` also exposes
the further members of the two §6.2 classes (AR, Holt-Winters, wavelet).
All of them must rediscover the largest planted spikes.
"""

import pytest

from repro.baselines import (
    ARModel,
    EWMAModel,
    FourierModel,
    HoltWintersModel,
    WaveletModel,
)
from repro.validation import extract_true_anomalies
from repro.validation.ground_truth import method_for


class TestMethodFor:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("ewma", EWMAModel),
            ("fourier", FourierModel),
            ("ar", ARModel),
            ("holt-winters", HoltWintersModel),
            ("holtwinters", HoltWintersModel),
            ("wavelet", WaveletModel),
            ("EWMA", EWMAModel),
        ],
    )
    def test_factory(self, name, expected):
        assert isinstance(method_for(name), expected)

    def test_holt_winters_season_follows_bin_width(self):
        model = method_for("holt-winters", bin_seconds=600.0)
        assert model.season_bins == 144
        model = method_for("holt-winters", bin_seconds=300.0)
        assert model.season_bins == 288


class TestExtendedExtraction:
    @pytest.mark.parametrize("method", ["ar", "holt-winters", "wavelet"])
    def test_rediscovers_top_spikes(self, sprint1, method):
        ranked = extract_true_anomalies(
            sprint1.od_traffic, method=method, top_k=40
        )
        found = {(a.time_bin, a.flow_index) for a in ranked}
        near_found = {
            (t + dt, f) for (t, f) in found for dt in (-1, 0, 1)
        }
        top_events = sorted(
            sprint1.true_events, key=lambda e: -abs(e.amplitude_bytes)
        )[:5]
        hits = sum(
            1
            for e in top_events
            if (e.time_bin, e.flow_index) in near_found
        )
        assert hits >= 3
