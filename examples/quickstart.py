#!/usr/bin/env python3
"""Quickstart: diagnose network-wide volume anomalies from link counts.

Walks the full three-step method of the paper on the Abilene evaluation
dataset, driven by the :class:`~repro.pipeline.DetectionPipeline` — the
vectorized front door that wires measurement → traffic matrix → subspace
model → Q-statistic → identification together:

1. build the dataset (topology, routing, one week of OD traffic with
   ground-truth anomalies, and the link measurement matrix Y = X Aᵀ);
2. fit the pipeline on Y (PCA + 3σ separation + Q-statistic);
3. detect: one batched pass flags anomalous timesteps, identifies the
   responsible OD flow, and quantifies each anomaly's size in bytes.

Run:  python examples/quickstart.py
"""

from repro import DetectionPipeline, build_dataset
from repro.core.pca import PCA


def main() -> None:
    print("Building the Abilene evaluation dataset (one week, 10-min bins)...")
    dataset = build_dataset("abilene")
    print(
        f"  {dataset.network.num_pops} PoPs, {dataset.num_links} links, "
        f"{dataset.num_flows} OD flows, {dataset.num_bins} time bins"
    )

    # The low effective dimensionality behind the method (paper Fig. 3).
    pca = PCA().fit(dataset.link_traffic)
    fractions = pca.variance_fractions()
    print(
        f"  top-4 principal components capture "
        f"{fractions[:4].sum() * 100:.1f}% of link-traffic variance"
    )

    print("\nFitting the detection pipeline (99.9% confidence)...")
    pipeline = DetectionPipeline(confidence=0.999).fit(
        dataset.link_traffic, routing=dataset.routing
    )
    print(f"  normal subspace rank: {pipeline.normal_rank}")
    print(f"  SPE threshold (delta^2): {pipeline.threshold:.3e}")

    print("\nDiagnosing the full week of link measurements (one pass)...")
    result = pipeline.detect(dataset.link_traffic)
    diagnoses = result.diagnoses()
    print(f"  {len(diagnoses)} anomalies diagnosed:\n")
    print(f"  {'bin':>5}  {'flow':>12}  {'est. bytes':>12}  {'SPE/threshold':>13}")
    for d in diagnoses:
        origin, destination = d.od_pair
        print(
            f"  {d.time_bin:>5}  {origin + '->' + destination:>12}  "
            f"{d.estimated_bytes:>12.3e}  {d.spe / d.threshold:>13.1f}"
        )

    # Compare against the ground truth the generator planted.
    truth = {
        e.time_bin: e
        for e in dataset.true_events
        if abs(e.amplitude_bytes) >= 8e7  # the paper's Abilene cutoff
    }
    hits = sum(
        1
        for d in diagnoses
        if d.time_bin in truth and truth[d.time_bin].flow_index == d.flow_index
    )
    print(
        f"\n  ground truth: {len(truth)} anomalies above the 8e7-byte cutoff; "
        f"{hits} diagnosed with the correct OD flow"
    )


if __name__ == "__main__":
    main()
