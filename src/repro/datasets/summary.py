"""Dataset summaries (paper Table 1).

Produces the rows of Table 1 — ``# PoPs``, ``# Links``, time bin, period —
for any collection of datasets, plus a plain-text rendering used by the
Table-1 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.dataset import Dataset

__all__ = ["DatasetSummaryRow", "dataset_summary", "summary_table"]


@dataclass(frozen=True, slots=True)
class DatasetSummaryRow:
    """One row of the Table-1 analogue."""

    name: str
    num_pops: int
    num_links: int
    bin_minutes: float
    period_days: float
    num_flows: int
    num_true_events: int


def dataset_summary(dataset: Dataset) -> DatasetSummaryRow:
    """Summarize one dataset in Table-1 terms."""
    return DatasetSummaryRow(
        name=dataset.name,
        num_pops=dataset.network.num_pops,
        num_links=dataset.num_links,
        bin_minutes=dataset.bin_seconds / 60.0,
        period_days=dataset.num_bins * dataset.bin_seconds / 86_400.0,
        num_flows=dataset.num_flows,
        num_true_events=len(dataset.true_events),
    )


def summary_table(datasets: list[Dataset]) -> str:
    """Plain-text Table 1 for a list of datasets.

    >>> from repro.datasets import build_dataset
    >>> print(summary_table([build_dataset("abilene")]))
    ... # doctest: +NORMALIZE_WHITESPACE
    Dataset   # PoPs  # Links  Time Bin  Period  # OD Flows
    abilene   11      41       10 min    7.0 d   121
    """
    header = ["Dataset", "# PoPs", "# Links", "Time Bin", "Period", "# OD Flows"]
    rows = []
    for dataset in datasets:
        row = dataset_summary(dataset)
        rows.append(
            [
                row.name,
                str(row.num_pops),
                str(row.num_links),
                f"{row.bin_minutes:.0f} min",
                f"{row.period_days:.1f} d",
                str(row.num_flows),
            ]
        )
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
