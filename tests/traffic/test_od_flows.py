"""Tests for repro.traffic.od_flows."""

import numpy as np
import pytest

from repro.exceptions import TrafficError
from repro.traffic import ODFlowGenerator
from repro.traffic.noise import NoNoise
from repro.topology import sprint_europe


WEEK = 1008


class TestGeneration:
    def test_shape_and_labels(self, toy_net):
        generator = ODFlowGenerator(toy_net, total_bytes_per_bin=1e9, seed=0)
        traffic = generator.generate(100)
        assert traffic.num_bins == 100
        assert traffic.num_flows == toy_net.num_od_pairs
        assert traffic.od_pairs == toy_net.od_pairs

    def test_non_negative(self, toy_net):
        generator = ODFlowGenerator(toy_net, total_bytes_per_bin=1e9, seed=0)
        assert np.all(generator.generate(200).values >= 0)

    def test_deterministic_with_seed(self, toy_net):
        a = ODFlowGenerator(toy_net, 1e9, seed=5).generate(50)
        b = ODFlowGenerator(toy_net, 1e9, seed=5).generate(50)
        assert np.array_equal(a.values, b.values)

    def test_different_seeds_differ(self, toy_net):
        a = ODFlowGenerator(toy_net, 1e9, seed=5).generate(50)
        b = ODFlowGenerator(toy_net, 1e9, seed=6).generate(50)
        assert not np.array_equal(a.values, b.values)

    def test_total_traffic_near_target(self, toy_net):
        generator = ODFlowGenerator(toy_net, total_bytes_per_bin=1e9, seed=0)
        traffic = generator.generate(WEEK)
        # Diurnal modulation averages out over a week; total per bin
        # should be near the target on average.
        assert traffic.total_per_bin().mean() == pytest.approx(1e9, rel=0.1)

    def test_noiseless_traffic_is_smooth(self, toy_net):
        generator = ODFlowGenerator(
            toy_net, 1e9, noise=NoNoise(), gravity_jitter=0.0, seed=0
        )
        traffic = generator.generate(288)
        # Without noise, consecutive-bin differences are tiny relative to
        # the flow level (pure diurnal drift).
        values = traffic.values
        diffs = np.abs(np.diff(values, axis=0))
        assert diffs.max() < 0.1 * values.max()

    def test_diurnal_cycle_visible(self, toy_net):
        generator = ODFlowGenerator(
            toy_net, 1e9, noise=NoNoise(), diurnal_strength=0.5, seed=0
        )
        traffic = generator.generate(288)  # two days
        total = traffic.total_per_bin()
        # Day 2 repeats day 1 (weekday pattern, no noise).
        assert np.allclose(total[:144], total[144:], rtol=1e-6)
        # And there is meaningful within-day variation.
        assert total.std() / total.mean() > 0.05


class TestLowDimensionality:
    def test_link_traffic_has_low_effective_dimension(self):
        """The property behind paper Fig. 3: few PCs capture most variance."""
        from repro.core.pca import PCA
        from repro.routing import SPFRouting, build_routing_matrix

        network = sprint_europe()
        generator = ODFlowGenerator(network, 2.5e9, num_patterns=3, seed=1)
        traffic = generator.generate(WEEK)
        routing = build_routing_matrix(network, SPFRouting(network).compute())
        link_traffic = traffic.link_loads(routing)

        pca = PCA().fit(link_traffic)
        fractions = pca.variance_fractions()
        assert fractions[:4].sum() > 0.9
        assert pca.effective_dimension(0.9) <= 4


class TestValidation:
    def test_invalid_strength(self, toy_net):
        with pytest.raises(TrafficError):
            ODFlowGenerator(toy_net, 1e9, diurnal_strength=1.0)

    def test_invalid_patterns(self, toy_net):
        with pytest.raises(TrafficError):
            ODFlowGenerator(toy_net, 1e9, num_patterns=0)

    def test_invalid_bins(self, toy_net):
        generator = ODFlowGenerator(toy_net, 1e9)
        with pytest.raises(TrafficError):
            generator.generate(0)

    def test_weights_unit_l1(self, toy_net):
        generator = ODFlowGenerator(toy_net, 1e9, num_patterns=3, seed=0)
        weights = generator._flow_weights(toy_net.num_od_pairs)
        assert np.allclose(np.abs(weights).sum(axis=1), 1.0)
