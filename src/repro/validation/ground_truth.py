"""Extraction of "true" anomalies from OD-flow timeseries (§6.2).

The paper obtains its validation set by running two single-timeseries
methods — EWMA forecasting and Fourier filtering — on every OD flow and
collecting the large deviations.  The same protocol is implemented here:

1. compute per-flow anomaly sizes ``|z_t − ẑ_t|`` with the chosen method;
2. keep local maxima (a spike spread over adjacent bins counts once);
3. pool candidates from all flows, rank by size, keep the top K.

The ranked list is Figure 6's x-axis; thresholding it at the paper's
cutoff (2·10⁷ for Sprint, 8·10⁷ for Abilene) or at the automatically
detected knee yields the "true anomaly" set used by Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import TimeseriesModel
from repro.exceptions import ValidationError
from repro.traffic.matrix import TrafficMatrix

__all__ = ["TrueAnomaly", "extract_true_anomalies", "find_knee", "method_for"]


@dataclass(frozen=True, slots=True)
class TrueAnomaly:
    """One extracted ground-truth anomaly.

    Attributes
    ----------
    time_bin:
        When the spike peaks.
    flow_index:
        Which OD flow carries it.
    size_bytes:
        The extraction method's estimate of the spike magnitude
        (``|z_t − ẑ_t|``); always positive (methods see magnitudes).
    """

    time_bin: int
    flow_index: int
    size_bytes: float


def method_for(name: str, bin_seconds: float = 600.0) -> TimeseriesModel:
    """The extraction model for ``"ewma"``, ``"fourier"``, ``"ar"``,
    ``"holt-winters"`` or ``"wavelet"``.

    Resolved through the :mod:`repro.detectors` registry, so the
    extraction protocol and the comparison engine always agree on each
    method's configuration (EWMA α = 0.25 bidirectional, the paper's
    eight Fourier periods, a one-day Holt-Winters season, …).  Only
    column-wise timeseries detectors qualify — the subspace method has
    no per-flow model and is rejected.
    """
    from repro import detectors as registry
    from repro.exceptions import ModelError

    try:
        detector = registry.get(name, bin_seconds=bin_seconds)
    except ModelError as error:
        raise ValidationError(str(error)) from None
    model = getattr(detector, "model", None)
    if not isinstance(model, TimeseriesModel):
        raise ValidationError(
            f"detector {name!r} has no column-wise timeseries model and "
            "cannot extract per-flow anomalies"
        )
    return model


def extract_true_anomalies(
    od_traffic: TrafficMatrix,
    method: str | TimeseriesModel = "fourier",
    top_k: int = 40,
    local_window: int = 3,
) -> list[TrueAnomaly]:
    """The top-K ranked anomaly candidates across all OD flows.

    Parameters
    ----------
    od_traffic:
        The OD-flow traffic matrix (validation data, not method input).
    method:
        ``"ewma"``, ``"fourier"``, or any :class:`TimeseriesModel`.
    top_k:
        How many ranked candidates to return (the paper plots 40).
    local_window:
        A candidate must be the size maximum within ± this many bins of
        its flow's series (suppresses multi-bin echoes of one spike).

    Returns
    -------
    list[TrueAnomaly]
        Sorted by size, largest first.
    """
    if top_k < 1:
        raise ValidationError(f"top_k must be >= 1, got {top_k}")
    if local_window < 1:
        raise ValidationError(f"local_window must be >= 1, got {local_window}")
    model = (
        method
        if isinstance(method, TimeseriesModel)
        else method_for(method, bin_seconds=od_traffic.bin_seconds)
    )
    sizes = model.anomaly_sizes(od_traffic.values)  # (t, n)

    candidates: list[TrueAnomaly] = []
    for j in range(sizes.shape[1]):
        column = sizes[:, j]
        for time_bin in _local_maxima(column, local_window):
            candidates.append(
                TrueAnomaly(
                    time_bin=int(time_bin),
                    flow_index=j,
                    size_bytes=float(column[time_bin]),
                )
            )
    candidates.sort(key=lambda a: (-a.size_bytes, a.time_bin, a.flow_index))
    return candidates[:top_k]


def _local_maxima(values: np.ndarray, window: int) -> np.ndarray:
    """Indices that are the strict maximum of their ± ``window`` vicinity."""
    t = values.shape[0]
    maxima = []
    for i in range(t):
        lo = max(0, i - window)
        hi = min(t, i + window + 1)
        neighborhood = values[lo:hi]
        if values[i] == neighborhood.max() and np.argmax(neighborhood) == i - lo:
            maxima.append(i)
    return np.asarray(maxima, dtype=np.int64)


def find_knee(ranked_sizes: np.ndarray) -> int:
    """Index of the knee in a descending rank-ordered size list.

    Implements the maximum-chord-distance rule: normalize both axes to
    [0, 1], draw the chord from the first to the last point, and return
    the index farthest below it.  The paper picks its "important to
    detect" cutoff exactly at such a knee (§6.2, Fig. 6); anomalies at
    indices ``<= knee`` stand out to the left of it.
    """
    sizes = np.asarray(ranked_sizes, dtype=np.float64)
    if sizes.ndim != 1 or sizes.size < 3:
        raise ValidationError("need a descending vector of at least 3 sizes")
    if np.any(np.diff(sizes) > 1e-9):
        raise ValidationError("sizes must be sorted in descending order")

    x = np.linspace(0.0, 1.0, sizes.size)
    span = sizes[0] - sizes[-1]
    if span <= 0:
        return 0
    y = (sizes - sizes[-1]) / span
    # Chord from (0, 1) to (1, 0); signed distance ∝ 1 − x − y.
    distances = 1.0 - x - y
    return int(np.argmax(distances))
