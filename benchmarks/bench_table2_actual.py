"""Table 2: results from actual volume anomalies (all six rows).

Runs the §6.2 protocol — Fourier and EWMA ground truth extraction, then
subspace diagnosis at the 99.9% confidence level — for all three
datasets, and renders the table in the paper's format.
"""

from repro.validation import render_table2
from repro.validation.experiments import run_actual_anomaly_experiment

from conftest import write_result


def test_table2_actual_anomalies(benchmark, all_datasets, results_dir):
    def run():
        rows = []
        for dataset in all_datasets:
            for method in ("fourier", "ewma"):
                rows.append(run_actual_anomaly_experiment(dataset, method=method))
        return rows

    rows = benchmark(run)
    write_result(results_dir, "table2_actual", render_table2(rows))

    for row in rows:
        score = row.score
        # Paper Table 2 shape: high detection of above-cutoff anomalies
        # (Sprint-2 Fourier is the known exception at ~0.55-0.64 because
        # the extraction marks phase artifacts as anomalies), false
        # alarms in the handful-per-week range, near-perfect
        # identification of detected anomalies, quantification within a
        # few tens of percent.
        assert score.detection_rate >= 0.5
        assert score.false_alarms <= 15
        assert score.identification_rate >= 0.8
        assert score.mean_quantification_error < 0.40

    # At least four of the six rows reach the paper's 'nearly all
    # detected' regime.
    strong = sum(1 for row in rows if row.score.detection_rate >= 0.75)
    assert strong >= 4
