"""Tests for repro.datasets.dataset."""

import numpy as np
import pytest

from repro.datasets import Dataset
from repro.exceptions import DatasetError
from repro.traffic import AnomalyEvent


class TestConsistency:
    def test_small_dataset_is_consistent(self, small_dataset):
        expected = small_dataset.od_traffic.link_loads(small_dataset.routing)
        assert np.allclose(expected, small_dataset.link_traffic)

    def test_inconsistent_link_traffic_rejected(self, small_dataset):
        bad = small_dataset.link_traffic.copy()
        bad[0, 0] += 1e9
        with pytest.raises(DatasetError, match="inconsistent"):
            Dataset(
                name="bad",
                network=small_dataset.network,
                routing=small_dataset.routing,
                od_traffic=small_dataset.od_traffic,
                link_traffic=bad,
            )

    def test_wrong_bin_count_rejected(self, small_dataset):
        with pytest.raises(DatasetError):
            Dataset(
                name="bad",
                network=small_dataset.network,
                routing=small_dataset.routing,
                od_traffic=small_dataset.od_traffic,
                link_traffic=small_dataset.link_traffic[:-1],
            )

    def test_event_outside_trace_rejected(self, small_dataset):
        event = AnomalyEvent(
            time_bin=small_dataset.num_bins + 5, flow_index=0, amplitude_bytes=1.0
        )
        with pytest.raises(DatasetError):
            Dataset(
                name="bad",
                network=small_dataset.network,
                routing=small_dataset.routing,
                od_traffic=small_dataset.od_traffic,
                link_traffic=small_dataset.link_traffic,
                true_events=(event,),
            )


class TestProperties:
    def test_dimensions(self, small_dataset):
        assert small_dataset.num_bins == 288
        assert small_dataset.num_links == 49
        assert small_dataset.num_flows == 169
        assert small_dataset.bin_seconds == 600.0

    def test_measurement_matrix_alias(self, small_dataset):
        assert small_dataset.measurement_matrix is small_dataset.link_traffic

    def test_event_flows(self, small_dataset):
        flows = small_dataset.event_flows()
        assert len(flows) == len(small_dataset.true_events)
        for od_pair, event in zip(flows, small_dataset.true_events):
            assert small_dataset.routing.od_pairs[event.flow_index] == od_pair


class TestWindow:
    def test_window_shapes(self, small_dataset):
        window = small_dataset.window(0, 144)
        assert window.num_bins == 144
        assert window.num_links == small_dataset.num_links

    def test_window_reindexes_events(self, small_dataset):
        if not small_dataset.true_events:
            pytest.skip("dataset has no events")
        event = small_dataset.true_events[0]
        start = max(0, event.time_bin - 10)
        window = small_dataset.window(start, min(start + 50, small_dataset.num_bins))
        shifted = [e for e in window.true_events if e.flow_index == event.flow_index]
        assert any(e.time_bin == event.time_bin - start for e in shifted)

    def test_window_drops_outside_events(self, small_dataset):
        window = small_dataset.window(0, 5)
        assert all(e.time_bin < 5 for e in window.true_events)

    def test_window_consistency_preserved(self, small_dataset):
        window = small_dataset.window(10, 60)
        expected = window.od_traffic.link_loads(window.routing)
        assert np.allclose(expected, window.link_traffic)
