"""Autoregressive (Box–Jenkins-class) forecasting baseline.

The paper's §6.2 lists ARIMA-based Box–Jenkins models ([19, 26]) as the
sophisticated end of the forecasting class.  This module implements the
workhorse member: an AR(p) model on a ``d``-times differenced series,
fitted by ordinary least squares (the conditional maximum-likelihood
solution for Gaussian innovations), producing one-step forecasts

    ∇ᵈ ẑ_t = c + Σ_{k=1..p} φ_k · ∇ᵈ z_{t−k}

that are un-differenced back to the original scale.  ``d = 1`` removes
the slow diurnal drift; residual spikes mark anomalies exactly as with
the EWMA and Fourier baselines.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import TimeseriesModel
from repro.exceptions import ModelError

__all__ = ["ARModel", "fit_ar_coefficients"]


def fit_ar_coefficients(series: np.ndarray, order: int) -> tuple[np.ndarray, float]:
    """Least-squares AR(p) fit: returns ``(phi, intercept)``.

    Solves ``z_t ≈ c + Σ φ_k z_{t−k}`` over all usable rows.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ModelError(f"series must be a vector, got shape {series.shape}")
    if order < 1:
        raise ModelError(f"order must be >= 1, got {order}")
    if series.size <= 2 * order:
        raise ModelError(
            f"series of {series.size} samples too short for AR({order})"
        )
    rows = series.size - order
    design = np.empty((rows, order + 1))
    design[:, 0] = 1.0
    for k in range(1, order + 1):
        design[:, k] = series[order - k : series.size - k]
    target = series[order:]
    solution, *_ = np.linalg.lstsq(design, target, rcond=None)
    return solution[1:], float(solution[0])


class ARModel(TimeseriesModel):
    """AR(p) forecaster on a differenced series.

    Parameters
    ----------
    order:
        Autoregressive order ``p``.
    differencing:
        Number of first differences ``d`` applied before fitting (0-2).
        One difference suffices for slowly drifting diurnal series.
    """

    def __init__(self, order: int = 4, differencing: int = 1) -> None:
        if order < 1:
            raise ModelError(f"order must be >= 1, got {order}")
        if not 0 <= differencing <= 2:
            raise ModelError(
                f"differencing must be 0, 1 or 2, got {differencing}"
            )
        self.order = order
        self.differencing = differencing

    def predict(self, series: np.ndarray) -> np.ndarray:
        series = self._check(series)
        squeeze = series.ndim == 1
        matrix = series[:, None] if squeeze else series
        forecasts = self._predict_matrix(matrix)
        return forecasts[:, 0] if squeeze else forecasts

    def _predict_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """All columns in one vectorized pass.

        Bit-identical to :meth:`_predict_column` applied per column
        (the contract suite asserts it): the per-column least-squares
        fit is unchanged, and the one-step forecast — which depends
        only on *observed* lags, never on earlier forecasts — collapses
        from a per-timestep Python loop into ``p`` whole-array
        multiply-adds accumulated in the same
        ``φ₁z_{t−1} + φ₂z_{t−2} + …`` order the scalar dot product
        uses, with the intercept added last exactly as the loop does.
        """
        p = self.order
        diffed = matrix
        for _ in range(self.differencing):
            diffed = np.diff(diffed, axis=0)
        n = diffed.shape[0]
        if n <= 2 * p:
            raise ModelError(
                f"series too short for AR({self.order}) after "
                f"{self.differencing} difference(s)"
            )
        phis = np.empty((p, matrix.shape[1]))
        intercepts = np.empty(matrix.shape[1])
        for j in range(matrix.shape[1]):
            phis[:, j], intercepts[j] = fit_ar_coefficients(diffed[:, j], p)

        # One-step forecasts of the differenced series; seed the warm-up
        # region with the observed values (zero innovation surprise).
        # The lag-k term for forecast rows p..n-1 is the block
        # diffed[p-k : n-k], so each term is one broadcast multiply-add.
        diff_forecast = diffed.copy()
        accumulated = phis[0] * diffed[p - 1 : n - 1]
        for k in range(2, p + 1):
            accumulated += phis[k - 1] * diffed[p - k : n - k]
        diff_forecast[p:] = intercepts + accumulated

        # Undo the differencing: ẑ_t = z_{t−1} + ∇ẑ_t (per level).
        forecast = diff_forecast
        for level in range(self.differencing, 0, -1):
            base = matrix
            for _ in range(level - 1):
                base = np.diff(base, axis=0)
            rebuilt = np.empty_like(base)
            rebuilt[0] = base[0]
            rebuilt[1:] = base[:-1] + forecast
            forecast = rebuilt
        return forecast

    def _predict_column(self, column: np.ndarray) -> np.ndarray:
        """Scalar reference path: one column, one timestep at a time.

        Kept as the cross-validation oracle for :meth:`_predict_matrix`
        and as the slow side of the detector-comparison benchmark.
        """
        # Difference d times, keeping the removed prefixes for
        # reconstruction.
        diffed = column
        for _ in range(self.differencing):
            diffed = np.diff(diffed)
        if diffed.size <= 2 * self.order:
            raise ModelError(
                f"series too short for AR({self.order}) after "
                f"{self.differencing} difference(s)"
            )
        phi, intercept = fit_ar_coefficients(diffed, self.order)

        # One-step forecasts of the differenced series; seed the warm-up
        # region with the observed values (zero innovation surprise).
        diff_forecast = diffed.copy()
        for t in range(self.order, diffed.size):
            window = diffed[t - self.order : t][::-1]
            diff_forecast[t] = intercept + float(phi @ window)

        # Undo the differencing: ẑ_t = z_{t−1} + ∇ẑ_t (per level).
        forecast = diff_forecast
        for level in range(self.differencing, 0, -1):
            base = column
            for _ in range(level - 1):
                base = np.diff(base)
            rebuilt = np.empty(base.size)
            rebuilt[0] = base[0]
            rebuilt[1:] = base[:-1] + forecast
            forecast = rebuilt
        return forecast
