"""Anomaly identification (§5.2 and the §7.2 multi-flow extension).

Given a flagged measurement vector ``y``, identification asks which
candidate anomaly best explains the deviation of ``y`` from the normal
subspace.  For the single-flow case each candidate ``F_i`` is one OD flow
with link signature ``θ_i = A_i/‖A_i‖``; the best estimate of normal
traffic under hypothesis ``F_i`` is (Eq. 1)

    y*_i = (I − θ_i (θ̃_iᵀ θ̃_i)⁻¹ θ̃_iᵀ C̃) y,   θ̃_i = C̃ θ_i

and the chosen hypothesis minimizes ``‖C̃ y*_i‖``.

Because ``C̃`` is an orthogonal projector this minimization has a closed
form: ``‖C̃ y*_i‖² = ‖ỹ‖² − (θ̃_iᵀ ỹ)² / ‖θ̃_i‖²``, so the winner
maximizes the *explained residual energy* ``(θ̃_iᵀ ỹ)² / ‖θ̃_i‖²``.  Both
the literal Eq.-1 implementation and the closed form are provided; tests
verify they agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.subspace import SubspaceModel
from repro.exceptions import ModelError

__all__ = [
    "BlockIdentification",
    "IdentificationResult",
    "MultiFlowBlockIdentification",
    "identify_block",
    "identify_from_residuals",
    "identify_single_flow",
    "identify_single_flow_naive",
    "identify_multi_flow",
    "identify_multi_flow_block",
    "residual_scores",
]

#: Candidates whose residual-space signature is shorter than this are
#: undetectable (θ̃_i ≈ 0, §5.4) and excluded from identification.
_MIN_RESIDUAL_SIGNATURE = 1e-12


@dataclass(frozen=True)
class IdentificationResult:
    """Outcome of anomaly identification at one timestep.

    Attributes
    ----------
    flow_index:
        Index of the winning hypothesis (column of the candidate matrix).
    magnitude:
        The estimated anomaly magnitude ``f̂`` along the winning
        direction ``θ``; signed (negative = traffic drop).
    residual_spe:
        ``‖C̃ y*‖²`` — residual energy left after removing the hypothesized
        anomaly.
    scores:
        Explained residual energy per candidate (higher = better).
    """

    flow_index: int
    magnitude: float
    residual_spe: float
    scores: np.ndarray


def residual_scores(
    model: SubspaceModel,
    anomaly_directions: np.ndarray,
    residual: np.ndarray,
) -> np.ndarray:
    """Explained residual energy ``(θ̃_iᵀ ỹ)² / ‖θ̃_i‖²`` per candidate.

    Parameters
    ----------
    model:
        Fitted subspace model.
    anomaly_directions:
        ``(m, n)`` matrix whose columns are unit-norm candidate signatures
        ``θ_i`` (use ``RoutingMatrix.normalized_columns()``).
    residual:
        The residual vector ``ỹ`` (already projected; ``C̃ ỹ = ỹ``).

    Candidates invisible in the residual subspace score ``-inf``.
    """
    theta = _check_directions(model, anomaly_directions)
    residual = np.asarray(residual, dtype=np.float64)
    if residual.shape != (model.num_links,):
        raise ModelError(
            f"residual has shape {residual.shape}, expected ({model.num_links},)"
        )
    theta_tilde = model.anomalous_projector @ theta  # (m, n)
    signature_energy = np.einsum("ij,ij->j", theta_tilde, theta_tilde)
    # Because the residual already lives in the anomalous subspace,
    # θ̃ᵀ ỹ = θᵀ ỹ; using θ directly avoids a second projection.
    inner = theta.T @ residual
    with np.errstate(divide="ignore", invalid="ignore"):
        scores = np.where(
            signature_energy > _MIN_RESIDUAL_SIGNATURE,
            inner**2 / signature_energy,
            -np.inf,
        )
    return scores


def identify_single_flow(
    model: SubspaceModel,
    anomaly_directions: np.ndarray,
    measurement: np.ndarray,
) -> IdentificationResult:
    """Identify the single-flow anomaly best explaining ``measurement``.

    Uses the closed form of Eq. 1 (see module docstring).  Ties break
    toward the lowest flow index, making results deterministic.
    """
    residual = model.residual(measurement)
    scores = residual_scores(model, anomaly_directions, residual)
    if np.all(np.isneginf(scores)):
        raise ModelError(
            "no candidate anomaly is visible in the residual subspace"
        )
    winner = int(np.argmax(scores))
    theta = np.asarray(anomaly_directions, dtype=np.float64)[:, winner]
    theta_tilde = model.anomalous_projector @ theta
    energy = float(theta_tilde @ theta_tilde)
    magnitude = float(theta_tilde @ residual) / energy
    spe = float(residual @ residual)
    return IdentificationResult(
        flow_index=winner,
        magnitude=magnitude,
        residual_spe=spe - float(scores[winner]),
        scores=scores,
    )


@dataclass(frozen=True)
class BlockIdentification:
    """Vectorized identification outcome for a block of timesteps.

    Row ``t`` of every array describes the same quantities
    :class:`IdentificationResult` holds for one timestep; tests verify
    row-for-row agreement with :func:`identify_single_flow`.

    Attributes
    ----------
    flow_indices:
        ``(t,)`` winning hypothesis per timestep.
    magnitudes:
        ``(t,)`` signed anomaly magnitudes ``f̂`` along each winner.
    residual_spe:
        ``(t,)`` residual energy left after removing each winner.
    scores:
        ``(t, n)`` explained residual energy per candidate.
    """

    flow_indices: np.ndarray
    magnitudes: np.ndarray
    residual_spe: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return int(self.flow_indices.shape[0])


def identify_block(
    model: SubspaceModel,
    anomaly_directions: np.ndarray,
    measurements: np.ndarray,
) -> BlockIdentification:
    """Identify the best single-flow hypothesis at every timestep at once.

    The batched form of :func:`identify_single_flow`: one ``(t, m) @
    (m, n)`` product replaces ``t`` separate matrix-vector passes, which
    is what makes whole-trace diagnosis and the streaming pipeline fast.
    Ties break toward the lowest flow index, exactly as in the scalar
    path.

    Parameters
    ----------
    model:
        Fitted subspace model.
    anomaly_directions:
        ``(m, n)`` matrix of unit-norm candidate signatures ``θ_i``.
    measurements:
        ``(t, m)`` block of raw measurement vectors (typically only the
        flagged timesteps).

    Raises
    ------
    ModelError
        When no candidate is visible in the residual subspace (then no
        timestep can be identified).
    """
    theta = _check_directions(model, anomaly_directions)
    measurements = np.asarray(measurements, dtype=np.float64)
    if measurements.ndim == 1:
        measurements = measurements[None, :]
    if measurements.ndim != 2 or measurements.shape[1] != model.num_links:
        raise ModelError(
            f"measurements must be (t, {model.num_links}), got shape "
            f"{measurements.shape}"
        )

    residuals = model.residual(measurements)  # (t, m)
    theta_tilde = model.anomalous_projector @ theta  # (m, n)
    signature_energy = np.einsum("ij,ij->j", theta_tilde, theta_tilde)  # (n,)
    return identify_from_residuals(residuals, theta, signature_energy)


def identify_from_residuals(
    residuals: np.ndarray,
    anomaly_directions: np.ndarray,
    signature_energy: np.ndarray,
) -> BlockIdentification:
    """The scoring kernel shared by batch and streaming identification.

    Callers supply already-projected residual vectors ``ỹ`` and the
    per-candidate residual signature energies ``‖C̃ θ_j‖²`` (computed
    however their model representation makes cheapest); this routine
    owns the score/argmax/magnitude algebra so the tie-break and the
    detectability cutoff live in exactly one place.

    Parameters
    ----------
    residuals:
        ``(t, m)`` residual vectors (``C̃ ỹ = ỹ`` must already hold).
    anomaly_directions:
        ``(m, n)`` unit-norm candidate signatures ``θ_i``.
    signature_energy:
        ``(n,)`` energies ``‖C̃ θ_j‖²``.
    """
    valid = signature_energy > _MIN_RESIDUAL_SIGNATURE
    if not np.any(valid):
        raise ModelError(
            "no candidate anomaly is visible in the residual subspace"
        )
    # θ̃ᵀ ỹ = θᵀ ỹ because ỹ already lives in the anomalous subspace.
    inner = residuals @ anomaly_directions  # (t, n)
    inv_energy = np.where(valid, 1.0 / np.where(valid, signature_energy, 1.0), 0.0)
    scores = np.where(valid[None, :], inner**2 * inv_energy[None, :], -np.inf)

    winners = np.argmax(scores, axis=1)  # (t,)
    rows = np.arange(residuals.shape[0])
    magnitudes = inner[rows, winners] * inv_energy[winners]
    spe = np.einsum("ij,ij->i", residuals, residuals)
    return BlockIdentification(
        flow_indices=winners,
        magnitudes=magnitudes,
        residual_spe=spe - scores[rows, winners],
        scores=scores,
    )


def identify_single_flow_naive(
    model: SubspaceModel,
    anomaly_directions: np.ndarray,
    measurement: np.ndarray,
) -> IdentificationResult:
    """Literal implementation of the paper's Eq. 1 (reference/oracle).

    Computes ``y*_i`` for every hypothesis and picks
    ``argmin_i ‖C̃ y*_i‖``.  O(n·m²); used to validate the closed form.
    """
    theta = _check_directions(model, anomaly_directions)
    measurement = np.asarray(measurement, dtype=np.float64)
    centered = measurement - model.pca.mean
    c_tilde = model.anomalous_projector
    residual = c_tilde @ centered

    n = theta.shape[1]
    spe_after = np.full(n, np.inf)
    magnitudes = np.zeros(n)
    for i in range(n):
        theta_i = theta[:, i]
        theta_tilde = c_tilde @ theta_i
        energy = float(theta_tilde @ theta_tilde)
        if energy <= _MIN_RESIDUAL_SIGNATURE:
            continue
        f_hat = float(theta_tilde @ residual) / energy
        y_star = centered - theta_i * f_hat
        r_star = c_tilde @ y_star
        spe_after[i] = float(r_star @ r_star)
        magnitudes[i] = f_hat
    if np.all(np.isinf(spe_after)):
        raise ModelError(
            "no candidate anomaly is visible in the residual subspace"
        )
    winner = int(np.argmin(spe_after))
    base_spe = float(residual @ residual)
    return IdentificationResult(
        flow_index=winner,
        magnitude=float(magnitudes[winner]),
        residual_spe=float(spe_after[winner]),
        scores=base_spe - spe_after,
    )


@dataclass(frozen=True)
class MultiFlowIdentification:
    """Outcome of multi-flow identification (§7.2).

    Attributes
    ----------
    hypothesis_index:
        Index of the winning hypothesis in the supplied list.
    magnitudes:
        Per-flow anomaly intensities ``f̂`` for the winning hypothesis.
    residual_spe:
        Residual energy after removing the hypothesized anomaly.
    """

    hypothesis_index: int
    magnitudes: np.ndarray
    residual_spe: float


@dataclass(frozen=True)
class MultiFlowBlockIdentification:
    """Vectorized multi-flow identification over a block of timesteps.

    Row ``t`` describes the same quantities
    :class:`MultiFlowIdentification` holds for one timestep; tests verify
    row-for-row agreement with the per-measurement greedy loop.

    Attributes
    ----------
    hypothesis_indices:
        ``(t,)`` winning hypothesis per timestep.
    magnitudes:
        Per-timestep intensity vectors ``f̂`` of each winner (ragged —
        hypotheses may span different flow counts — hence a tuple).
    residual_spe:
        ``(t,)`` residual energy left after removing each winner.
    spe_after:
        ``(t, h)`` residual energy under every hypothesis.
    """

    hypothesis_indices: np.ndarray
    magnitudes: tuple[np.ndarray, ...]
    residual_spe: np.ndarray
    spe_after: np.ndarray

    def __len__(self) -> int:
        return int(self.hypothesis_indices.shape[0])


#: The greedy hypothesis scan only dethrones the incumbent when the
#: challenger improves residual energy by more than this (absolute).
_SPE_TIEBREAK = 1e-12


def _check_hypotheses(
    hypotheses: Sequence[np.ndarray], num_links: int
) -> list[np.ndarray]:
    """Validate and normalize hypothesis matrices to ``(m, k_i)``."""
    if not hypotheses:
        raise ModelError("at least one hypothesis is required")
    matrices: list[np.ndarray] = []
    for index, theta in enumerate(hypotheses):
        theta = np.asarray(theta, dtype=np.float64)
        if theta.ndim == 1:
            theta = theta[:, None]
        if theta.ndim != 2 or theta.shape[0] != num_links:
            raise ModelError(
                f"hypothesis {index} has shape {theta.shape}, expected "
                f"({num_links}, k)"
            )
        matrices.append(theta)
    return matrices


def _greedy_winner(spe_row: np.ndarray) -> int:
    """The index the sequential greedy scan would pick on these energies.

    A later hypothesis only dethrones the incumbent when it improves by
    more than ``_SPE_TIEBREAK`` — scalar comparisons over precomputed
    energies, so the scan costs O(h) flops, not O(h·m²).  Returns ``-1``
    when no hypothesis produced a finite energy (non-finite values never
    beat the ``inf`` incumbent), mirroring the greedy loop.
    """
    best_index = -1
    best_spe = np.inf
    for index in range(spe_row.shape[0]):
        if spe_row[index] < best_spe - _SPE_TIEBREAK:
            best_index = index
            best_spe = spe_row[index]
    return best_index


def identify_multi_flow_block(
    model: SubspaceModel,
    hypotheses: Sequence[np.ndarray],
    measurements: np.ndarray,
) -> MultiFlowBlockIdentification:
    """Identify the best multi-flow hypothesis at every timestep at once.

    The batched form of :func:`identify_multi_flow`: hypotheses are
    grouped by flow count and each group's projection, least-squares
    solve (batched pseudoinverse — rank-deficient hypotheses degrade
    exactly as ``lstsq`` does) and leftover energy run as stacked BLAS
    calls over all timesteps and hypotheses simultaneously.  Only the
    final greedy scan — scalar comparisons per timestep — stays a loop,
    preserving the sequential tie-break bit for bit.
    """
    matrices = _check_hypotheses(hypotheses, model.num_links)
    measurements = np.asarray(measurements, dtype=np.float64)
    if measurements.ndim == 1:
        measurements = measurements[None, :]
    if measurements.ndim != 2 or measurements.shape[1] != model.num_links:
        raise ModelError(
            f"measurements must be (t, {model.num_links}), got shape "
            f"{measurements.shape}"
        )
    residuals = model.residual(measurements)  # (t, m)
    c_tilde = model.anomalous_projector
    num_steps = residuals.shape[0]
    num_hypotheses = len(matrices)

    groups: dict[int, list[int]] = {}
    for index, theta in enumerate(matrices):
        groups.setdefault(theta.shape[1], []).append(index)

    spe_after = np.empty((num_steps, num_hypotheses))
    intensities: list[np.ndarray | None] = [None] * num_hypotheses
    for width, indices in groups.items():
        stack = np.stack([matrices[i] for i in indices])  # (g, m, k)
        tilde = c_tilde @ stack  # batched (g, m, k)
        # Least-squares intensities via the batched pseudoinverse; pinv
        # handles rank deficiency (e.g. two flows with identical paths).
        pinv = np.linalg.pinv(tilde)  # (g, k, m)
        f_hat = np.einsum("gkm,tm->tgk", pinv, residuals)  # (t, g, k)
        fitted = np.einsum("gmk,tgk->tgm", tilde, f_hat)  # (t, g, m)
        leftover = residuals[:, None, :] - fitted
        spe_after[:, indices] = np.einsum("tgm,tgm->tg", leftover, leftover)
        for position, index in enumerate(indices):
            intensities[index] = f_hat[:, position, :]

    winners = np.fromiter(
        (_greedy_winner(spe_after[t]) for t in range(num_steps)),
        dtype=np.int64,
        count=num_steps,
    )
    if np.any(winners < 0):
        raise ModelError(
            "all hypotheses degenerate in the residual subspace"
        )
    magnitudes = tuple(
        intensities[winner][t] for t, winner in enumerate(winners)
    )
    return MultiFlowBlockIdentification(
        hypothesis_indices=winners,
        magnitudes=magnitudes,
        residual_spe=spe_after[np.arange(num_steps), winners],
        spe_after=spe_after,
    )


def identify_multi_flow(
    model: SubspaceModel,
    hypotheses: Sequence[np.ndarray],
    measurement: np.ndarray,
) -> MultiFlowIdentification:
    """Identify among multi-flow hypotheses (paper §7.2).

    Each hypothesis is an ``(m, k_i)`` matrix ``Θ_i`` whose columns are
    the unit-norm signatures of the flows participating in that anomaly;
    the anomaly intensity becomes a vector ``f_i`` estimated by least
    squares in the residual subspace.  The winner minimizes the remaining
    residual energy, exactly as in the single-flow case.

    The per-hypothesis algebra is batched (see
    :func:`identify_multi_flow_block`); tests pin agreement with the
    literal greedy loop over ``lstsq`` solves.
    """
    measurement = np.asarray(measurement, dtype=np.float64)
    if measurement.ndim != 1:
        raise ModelError(
            f"measurement must be one vector of shape ({model.num_links},), "
            f"got shape {measurement.shape}; use identify_multi_flow_block "
            "for a block of timesteps"
        )
    block = identify_multi_flow_block(model, hypotheses, measurement)
    return MultiFlowIdentification(
        hypothesis_index=int(block.hypothesis_indices[0]),
        magnitudes=np.asarray(block.magnitudes[0]),
        residual_spe=float(block.residual_spe[0]),
    )


def _identify_multi_flow_loop(
    model: SubspaceModel,
    hypotheses: Sequence[np.ndarray],
    measurement: np.ndarray,
) -> MultiFlowIdentification:
    """Reference greedy loop (pre-vectorization implementation).

    One projection and one ``lstsq`` per hypothesis; kept for the
    equivalence regression tests and benchmarks.
    """
    matrices = _check_hypotheses(hypotheses, model.num_links)
    measurement = np.asarray(measurement, dtype=np.float64)
    residual = model.residual(measurement)
    c_tilde = model.anomalous_projector

    best_index = -1
    best_spe = np.inf
    best_f: np.ndarray | None = None
    for index, theta in enumerate(matrices):
        theta_tilde = c_tilde @ theta
        f_hat, *_ = np.linalg.lstsq(theta_tilde, residual, rcond=None)
        leftover = residual - theta_tilde @ f_hat
        spe = float(leftover @ leftover)
        if spe < best_spe - _SPE_TIEBREAK:
            best_index = index
            best_spe = spe
            best_f = f_hat
    if best_index < 0:
        raise ModelError("all hypotheses degenerate in the residual subspace")
    return MultiFlowIdentification(
        hypothesis_index=best_index,
        magnitudes=np.asarray(best_f),
        residual_spe=best_spe,
    )


def _check_directions(model: SubspaceModel, directions: np.ndarray) -> np.ndarray:
    theta = np.asarray(directions, dtype=np.float64)
    if theta.ndim != 2:
        raise ModelError(
            f"anomaly directions must form a matrix, got shape {theta.shape}"
        )
    if theta.shape[0] != model.num_links:
        raise ModelError(
            f"anomaly directions have {theta.shape[0]} rows, expected "
            f"{model.num_links}"
        )
    return theta
