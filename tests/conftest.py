"""Shared fixtures.

Expensive artifacts (the three paper datasets, fitted detectors) are
session-scoped; small structural fixtures are function-scoped so tests may
mutate them freely.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.datasets import build_dataset
from repro.datasets.synthetic import dataset_from_config
from repro.routing import SPFRouting, build_routing_matrix
from repro.topology import line_network, toy_network
from repro.traffic.workloads import workload_for


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite golden files from the current outputs instead of "
        "comparing against them",
    )


@pytest.fixture
def golden_check(request):
    """Compare a JSON payload against a pinned golden file.

    ``golden_check(path, payload)`` canonicalizes the payload (sorted
    keys, two-space indent, trailing newline) and asserts the file
    matches byte-for-byte.  Under ``pytest --update-goldens`` it
    rewrites the file instead — the refresh path after an intentional
    behavior change.  Regeneration on an unchanged tree is
    byte-identical because every producer is fully seeded and floats
    are rounded to a fixed number of significant digits upstream.
    """
    from repro.scenarios import canonical_json

    update = request.config.getoption("--update-goldens")

    def check(path: Path, payload: dict) -> None:
        path = Path(path)
        text = canonical_json(payload)
        if update:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            return
        assert path.exists(), (
            f"golden file {path} is missing; create it with "
            f"`pytest {path.parent} --update-goldens`"
        )
        on_disk = path.read_text()
        assert on_disk == text, (
            f"golden drift in {path.name}: the current output no longer "
            "matches the pinned file. If the change is intentional, "
            "refresh with `pytest --update-goldens` and review the diff."
        )

    return check


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def toy_net():
    """4-PoP square-with-diagonal network, intra-PoP links included."""
    return toy_network()


@pytest.fixture
def toy_routing(toy_net):
    """Single-path routing matrix over the toy network."""
    table = SPFRouting(toy_net).compute()
    return build_routing_matrix(toy_net, table)


@pytest.fixture
def line_net():
    """5-PoP chain (unique paths everywhere)."""
    return line_network(5)


@pytest.fixture(scope="session")
def sprint1():
    """The Sprint-1 evaluation dataset (seeded, deterministic)."""
    return build_dataset("sprint-1")


@pytest.fixture(scope="session")
def abilene_ds():
    """The Abilene evaluation dataset (seeded, deterministic)."""
    return build_dataset("abilene")


@pytest.fixture(scope="session")
def small_dataset():
    """A fast two-day Sprint-like dataset for integration tests."""
    config = workload_for("sprint-1").with_overrides(
        name="sprint-small",
        num_bins=288,
        num_anomalies=8,
        traffic_seed=777,
        anomaly_seed=778,
    )
    return dataset_from_config(config)
