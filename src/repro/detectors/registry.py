"""String-keyed detector registry.

The comparison engine, the CLI and the validation harness all refer to
detectors by name — ``detectors.get("ewma")`` — so adding a method to
every workload in the library is one :func:`register` call.  Factories
receive whatever keyword arguments the caller supplies; every built-in
factory accepts at least ``confidence`` and ``bin_seconds`` so grid
drivers can configure any detector uniformly without knowing which
knobs it actually has.

>>> from repro import detectors
>>> sorted(detectors.available())[:3]
['ar', 'ewma', 'fourier']
>>> detector = detectors.get("ewma", confidence=0.995)
>>> detector.name
'ewma'
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.detectors.base import Detector
from repro.detectors.temporal import (
    ar_detector,
    ewma_detector,
    fourier_detector,
    holt_winters_detector,
    wavelet_detector,
)
from repro.exceptions import ModelError

__all__ = [
    "register",
    "get",
    "get_factory",
    "available",
    "aliases",
    "resolve_names",
]

DetectorFactory = Callable[..., Detector]

_REGISTRY: dict[str, DetectorFactory] = {}
_ALIASES: dict[str, str] = {}


def register(
    name: str,
    factory: DetectorFactory,
    aliases: Iterable[str] = (),
    overwrite: bool = False,
) -> None:
    """Register a detector factory under ``name`` (plus ``aliases``).

    ``factory(**kwargs)`` must return an object satisfying the
    :class:`~repro.detectors.base.Detector` protocol.
    """
    key = _normalize(name)
    if not overwrite and (key in _REGISTRY or key in _ALIASES):
        raise ModelError(f"detector {name!r} is already registered")
    _REGISTRY[key] = factory
    for alias in aliases:
        alias_key = _normalize(alias)
        if not overwrite and (alias_key in _REGISTRY or alias_key in _ALIASES):
            raise ModelError(f"detector alias {alias!r} is already registered")
        _ALIASES[alias_key] = key


def get(name: str, **kwargs) -> Detector:
    """Build a fresh (unfitted) detector registered under ``name``.

    Keyword arguments are forwarded to the factory; every built-in
    accepts ``confidence`` and ``bin_seconds``.
    """
    return get_factory(name)(**kwargs)


def get_factory(name: str) -> DetectorFactory:
    """The factory registered under ``name`` (aliases resolved).

    Grid drivers that fan work out over processes ship the factory
    itself to the workers, so detectors registered at runtime keep
    working under spawn-start ``multiprocessing`` (a re-imported
    registry would only hold the built-ins).
    """
    return _REGISTRY[_resolve_key(name)]


def available() -> tuple[str, ...]:
    """Canonical names of all registered detectors, sorted."""
    return tuple(sorted(_REGISTRY))


def aliases() -> dict[str, str]:
    """Every registered alias mapped to its canonical detector name.

    Contract tests iterate this to assert each alias actually resolves
    to a registered factory.
    """
    return dict(sorted(_ALIASES.items()))


def resolve_names(names: Iterable[str]) -> tuple[str, ...]:
    """Normalize a detector-name list, resolving aliases and de-duping.

    Raises on unknown names; preserves first-seen order.
    """
    resolved: list[str] = []
    for name in names:
        key = _resolve_key(name)
        if key not in resolved:
            resolved.append(key)
    if not resolved:
        raise ModelError("at least one detector name is required")
    return tuple(resolved)


def _normalize(name: str) -> str:
    if not isinstance(name, str) or not name.strip():
        raise ModelError(f"detector name must be a non-empty string, got {name!r}")
    return name.strip().lower()


def _resolve_key(name: str) -> str:
    """Canonical registry key for ``name``; raises on unknown names."""
    key = _normalize(name)
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ModelError(f"unknown detector {name!r}; registered: {known}")
    return key


def _subspace_factory(**kwargs) -> Detector:
    from repro.detectors.subspace import SubspaceDetector

    kwargs.pop("bin_seconds", None)  # the subspace method is bin-agnostic
    return SubspaceDetector(**kwargs)


def _sharded_subspace_factory(**kwargs) -> Detector:
    from repro.detectors.sharded import ShardedSubspaceDetector

    kwargs.pop("bin_seconds", None)  # bin-agnostic, like the subspace method
    return ShardedSubspaceDetector(**kwargs)


def _fleet_subspace_factory(**kwargs) -> Detector:
    from repro.detectors.fleet import FleetSubspaceDetector

    kwargs.pop("bin_seconds", None)  # bin-agnostic, like the subspace method
    return FleetSubspaceDetector(**kwargs)


def _streaming_subspace_factory(**kwargs) -> Detector:
    from repro.detectors.streaming import StreamingSubspaceDetector

    kwargs.pop("bin_seconds", None)  # bin-agnostic, like the subspace method
    return StreamingSubspaceDetector(**kwargs)


register("subspace", _subspace_factory, aliases=("spe", "pca"))
register(
    "sharded-subspace",
    _sharded_subspace_factory,
    aliases=("spatial-subspace", "zoned-subspace"),
)
register(
    "fleet-subspace",
    _fleet_subspace_factory,
    aliases=("multi-tenant-subspace", "tenant-subspace"),
)
register(
    "streaming-subspace",
    _streaming_subspace_factory,
    aliases=("online-subspace", "incremental-subspace"),
)
register("ewma", ewma_detector)
register("fourier", fourier_detector)
register("ar", ar_detector)
register("holt-winters", holt_winters_detector, aliases=("holtwinters",))
register("wavelet", wavelet_detector)
