"""Volume-anomaly shapes and injection.

A *volume anomaly* is a sudden positive or negative change in an OD flow's
traffic (paper §2).  The paper's most prevalent anomalies last under one
10-minute bin and appear as single-point spikes (Fig. 1); we support that
shape plus square pulses and ramps for multi-bin events, all expressed as
additive byte deltas on one OD flow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro._util import rng_from
from repro.exceptions import TrafficError
from repro.traffic.matrix import TrafficMatrix

__all__ = [
    "AnomalyShape",
    "AnomalyEvent",
    "inject_anomalies",
    "make_anomaly_events",
]


class AnomalyShape(enum.Enum):
    """Temporal footprint of an injected anomaly."""

    #: All bytes land in a single time bin (the paper's dominant case).
    SPIKE = "spike"
    #: Constant extra bytes over ``duration_bins`` consecutive bins.
    SQUARE = "square"
    #: Linear rise from zero to the peak over ``duration_bins`` bins.
    RAMP = "ramp"
    #: Linear rise to the peak over the first third, then a geometric
    #: decay (halving per bin) — the flash-crowd footprint.
    BURST = "burst"


@dataclass(frozen=True, slots=True)
class AnomalyEvent:
    """One injected volume anomaly.

    Parameters
    ----------
    time_bin:
        Index of the (first) affected time bin.
    flow_index:
        Column of the affected OD flow.
    amplitude_bytes:
        Peak per-bin byte delta.  Negative values model traffic drops;
        injection clips the resulting flow at zero (a flow cannot carry
        negative bytes) and records the clipped delta as the effective
        amplitude.
    shape:
        Temporal footprint.
    duration_bins:
        Number of affected bins (must be 1 for :attr:`AnomalyShape.SPIKE`).
    """

    time_bin: int
    flow_index: int
    amplitude_bytes: float
    shape: AnomalyShape = AnomalyShape.SPIKE
    duration_bins: int = 1

    def __post_init__(self) -> None:
        if self.time_bin < 0:
            raise TrafficError(f"time_bin must be >= 0, got {self.time_bin}")
        if self.flow_index < 0:
            raise TrafficError(f"flow_index must be >= 0, got {self.flow_index}")
        if self.amplitude_bytes == 0:
            raise TrafficError("amplitude_bytes must be non-zero")
        if self.duration_bins < 1:
            raise TrafficError(
                f"duration_bins must be >= 1, got {self.duration_bins}"
            )
        if self.shape is AnomalyShape.SPIKE and self.duration_bins != 1:
            raise TrafficError("SPIKE anomalies occupy exactly one bin")
        if self.shape is AnomalyShape.BURST and self.duration_bins < 2:
            raise TrafficError("BURST anomalies need at least two bins")

    def deltas(self) -> np.ndarray:
        """Per-bin byte deltas of length ``duration_bins``."""
        if self.shape is AnomalyShape.SPIKE:
            return np.array([self.amplitude_bytes])
        if self.shape is AnomalyShape.SQUARE:
            return np.full(self.duration_bins, self.amplitude_bytes)
        if self.shape is AnomalyShape.RAMP:
            steps = np.arange(1, self.duration_bins + 1, dtype=np.float64)
            return self.amplitude_bytes * steps / self.duration_bins
        if self.shape is AnomalyShape.BURST:
            rise = max(1, self.duration_bins // 3)
            up = np.arange(1, rise + 1, dtype=np.float64) / rise
            down = 0.5 ** np.arange(1, self.duration_bins - rise + 1)
            return self.amplitude_bytes * np.concatenate([up, down])
        raise TrafficError(f"unhandled shape: {self.shape!r}")  # pragma: no cover

    @property
    def last_bin(self) -> int:
        """Index of the final affected time bin."""
        return self.time_bin + self.duration_bins - 1


def inject_anomalies(
    traffic: TrafficMatrix,
    events: list[AnomalyEvent],
) -> tuple[TrafficMatrix, list[AnomalyEvent]]:
    """Apply anomaly events to a traffic matrix.

    Returns the perturbed matrix together with the list of *effective*
    events: if clipping at zero reduced a negative anomaly's magnitude, the
    recorded amplitude reflects the bytes actually removed, so ground-truth
    bookkeeping stays consistent with the data.
    """
    values = traffic.values.copy()
    effective: list[AnomalyEvent] = []
    for event in events:
        if event.last_bin >= traffic.num_bins:
            raise TrafficError(
                f"anomaly at bin {event.time_bin} (duration "
                f"{event.duration_bins}) exceeds trace length {traffic.num_bins}"
            )
        if event.flow_index >= traffic.num_flows:
            raise TrafficError(
                f"anomaly targets flow {event.flow_index} but trace has "
                f"{traffic.num_flows} flows"
            )
        deltas = event.deltas()
        rows = slice(event.time_bin, event.time_bin + event.duration_bins)
        before = values[rows, event.flow_index].copy()
        after = np.maximum(before + deltas, 0.0)
        values[rows, event.flow_index] = after
        applied_peak = float(np.max(np.abs(after - before)))
        if applied_peak == 0.0:
            # The anomaly was entirely clipped away; skip it.
            continue
        realized = after - before
        peak_signed = realized[np.argmax(np.abs(realized))]
        effective.append(
            AnomalyEvent(
                time_bin=event.time_bin,
                flow_index=event.flow_index,
                amplitude_bytes=float(peak_signed),
                shape=event.shape,
                duration_bins=event.duration_bins,
            )
        )
    return traffic.with_values(values), effective


def make_anomaly_events(
    num_events: int,
    num_bins: int,
    num_flows: int,
    size_range: tuple[float, float],
    seed: int | np.random.Generator | None = None,
    pareto_shape: float = 1.2,
    negative_fraction: float = 0.1,
    margin_bins: int = 6,
    min_separation_bins: int = 3,
) -> list[AnomalyEvent]:
    """Draw a random set of single-bin spike anomalies.

    Sizes follow a truncated Pareto distribution over ``size_range`` so
    that a few events dominate — reproducing the sharp knee in the paper's
    rank-ordered anomaly plot (Fig. 6).  Events avoid the first and last
    ``margin_bins`` bins (so baseline extraction methods have warm-up data)
    and no two events share a time bin or fall within
    ``min_separation_bins`` of each other.

    Parameters
    ----------
    num_events:
        How many anomalies to place.
    num_bins, num_flows:
        Trace dimensions.
    size_range:
        ``(smallest, largest)`` anomaly magnitude in bytes.
    seed:
        Randomness source.
    pareto_shape:
        Tail exponent; smaller values concentrate more mass in a few large
        anomalies.
    negative_fraction:
        Fraction of events that *remove* traffic.
    margin_bins:
        Bins at the start and end of the trace kept anomaly-free.
    min_separation_bins:
        Minimum spacing between any two events.
    """
    if num_events < 0:
        raise TrafficError(f"num_events must be >= 0, got {num_events}")
    low, high = size_range
    if not 0 < low <= high:
        raise TrafficError(f"invalid size_range: {size_range!r}")
    if num_bins <= 2 * margin_bins:
        raise TrafficError(
            f"trace of {num_bins} bins too short for margin {margin_bins}"
        )
    rng = rng_from(seed)

    usable = np.arange(margin_bins, num_bins - margin_bins)
    events: list[AnomalyEvent] = []
    occupied: list[int] = []
    attempts = 0
    while len(events) < num_events:
        attempts += 1
        if attempts > 100 * max(num_events, 1):
            raise TrafficError(
                "could not place anomalies with the requested separation; "
                "reduce num_events or min_separation_bins"
            )
        time_bin = int(rng.choice(usable))
        if any(abs(time_bin - t) < min_separation_bins for t in occupied):
            continue
        flow_index = int(rng.integers(0, num_flows))
        # Truncated Pareto via inverse-CDF sampling.
        u = rng.uniform()
        a = pareto_shape
        low_a, high_a = low**-a, high**-a
        size = (low_a - u * (low_a - high_a)) ** (-1.0 / a)
        sign = -1.0 if rng.uniform() < negative_fraction else 1.0
        events.append(
            AnomalyEvent(
                time_bin=time_bin,
                flow_index=flow_index,
                amplitude_bytes=float(sign * size),
            )
        )
        occupied.append(time_bin)
    return sorted(events, key=lambda e: e.time_bin)
