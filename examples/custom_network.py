#!/usr/bin/env python3
"""Bring your own network (and the §7.2 multi-flow extension).

The method is not limited to the paper's two backbones — it applies to
any network with link byte counts.  This example:

1. builds a custom 8-PoP topology with the fluent builder;
2. generates a workload and fits the diagnoser on it;
3. diagnoses a single-flow anomaly;
4. simulates a *link failure* that reroutes several OD flows at once and
   uses the multi-flow identification of §7.2 to recognize the affected
   flow group from link data.

Run:  python examples/custom_network.py
"""

import numpy as np

from repro import AnomalyDiagnoser, SPFRouting, build_routing_matrix
from repro.core import identify_multi_flow
from repro.routing import LinkFailure, apply_events
from repro.routing.events import reroute_delta
from repro.topology import NetworkBuilder
from repro.traffic import ODFlowGenerator


def build_network():
    return (
        NetworkBuilder("metro-8")
        .pop("sea", city="Seattle", population=2.0)
        .pop("sfo", city="San Francisco", population=4.0)
        .pop("lax", city="Los Angeles", population=6.0)
        .pop("den", city="Denver", population=1.5)
        .pop("chi", city="Chicago", population=5.0)
        .pop("dal", city="Dallas", population=3.5)
        .pop("dca", city="Washington", population=4.0)
        .pop("nyc", city="New York", population=9.0)
        .edge("sea", "sfo")
        .edge("sea", "den")
        .edge("sfo", "lax")
        .edge("sfo", "den")
        .edge("lax", "dal")
        .edge("den", "chi")
        .edge("dal", "chi")
        .edge("dal", "dca")
        .edge("chi", "nyc")
        .edge("dca", "nyc")
        .with_intra_pop_links()
        .build()
    )


def main() -> None:
    network = build_network()
    routing = build_routing_matrix(network, SPFRouting(network).compute())
    print(f"Custom network: {network.num_pops} PoPs, {network.num_links} links, "
          f"{network.num_od_pairs} OD flows")

    generator = ODFlowGenerator(network, total_bytes_per_bin=3e9, seed=2024)
    traffic = generator.generate(1008)
    link_traffic = traffic.link_loads(routing)

    diagnoser = AnomalyDiagnoser(confidence=0.999).fit(link_traffic, routing)
    print(f"Fitted: rank {diagnoser.detector.normal_rank}, "
          f"threshold {diagnoser.detector.threshold:.3e}")

    # --- single-flow anomaly -----------------------------------------
    flow = routing.od_index("sea", "nyc")
    y = link_traffic[500] + 1.2e8 * routing.column(flow)
    diagnosis = diagnoser.diagnose_timestep(y, time_bin=500)
    origin, destination = diagnosis.od_pair
    print(
        f"\nSingle-flow anomaly injected on sea->nyc: diagnosed "
        f"{origin}->{destination}, {diagnosis.estimated_bytes:.2e} bytes"
    )

    # --- multi-flow anomaly from a reroute (§7.2) ---------------------
    after = apply_events(network, [LinkFailure("chi", "nyc")])
    moved = reroute_delta(routing, after)
    print(f"\nLink chi-nyc fails; {len(moved)} OD flows reroute: "
          + ", ".join(f"{o}->{d}" for o, d in moved[:6])
          + (" ..." if len(moved) > 6 else ""))

    # The traffic of the moved flows shifts from old paths to new paths;
    # on the *old* routing matrix this looks like correlated drops and
    # rises.  Build the anomaly signature of the moved group: the link
    # delta per unit of traffic is (A_after - A_before) for each flow.
    time_bin = 650
    x = traffic.values[time_bin]
    y_rerouted = after.link_loads(x)

    theta = routing.normalized_columns()
    moved_indices = [routing.od_index(o, d) for o, d in moved]
    delta_columns = after.matrix[:, moved_indices] - routing.matrix[:, moved_indices]
    norms = np.linalg.norm(delta_columns, axis=0)
    group_signature = delta_columns / norms

    hypotheses = [theta[:, [j]] for j in range(routing.num_flows)]
    hypotheses.append(group_signature)
    model = diagnoser.detector.model
    result = identify_multi_flow(model, hypotheses, y_rerouted)
    winner = (
        "reroute group"
        if result.hypothesis_index == len(hypotheses) - 1
        else f"single flow {routing.od_pairs[result.hypothesis_index]}"
    )
    print(f"Multi-flow identification picks: {winner}")
    if result.hypothesis_index == len(hypotheses) - 1:
        intensities = result.magnitudes / norms
        top = np.argsort(-np.abs(intensities))[:3]
        print("Estimated per-flow reroute intensities (bytes):")
        for k in top:
            o, d = moved[k]
            print(f"  {o}->{d}: {intensities[k]:+.2e} "
                  f"(true {x[moved_indices[k]]:.2e})")


if __name__ == "__main__":
    main()
