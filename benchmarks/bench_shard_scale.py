"""Sharded detection plane: exactness grid + fit fan-out wall clock.

PR 5's performance/exactness contract:

* **Temporal exactness** — a model fitted from merged per-chunk
  sufficient statistics must be *bit-identical* to the monolithic
  ``gram`` fit, for every shard count, worker count and partition
  scheme exercised by the small grid below.  Any mismatch fails the
  bench (and the CI smoke) outright.
* **Temporal scale** — the coordinator/worker engine is gated at
  **>=3x** wall-clock on a tall fit with **4 workers** against the
  single-process monolithic fit.  The parallel floor is enforced
  whenever the host can actually run the workers concurrently
  (``cpu_count >= workers``); on smaller hosts the measurement is still
  recorded and the artifact says why enforcement was skipped.  The
  engine's *serial* path (same kernels, one process) is additionally
  gated at **>=1.5x** on every host — a structural floor (the
  moment-form separation pass avoids the monolithic path's full-matrix
  temporaries) that catches regressions even on one core.
* **Spatial determinism** — per-zone fits and every fusion mode must
  produce byte-identical fused scores under serial and parallel worker
  layouts; the zone-fit wall clock against the monolithic fit is
  recorded (not gated — the win is architectural, not flops, at these
  sizes).

BLAS threading is pinned to one thread per process (set below, before
numpy loads) so the measured ratio is the sharding win, not thread-count
drift; the pinning is recorded in the artifact's environment block.

Artifacts: ``results/shard_scale.txt`` (human-readable) and
``results/BENCH_shard_scale.json`` (machine-readable: speedups, floors,
enforcement, exactness grid, per-worker timings, thread environment).

Run standalone:  PYTHONPATH=src python benchmarks/bench_shard_scale.py
CI smoke:        PYTHONPATH=src python benchmarks/bench_shard_scale.py --smoke
"""

from __future__ import annotations

import os

for _var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
):
    os.environ.setdefault(_var, "1")

import time

import numpy as np

MIN_PARALLEL_SPEEDUP = 3.0
MIN_SERIAL_ENGINE_SPEEDUP = 1.5
NUM_WORKERS = 4


def _time(fn, repeats: int = 2) -> float:
    """Best-of-N wall time of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _tall_block(num_bins: int, num_links: int, seed: int = 20040830):
    rng = np.random.default_rng(seed)
    base = 1e7 * (
        1.5 + np.sin(2.0 * np.pi * np.arange(num_bins) / 144.0)
    )
    scale = rng.uniform(0.5, 2.0, size=num_links)
    return np.abs(
        base[:, None]
        * scale
        * (1.0 + 0.08 * rng.standard_normal((num_bins, num_links)))
    )


# ----------------------------------------------------------------------
# Exactness grid: temporal bit-identity + spatial determinism.


def exactness_grid(num_bins: int = 2048, num_links: int = 24) -> dict:
    """Small temporal+spatial grid; every cell must agree exactly."""
    from repro.pipeline.sharded import (
        FUSION_MODES,
        SpatialCoordinator,
        TemporalCoordinator,
        temporal_fit_matches_monolithic,
    )

    block = _tall_block(num_bins, num_links, seed=7)
    violations: list[str] = []
    cells: list[dict] = []

    reference = None
    for num_shards in (2, 4, 8):
        for workers in (1, 2):
            fit = TemporalCoordinator(
                num_shards=num_shards, workers=workers
            ).fit(block)
            exact = temporal_fit_matches_monolithic(fit, block)
            if reference is None:
                reference = fit
            stable = (
                np.array_equal(
                    fit.pca.components, reference.pca.components
                )
                and fit.detector.threshold == reference.detector.threshold
            )
            cells.append(
                {
                    "mode": "temporal",
                    "num_shards": num_shards,
                    "workers": workers,
                    "exact_match_monolithic": bool(exact),
                    "matches_reference": bool(stable),
                }
            )
            if not exact:
                violations.append(
                    f"temporal shards={num_shards} workers={workers}: "
                    "fit diverged from the monolithic gram fit"
                )
            if not stable:
                violations.append(
                    f"temporal shards={num_shards} workers={workers}: "
                    "fit depends on the worker layout"
                )

    for num_zones in (2, 3):
        for scheme in ("contiguous", "round-robin"):
            serial = SpatialCoordinator(
                num_zones=num_zones, scheme=scheme, workers=1
            ).fit(block)
            parallel = SpatialCoordinator(
                num_zones=num_zones, scheme=scheme, workers=2
            ).fit(block)
            identical = all(
                np.array_equal(
                    serial.model.fused_score(block, fusion),
                    parallel.model.fused_score(block, fusion),
                )
                for fusion in FUSION_MODES
            )
            cells.append(
                {
                    "mode": "spatial",
                    "num_zones": num_zones,
                    "scheme": scheme,
                    "serial_parallel_identical": bool(identical),
                }
            )
            if not identical:
                violations.append(
                    f"spatial zones={num_zones} scheme={scheme}: fused "
                    "scores differ between worker layouts"
                )
    return {
        "num_bins": num_bins,
        "num_links": num_links,
        "cells": cells,
        "violations": violations,
    }


# ----------------------------------------------------------------------
# Temporal scale: monolithic single-process fit vs the sharded engine.


def measure_temporal(
    num_bins: int = 393216,
    num_links: int = 48,
    num_shards: int = NUM_WORKERS,
    repeats: int = 2,
) -> dict:
    from repro.core.detection import SPEDetector
    from repro.pipeline.sharded import (
        TemporalCoordinator,
        temporal_fit_matches_monolithic,
    )

    block = _tall_block(num_bins, num_links)

    parallel_fit = TemporalCoordinator(
        num_shards=num_shards, workers=NUM_WORKERS
    ).fit(block)
    if not temporal_fit_matches_monolithic(parallel_fit, block):
        raise AssertionError(
            "sharded fit diverged from the monolithic gram fit"
        )

    monolithic_seconds = _time(
        lambda: SPEDetector(svd_method="gram").fit(block), repeats
    )
    serial_seconds = _time(
        lambda: TemporalCoordinator(
            num_shards=num_shards, workers=1
        ).fit(block),
        repeats,
    )
    parallel_seconds = _time(
        lambda: TemporalCoordinator(
            num_shards=num_shards, workers=NUM_WORKERS
        ).fit(block),
        repeats,
    )
    report = parallel_fit.report
    return {
        "num_bins": num_bins,
        "num_links": num_links,
        "num_shards": num_shards,
        "workers": NUM_WORKERS,
        "tile_rows": report.tile_rows,
        "monolithic_seconds": monolithic_seconds,
        "serial_engine_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "parallel_speedup": monolithic_seconds / parallel_seconds,
        "serial_engine_speedup": monolithic_seconds / serial_seconds,
        "worker_timings": [
            {
                "worker": timing.worker,
                "rows": timing.size,
                "stats_seconds": timing.stats_seconds,
                "moments_seconds": timing.moments_seconds,
            }
            for timing in report.worker_timings
        ],
        "merge_seconds": report.merge_seconds,
        "fit_seconds": report.fit_seconds,
        "separation_seconds": report.separation_seconds,
    }


def measure_spatial(
    num_bins: int = 4096, num_links: int = 256, num_zones: int = 8
) -> dict:
    from repro.core.detection import SPEDetector
    from repro.pipeline.sharded import SpatialCoordinator

    block = _tall_block(num_bins, num_links, seed=11)
    monolithic_seconds = _time(
        lambda: SPEDetector(svd_method="gram").fit(block), repeats=3
    )
    zone_seconds = _time(
        lambda: SpatialCoordinator(
            num_zones=num_zones, workers=1, score_training=False
        ).fit(block),
        repeats=3,
    )
    fit = SpatialCoordinator(num_zones=num_zones, workers=1).fit(block)
    return {
        "num_bins": num_bins,
        "num_links": num_links,
        "num_zones": num_zones,
        "monolithic_seconds": monolithic_seconds,
        "zone_fit_seconds": zone_seconds,
        "zone_fit_speedup": monolithic_seconds / zone_seconds,
        "fuse_seconds": fit.report.fuse_seconds,
        "zone_ranks": list(fit.report.normal_rank),
    }


# ----------------------------------------------------------------------


def measure(smoke: bool = False) -> dict:
    """The full benchmark record (cheaper repeats in smoke mode)."""
    if smoke:
        grid = exactness_grid(num_bins=1024, num_links=16)
        temporal = measure_temporal(
            num_bins=196608, num_links=48, repeats=1
        )
        spatial = measure_spatial(num_bins=2048, num_links=128)
    else:
        grid = exactness_grid()
        temporal = measure_temporal()
        spatial = measure_spatial()
    cpu_count = os.cpu_count() or 1
    parallel_enforced = cpu_count >= temporal["workers"]
    return {
        "benchmark": "shard_scale",
        "smoke": smoke,
        "floors": {
            "temporal_parallel": MIN_PARALLEL_SPEEDUP,
            "temporal_serial_engine": MIN_SERIAL_ENGINE_SPEEDUP,
        },
        "speedup": {
            "temporal_parallel": temporal["parallel_speedup"],
            "temporal_serial_engine": temporal["serial_engine_speedup"],
            "spatial_zone_fit": spatial["zone_fit_speedup"],
        },
        "floor_enforced": {
            "temporal_parallel": parallel_enforced,
            "temporal_serial_engine": True,
        },
        "enforcement": {
            "cpu_count": cpu_count,
            "workers": temporal["workers"],
            "reason": (
                "parallel floor enforced"
                if parallel_enforced
                else (
                    f"parallel floor recorded but not enforced: "
                    f"{cpu_count} CPUs cannot run "
                    f"{temporal['workers']} workers concurrently"
                )
            ),
        },
        "wall_clock_seconds": {
            "monolithic_fit": temporal["monolithic_seconds"],
            "sharded_fit_serial": temporal["serial_engine_seconds"],
            "sharded_fit_parallel": temporal["parallel_seconds"],
            "spatial_monolithic_fit": spatial["monolithic_seconds"],
            "spatial_zone_fit": spatial["zone_fit_seconds"],
        },
        "grid": grid,
        "temporal": temporal,
        "spatial": spatial,
    }


def check_floors(stats: dict) -> list[str]:
    """Violations (empty = pass): exactness always, floors as enforced."""
    failures = list(stats["grid"]["violations"])
    for key, floor in stats["floors"].items():
        if not stats["floor_enforced"].get(key, True):
            continue
        speedup = stats["speedup"][key]
        if speedup < floor:
            failures.append(
                f"{key} speedup {speedup:.2f}x below the {floor:.1f}x floor"
            )
    return failures


def render(stats: dict) -> str:
    temporal = stats["temporal"]
    spatial = stats["spatial"]
    grid = stats["grid"]
    enforced = stats["floor_enforced"]["temporal_parallel"]
    return "\n".join(
        [
            f"exactness grid: {len(grid['cells'])} cells on "
            f"{grid['num_bins']}x{grid['num_links']}, "
            f"{len(grid['violations'])} violations",
            f"temporal tall fit: {temporal['num_bins']} bins x "
            f"{temporal['num_links']} links, {temporal['num_shards']} "
            f"shards (tile_rows {temporal['tile_rows']})",
            f"monolithic single-process: "
            f"{temporal['monolithic_seconds']:>8.3f} s",
            f"sharded engine, 1 worker:  "
            f"{temporal['serial_engine_seconds']:>8.3f} s  "
            f"({temporal['serial_engine_speedup']:.1f}x, floor "
            f"{MIN_SERIAL_ENGINE_SPEEDUP:.1f}x)",
            f"sharded engine, {temporal['workers']} workers: "
            f"{temporal['parallel_seconds']:>8.3f} s  "
            f"({temporal['parallel_speedup']:.1f}x, floor "
            f"{MIN_PARALLEL_SPEEDUP:.0f}x"
            + (")" if enforced else "; not enforced on this host)"),
            f"spatial zone fit: {spatial['num_bins']} bins x "
            f"{spatial['num_links']} links into {spatial['num_zones']} "
            f"zones: {spatial['zone_fit_seconds']:.4f} s vs monolithic "
            f"{spatial['monolithic_seconds']:.4f} s "
            f"({spatial['zone_fit_speedup']:.1f}x, recorded)",
        ]
    )


def test_shard_scale(results_dir):
    """Pytest entry: re-runs the bench in a thread-pinned subprocess."""
    import json
    import subprocess
    import sys
    from pathlib import Path

    env = dict(os.environ)
    for var in (
        "OMP_NUM_THREADS",
        "OPENBLAS_NUM_THREADS",
        "MKL_NUM_THREADS",
    ):
        env[var] = "1"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(__file__).resolve().parent.parent / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    outcome = subprocess.run(
        [sys.executable, __file__, "--smoke"],
        env=env,
        capture_output=True,
        text=True,
    )
    print(outcome.stdout)
    assert outcome.returncode == 0, outcome.stdout + outcome.stderr
    payload = json.loads(
        (results_dir / "BENCH_shard_scale.json").read_text()
    )
    assert not check_floors(payload)


if __name__ == "__main__":
    import argparse

    from conftest import RESULTS_DIR, write_json_result, write_result

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="cheaper repeats/dimensions; exactness and enforced floors "
        "still apply",
    )
    arguments = parser.parse_args()
    results = measure(smoke=arguments.smoke)
    print(render(results))
    RESULTS_DIR.mkdir(exist_ok=True)
    write_result(RESULTS_DIR, "shard_scale", render(results))
    path = write_json_result(RESULTS_DIR, "shard_scale", results)
    if not path.exists():
        raise SystemExit("FAIL: JSON artifact missing")
    failures = check_floors(results)
    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))
    print("OK")
