"""Property-based tests for the mergeable sufficient statistics.

The exactness contract of the sharding seam (repro.core.suffstats):
merge is associative and order-invariant bit for bit, any chunking of
the rows finalizes to the same bits, and a PCA fitted from merged chunk
statistics is bit-identical to the monolithic ``gram`` fit — including
rank-deficient matrices and single-row chunks.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import PCA, SufficientStats

#: Small canonical tiles so random matrices exercise complete tiles,
#: fragments and stitching (the default 1024 would make every test
#: matrix a single fragment).
TILE_ROWS = 16


@st.composite
def tall_matrices(draw, min_rows=4, max_rows=64, min_cols=1, max_cols=6):
    """Random tall (t >= m) matrices, sometimes exactly rank-deficient."""
    m = draw(st.integers(min_cols, max_cols))
    t = draw(st.integers(max(min_rows, m), max_rows))
    seed = draw(st.integers(0, 2**32 - 1))
    rank = draw(st.integers(1, m))
    offset = draw(st.sampled_from([0.0, 1e6]))
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(t, rank)) @ rng.normal(size=(rank, m))
    return factors + offset


@st.composite
def partitions(draw, length):
    """A random contiguous partition of ``range(length)`` into chunks.

    Biased toward including single-row chunks (the satellite's explicit
    edge case).
    """
    bounds = draw(
        st.lists(
            st.integers(1, max(1, length - 1)),
            min_size=0,
            max_size=min(8, length - 1),
            unique=True,
        )
    )
    if length > 1 and draw(st.booleans()):
        single = draw(st.integers(0, length - 2))
        bounds.extend({single, single + 1} - {0, length})
    return [0] + sorted(set(bounds)) + [length]


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_any_chunking_finalizes_to_the_monolithic_bits(data):
    block = data.draw(tall_matrices())
    bounds = data.draw(partitions(block.shape[0]))
    reference = SufficientStats.from_block(
        block, tile_rows=TILE_ROWS
    ).finalize()
    parts = [
        SufficientStats.from_block(
            block[a:b], start_row=a, tile_rows=TILE_ROWS
        )
        for a, b in zip(bounds, bounds[1:])
    ]
    merged = parts[0]
    for part in parts[1:]:
        merged = merged.merge(part)
    stats = merged.finalize()
    assert stats.count == reference.count
    assert np.array_equal(stats.total, reference.total)
    assert np.array_equal(stats.m2, reference.m2)


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_merge_associative_and_order_invariant(data):
    block = data.draw(tall_matrices(min_rows=6))
    bounds = data.draw(partitions(block.shape[0]))
    parts = [
        SufficientStats.from_block(
            block[a:b], start_row=a, tile_rows=TILE_ROWS
        )
        for a, b in zip(bounds, bounds[1:])
    ]
    order = data.draw(st.permutations(range(len(parts))))

    left_fold = parts[0]
    for part in parts[1:]:
        left_fold = left_fold.merge(part)

    shuffled = parts[order[0]]
    for index in order[1:]:
        shuffled = shuffled.merge(parts[index])

    # A right-leaning association over the shuffled order.
    right_assoc = parts[order[-1]]
    for index in reversed(order[:-1]):
        right_assoc = parts[index].merge(right_assoc)

    a = left_fold.finalize()
    for other in (shuffled.finalize(), right_assoc.finalize()):
        assert np.array_equal(a.total, other.total)
        assert np.array_equal(a.m2, other.m2)
        assert a.count == other.count


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_fit_from_stats_bit_identical_to_gram_fit(data):
    """fit_from_stats(merged chunks) == PCA.fit(method="gram"), bitwise.

    ``t >= m`` (the gram-covariance regime the temporal sharding
    targets); matrices include exactly rank-deficient and mean-offset
    cases, and chunkings include single-row chunks.
    """
    block = data.draw(tall_matrices())
    bounds = data.draw(partitions(block.shape[0]))
    mono = PCA(method="gram").fit(block)
    parts = [
        SufficientStats.from_block(block[a:b], start_row=a)
        for a, b in zip(bounds, bounds[1:])
    ]
    merged = parts[0]
    for part in parts[1:]:
        merged = merged.merge(part)
    fitted = PCA(method="gram").fit_from_stats(merged)
    assert np.array_equal(mono.mean, fitted.mean)
    assert np.array_equal(mono.components, fitted.components)
    assert np.array_equal(
        mono.captured_variance(), fitted.captured_variance()
    )
    assert mono.num_samples == fitted.num_samples


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_stats_fit_agrees_with_svd_subspace(data):
    """The stats route spans the same principal subspace as a thin SVD
    (tolerance comparison — different algorithms, same answer)."""
    block = data.draw(tall_matrices(min_rows=8, min_cols=2))
    fitted = PCA(method="gram").fit_from_stats(
        SufficientStats.from_block(block)
    )
    svd = PCA(method="svd").fit(block)
    assert np.allclose(
        fitted.captured_variance(),
        svd.captured_variance(),
        rtol=1e-6,
        atol=1e-6 * max(1.0, svd.captured_variance().max()),
    )
