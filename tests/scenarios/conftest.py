"""Shared scenario-suite fixtures.

Compiling and diagnosing the core suite is cheap (< 1 s) but every
golden test wants the same outcomes, so both are session-scoped.
"""

from __future__ import annotations

import pytest

from repro.scenarios import CORE_SUITE, compile_scenario, run_suite


@pytest.fixture(scope="session")
def core_report():
    """One diagnosis pass over the whole core suite."""
    return run_suite("core")


@pytest.fixture(scope="session")
def compiled_core():
    """Every core-suite scenario compiled, keyed by name."""
    return {spec.name: compile_scenario(spec) for spec in CORE_SUITE}
