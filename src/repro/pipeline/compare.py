"""Parallel multi-detector comparison grids (Fig. 10, generalized).

The paper's central claim is comparative: the subspace method separates
network-wide anomalies from normal traffic better than temporal
detectors applied to the same link measurements (§6.2, Fig. 10).
:class:`ComparisonRunner` turns that one-figure comparison into a
general workload over the :mod:`repro.detectors` registry:

* a grid of **detectors × datasets × injection scenarios** is fanned
  out over ``multiprocessing`` workers, one task per
  (detector, dataset) cell;
* each cell fits its detector **once** on the clean trace (the same
  model-reuse discipline :class:`~repro.pipeline.batch.BatchRunner`
  applies to the subspace method) and scores every scenario trace with
  that fitted model;
* every (cell, scenario) pair is folded through
  :mod:`repro.validation.roc` into an AUC and operating points, so the
  comparison is quantitative rather than visual.

Scenario traces are derived deterministically from the scenario seed:
all detectors see byte-identical injected traces, and a serial run
(``workers=1``) produces exactly the same report as a parallel one —
tests assert both.
"""

from __future__ import annotations

import os
import time
import zlib
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.dataset import Dataset
from repro.exceptions import ValidationError
from repro.validation.roc import operating_point, roc_curve

__all__ = [
    "ComparisonRunner",
    "ComparisonReport",
    "ComparisonCell",
    "ComparisonScenario",
]


@dataclass(frozen=True)
class ComparisonScenario:
    """One column of the comparison grid.

    ``injection_size is None`` marks the baseline scenario: the
    unmodified trace scored against the dataset's ground-truth event
    ledger.  Otherwise ``num_injections`` spikes of ``injection_size``
    bytes are added to the trace at deterministically drawn
    (bin, flow) cells, and the truth set is the union of those bins
    with the ledger bins.
    """

    label: str
    injection_size: float | None
    num_injections: int = 0
    seed: int = 0


@dataclass(frozen=True)
class ComparisonCell:
    """Outcome of one (detector, dataset, scenario) grid cell.

    Attributes
    ----------
    detector, dataset, scenario:
        Grid coordinates (``scenario`` is the scenario label).
    injection_size:
        Injected spike size in bytes; None for the baseline scenario.
    auc:
        Area under the ROC of the detector's residual energy against
        the scenario's truth bins.
    detection_at_budgets:
        ``((fa_budget, detection_rate), ...)`` operating points read
        off the ROC curve.
    op_detection, op_false_alarm, op_threshold:
        The detector's *own* operating point: rates at the threshold
        its confidence calibration chose.
    num_truth_bins:
        Size of the scenario's truth set.
    """

    detector: str
    dataset: str
    scenario: str
    injection_size: float | None
    auc: float
    detection_at_budgets: tuple[tuple[float, float], ...]
    op_detection: float
    op_false_alarm: float
    op_threshold: float
    num_truth_bins: int

    @property
    def is_baseline(self) -> bool:
        """True for the no-injection scenario."""
        return self.injection_size is None


@dataclass(frozen=True)
class ComparisonReport:
    """All grid cells of one :meth:`ComparisonRunner.run` pass.

    Attributes
    ----------
    cells:
        One :class:`ComparisonCell` per (detector, dataset, scenario).
    confidence:
        The confidence level every detector's own operating point used.
    elapsed_seconds:
        Wall-clock time of the grid run.
    cell_seconds:
        ``((detector, dataset, seconds), ...)`` per-cell work time
        (fit + all scenario scoring), as measured inside the workers.
    """

    cells: tuple[ComparisonCell, ...]
    confidence: float
    elapsed_seconds: float = 0.0
    cell_seconds: tuple[tuple[str, str, float], ...] = field(
        default=(), repr=False
    )

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    # ------------------------------------------------------------------
    @property
    def detectors(self) -> tuple[str, ...]:
        """Detector names, first-seen order."""
        return _unique(c.detector for c in self.cells)

    @property
    def datasets(self) -> tuple[str, ...]:
        """Dataset names, first-seen order."""
        return _unique(c.dataset for c in self.cells)

    @property
    def scenarios(self) -> tuple[str, ...]:
        """Scenario labels, first-seen order."""
        return _unique(c.scenario for c in self.cells)

    def cell(self, detector: str, dataset: str, scenario: str) -> ComparisonCell:
        """Look one grid cell up by coordinates."""
        for c in self.cells:
            if (
                c.detector == detector
                and c.dataset == dataset
                and c.scenario == scenario
            ):
                return c
        raise ValidationError(
            f"no cell for ({detector!r}, {dataset!r}, {scenario!r})"
        )

    def auc(self, detector: str, dataset: str, scenario: str) -> float:
        """The AUC of one grid cell."""
        return self.cell(detector, dataset, scenario).auc

    def mean_auc(self, detector: str, injected_only: bool = True) -> float:
        """Mean AUC of one detector across the grid.

        ``injected_only`` restricts to injection scenarios (the
        controlled part of the grid) when any exist.
        """
        values = [
            c.auc
            for c in self.cells
            if c.detector == detector
            and (not injected_only or not c.is_baseline)
        ]
        if not values:  # baseline-only grids
            values = [c.auc for c in self.cells if c.detector == detector]
        if not values:
            raise ValidationError(f"no cells for detector {detector!r}")
        return float(np.mean(values))

    def ranking(self, injected_only: bool = True) -> tuple[str, ...]:
        """Detectors ordered by mean AUC, best first."""
        return tuple(
            sorted(
                self.detectors,
                key=lambda d: -self.mean_auc(d, injected_only=injected_only),
            )
        )

    # ------------------------------------------------------------------
    def table(self) -> str:
        """The AUC comparison table: one row per (dataset, scenario),
        one column per detector, winner starred."""
        detectors = self.detectors
        label_width = max(
            [len("dataset/scenario")]
            + [len(f"{d}/{s}") for d in self.datasets for s in self.scenarios]
        )
        header = f"{'dataset/scenario':<{label_width}}"
        for name in detectors:
            header += f" {name:>14}"
        lines = [header, "-" * len(header)]
        for dataset in self.datasets:
            for scenario in self.scenarios:
                row_cells = {
                    c.detector: c
                    for c in self.cells
                    if c.dataset == dataset and c.scenario == scenario
                }
                if not row_cells:
                    continue
                best = max(row_cells.values(), key=lambda c: c.auc).detector
                line = f"{dataset + '/' + scenario:<{label_width}}"
                for name in detectors:
                    c = row_cells.get(name)
                    if c is None:
                        line += f" {'-':>14}"
                    else:
                        star = "*" if name == best else " "
                        line += f" {c.auc:>12.4f} {star}"
                lines.append(line)
        lines.append("")
        ranking = self.ranking()
        injected = any(not c.is_baseline for c in self.cells)
        scope = "injection scenarios" if injected else "baseline scenarios"
        lines.append(
            f"mean AUC over {scope}: "
            + ", ".join(f"{d}={self.mean_auc(d):.4f}" for d in ranking)
        )
        return "\n".join(lines)

    def operating_table(self) -> str:
        """Per-cell operating points at the calibrated thresholds."""
        header = (
            f"{'detector':<13} {'dataset':<10} {'scenario':<16} "
            f"{'AUC':>8} {'det@thr':>8} {'FA@thr':>8} {'truth':>6}"
        )
        lines = [header, "-" * len(header)]
        for c in self.cells:
            lines.append(
                f"{c.detector:<13} {c.dataset:<10} {c.scenario:<16} "
                f"{c.auc:>8.4f} {c.op_detection:>8.3f} "
                f"{c.op_false_alarm:>8.4f} {c.num_truth_bins:>6}"
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        """A machine-readable summary (the ``BENCH_*.json`` payload)."""
        return {
            "confidence": self.confidence,
            "elapsed_seconds": self.elapsed_seconds,
            "grid": {
                "detectors": list(self.detectors),
                "datasets": list(self.datasets),
                "scenarios": list(self.scenarios),
                "num_cells": len(self.cells),
            },
            "mean_auc": {d: self.mean_auc(d) for d in self.detectors},
            "ranking": list(self.ranking()),
            "cells": [
                {
                    "detector": c.detector,
                    "dataset": c.dataset,
                    "scenario": c.scenario,
                    "injection_size": c.injection_size,
                    "auc": c.auc,
                    "detection_at_budgets": [
                        list(pair) for pair in c.detection_at_budgets
                    ],
                    "op_detection": c.op_detection,
                    "op_false_alarm": c.op_false_alarm,
                    "op_threshold": c.op_threshold,
                    "num_truth_bins": c.num_truth_bins,
                }
                for c in self.cells
            ],
            "cell_seconds": [
                {"detector": d, "dataset": ds, "seconds": s}
                for d, ds, s in self.cell_seconds
            ],
        }


class ComparisonRunner:
    """Fan a detector-comparison grid out over worker processes.

    Parameters
    ----------
    datasets:
        Evaluation worlds; each (detector, dataset) cell fits once on
        the clean ``link_traffic`` and scores every scenario with that
        model.
    detectors:
        Registry names (see :func:`repro.detectors.available`).
    injection_sizes:
        Spike sizes (bytes); each adds one injection scenario.  Empty
        means baseline-only.
    num_injections:
        Spikes per injection scenario (drawn at distinct time bins).
    confidence:
        Confidence level for each detector's own operating point.
    fa_budgets:
        False-alarm budgets at which ROC detection rates are read off.
    min_event_bytes:
        Ground-truth ledger cutoff: events at least this large form the
        baseline truth set.
    workers:
        Process count; ``None`` picks ``min(cells, cpu_count)``; ``1``
        runs serially in-process (identical results — tests assert it).
    seed:
        Base seed for the deterministic injection placement.
    detector_kwargs:
        Optional per-detector factory overrides,
        e.g. ``{"ewma": {"alpha": 0.3}}``.
    """

    def __init__(
        self,
        datasets: Sequence[Dataset],
        detectors: Sequence[str] = ("subspace", "ewma", "fourier"),
        injection_sizes: Sequence[float] = (),
        num_injections: int = 24,
        confidence: float = 0.999,
        fa_budgets: Sequence[float] = (0.001, 0.01),
        min_event_bytes: float = 0.0,
        workers: int | None = None,
        seed: int = 20040830,
        detector_kwargs: dict[str, dict] | None = None,
    ) -> None:
        from repro import detectors as registry

        if not datasets:
            raise ValidationError("at least one dataset is required")
        names = {d.name for d in datasets}
        if len(names) != len(datasets):
            raise ValidationError("dataset names must be unique")
        if num_injections < 1:
            raise ValidationError(
                f"num_injections must be >= 1, got {num_injections}"
            )
        if not 0.0 < confidence < 1.0:
            raise ValidationError(
                f"confidence must lie in (0, 1), got {confidence}"
            )
        if workers is not None and workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        self.datasets = list(datasets)
        self.detector_names = registry.resolve_names(detectors)
        self.injection_sizes = [float(s) for s in injection_sizes]
        if any(s == 0.0 for s in self.injection_sizes):
            raise ValidationError("injection sizes must be non-zero")
        if len(set(self.injection_sizes)) != len(self.injection_sizes):
            raise ValidationError(
                "injection sizes must be distinct (duplicates would "
                "produce identically labeled scenarios)"
            )
        self.num_injections = int(num_injections)
        self.confidence = float(confidence)
        self.fa_budgets = tuple(float(b) for b in fa_budgets)
        self.min_event_bytes = float(min_event_bytes)
        self.workers = workers
        self.seed = int(seed)
        self.detector_kwargs = dict(detector_kwargs or {})
        unknown = set(self.detector_kwargs) - set(self.detector_names)
        if unknown:
            raise ValidationError(
                f"detector_kwargs for unselected detectors: {sorted(unknown)}"
            )

    # ------------------------------------------------------------------
    def scenarios_for(self, dataset: Dataset) -> tuple[ComparisonScenario, ...]:
        """The scenario columns evaluated for one dataset.

        The baseline scenario is included only when the dataset's
        ground-truth ledger has events at or above ``min_event_bytes``
        (an empty truth set has no ROC).
        """
        scenarios: list[ComparisonScenario] = []
        if _ledger_bins(dataset, self.min_event_bytes).size:
            scenarios.append(
                ComparisonScenario(label="baseline", injection_size=None)
            )
        for index, size in enumerate(self.injection_sizes):
            scenarios.append(
                ComparisonScenario(
                    label=f"inject-{size:.2e}",
                    injection_size=size,
                    num_injections=self.num_injections,
                    seed=self.seed + index,
                )
            )
        labels = [s.label for s in scenarios]
        if len(set(labels)) != len(labels):
            raise ValidationError(
                "injection sizes collide at the scenario-label precision "
                f"({labels}); pass more widely spaced sizes"
            )
        if not scenarios:
            raise ValidationError(
                f"dataset {dataset.name!r} has no ground-truth events and no "
                "injection sizes were given; nothing to evaluate"
            )
        return tuple(scenarios)

    def run(self) -> ComparisonReport:
        """Evaluate the whole grid; one :class:`ComparisonCell` per cell.

        Cells are ordered datasets-outermost, then detectors (the order
        given at construction), then scenarios — independent of the
        worker count.
        """
        from repro import detectors as registry

        start = time.perf_counter()
        tasks = [
            _CellTask(
                detector=name,
                # The factory travels with the task so detectors
                # registered at runtime survive spawn-start workers,
                # which re-import a registry holding only the built-ins.
                factory=registry.get_factory(name),
                detector_kwargs=self.detector_kwargs.get(name, {}),
                dataset=dataset,
                scenarios=self.scenarios_for(dataset),
                confidence=self.confidence,
                fa_budgets=self.fa_budgets,
                min_event_bytes=self.min_event_bytes,
            )
            for dataset in self.datasets
            for name in self.detector_names
        ]
        workers = self.workers
        if workers is None:
            workers = min(len(tasks), os.cpu_count() or 1)
        if workers <= 1 or len(tasks) == 1:
            outputs = [_run_cell(task) for task in tasks]
        else:
            import multiprocessing

            with multiprocessing.Pool(processes=workers) as pool:
                outputs = pool.map(_run_cell, tasks)
        cells: list[ComparisonCell] = []
        timings: list[tuple[str, str, float]] = []
        for task, output in zip(tasks, outputs):
            cells.extend(output.rows)
            timings.append((task.detector, task.dataset.name, output.seconds))
        return ComparisonReport(
            cells=tuple(cells),
            confidence=self.confidence,
            elapsed_seconds=time.perf_counter() - start,
            cell_seconds=tuple(timings),
        )


# ----------------------------------------------------------------------
# Worker side.  Everything below must stay module-level and picklable.


@dataclass(frozen=True)
class _CellTask:
    detector: str
    factory: Callable
    detector_kwargs: dict
    dataset: Dataset
    scenarios: tuple[ComparisonScenario, ...]
    confidence: float
    fa_budgets: tuple[float, ...]
    min_event_bytes: float


@dataclass(frozen=True)
class _CellOutput:
    rows: tuple[ComparisonCell, ...]
    seconds: float


def _unique(items) -> tuple[str, ...]:
    seen: list[str] = []
    for item in items:
        if item not in seen:
            seen.append(item)
    return tuple(seen)


def _ledger_bins(dataset: Dataset, min_event_bytes: float) -> np.ndarray:
    """Ground-truth anomaly bins at or above the ledger cutoff.

    Every bin an event covers counts — a SQUARE or RAMP anomaly of
    ``duration_bins`` marks its whole span, so detectors flagging the
    later bins of an ongoing anomaly are not charged false alarms (and
    injections are never drawn inside one).
    """
    bins: set[int] = set()
    for event in dataset.true_events:
        if abs(event.amplitude_bytes) >= min_event_bytes:
            bins.update(range(event.time_bin, event.last_bin + 1))
    return np.asarray(sorted(bins), dtype=np.int64)


def scenario_trace(
    dataset: Dataset,
    scenario: ComparisonScenario,
    min_event_bytes: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize one scenario: ``(link_trace, truth_bins)``.

    Deterministic in the scenario seed — every detector (and every
    worker layout) sees byte-identical traces.  Injection cells are
    drawn at distinct time bins outside the ledger truth set, each
    adding ``injection_size`` bytes to one OD flow's links.
    """
    truth = _ledger_bins(dataset, min_event_bytes)
    if scenario.injection_size is None:
        if truth.size == 0:
            raise ValidationError(
                f"dataset {dataset.name!r} has no ground-truth events at or "
                f"above {min_event_bytes:.3g} bytes; baseline scenario is "
                "undefined"
            )
        return dataset.link_traffic, truth

    candidates = np.setdiff1d(
        np.arange(dataset.num_bins, dtype=np.int64), truth
    )
    if candidates.size < scenario.num_injections:
        raise ValidationError(
            f"dataset {dataset.name!r} has only {candidates.size} "
            f"injectable bins but {scenario.num_injections} were requested"
        )
    rng = np.random.default_rng(
        np.random.SeedSequence(
            [scenario.seed, zlib.crc32(dataset.name.encode("utf-8"))]
        )
    )
    bins = np.sort(
        rng.choice(candidates, size=scenario.num_injections, replace=False)
    )
    flows = rng.integers(0, dataset.num_flows, size=scenario.num_injections)
    trace = dataset.link_traffic.copy()
    trace[bins] += (
        scenario.injection_size * dataset.routing.matrix[:, flows].T
    )
    return trace, np.union1d(truth, bins)


def _run_cell(task: _CellTask) -> _CellOutput:
    """Fit one detector on one dataset, score every scenario trace."""
    start = time.perf_counter()
    kwargs = {
        "confidence": task.confidence,
        "bin_seconds": task.dataset.bin_seconds,
    }
    kwargs.update(task.detector_kwargs)
    detector = task.factory(**kwargs)
    detector.fit(task.dataset.link_traffic)

    rows: list[ComparisonCell] = []
    for scenario in task.scenarios:
        trace, truth = scenario_trace(
            task.dataset, scenario, task.min_event_bytes
        )
        alarms = detector.detect(trace, confidence=task.confidence)
        scores = alarms.scores
        curve = roc_curve(scores, truth)
        op_det, op_fa = operating_point(scores, truth, alarms.threshold)
        rows.append(
            ComparisonCell(
                detector=task.detector,
                dataset=task.dataset.name,
                scenario=scenario.label,
                injection_size=scenario.injection_size,
                auc=curve.auc,
                detection_at_budgets=tuple(
                    (budget, curve.detection_at(budget))
                    for budget in task.fa_budgets
                ),
                op_detection=op_det,
                op_false_alarm=op_fa,
                op_threshold=alarms.threshold,
                num_truth_bins=int(truth.size),
            )
        )
    return _CellOutput(
        rows=tuple(rows), seconds=time.perf_counter() - start
    )
