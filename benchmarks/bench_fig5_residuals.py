"""Figure 5: state-vector vs residual-vector magnitude timeseries.

Regenerates the data of the paper's Fig. 5 for the two Sprint weeks: the
squared state magnitude ||y||^2 (upper panels, dominated by diurnal mass)
and the SPE ||y~||^2 (lower panels, where anomalies stand out above the
Q-statistic thresholds at 99.5% and 99.9%).
"""

import numpy as np

from repro.core import SPEDetector
from repro.validation.experiments import separability

from conftest import write_result


def _fig5_summary(dataset) -> str:
    detector = SPEDetector().fit(dataset.link_traffic)
    model = detector.model
    state = np.asarray(model.state_magnitude(dataset.link_traffic))
    spe = np.asarray(model.spe(dataset.link_traffic))
    t995 = detector.threshold_at(0.995)
    t999 = detector.threshold_at(0.999)
    event_bins = np.array(
        sorted(
            e.time_bin
            for e in dataset.true_events
            if abs(e.amplitude_bytes) >= 2e7
        )
    )
    state_sep = separability(state, event_bins)
    spe_sep = separability(spe, event_bins)
    exceed_995 = int(np.sum(spe > t995))
    exceed_999 = int(np.sum(spe > t999))
    return "\n".join(
        [
            f"dataset {dataset.name}: {event_bins.size} known anomalies",
            f"state  ||y||^2 : mean {state.mean():.3e}  max {state.max():.3e}  "
            f"det@0FA {state_sep['detection_at_zero_fa']:.2f}",
            f"SPE ||y~||^2   : mean {spe.mean():.3e}  max {spe.max():.3e}  "
            f"det@0FA {spe_sep['detection_at_zero_fa']:.2f}",
            f"delta^2(99.5%) = {t995:.3e}  ({exceed_995} bins exceed)",
            f"delta^2(99.9%) = {t999:.3e}  ({exceed_999} bins exceed)",
        ]
    )


def test_fig5_sprint_weeks(benchmark, sprint1, sprint2, results_dir):
    def run():
        return "\n\n".join(_fig5_summary(d) for d in (sprint1, sprint2))

    text = benchmark(run)
    write_result(results_dir, "fig5_residuals", text)

    for dataset in (sprint1, sprint2):
        detector = SPEDetector().fit(dataset.link_traffic)
        spe = np.asarray(detector.model.spe(dataset.link_traffic))
        state = np.asarray(detector.model.state_magnitude(dataset.link_traffic))
        events = np.array(
            sorted(
                e.time_bin
                for e in dataset.true_events
                if abs(e.amplitude_bytes) >= 2e7
            )
        )
        # The residual separates what the state magnitude cannot.
        assert (
            separability(spe, events)["detection_at_zero_fa"]
            > separability(state, events)["detection_at_zero_fa"]
        )
        # Few bins exceed the 99.9% threshold, more exceed 99.5%.
        t999 = detector.threshold_at(0.999)
        t995 = detector.threshold_at(0.995)
        assert np.sum(spe > t995) >= np.sum(spe > t999)
        assert np.sum(spe > t999) < 0.03 * dataset.num_bins
