"""IS-IS-like shortest-path-first routing protocol.

The paper resolves OD-flow paths with IS-IS/BGP routing tables taken from
the networks in operation (§3).  :class:`SPFRouting` plays that role here:
it runs shortest-path-first over the link weights of a network and emits a
:class:`~repro.routing.tables.RoutingTable` covering every OD pair,
including same-PoP pairs (routed over intra-PoP self-links).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import RoutingError
from repro.routing import paths as _paths
from repro.routing.ecmp import ecmp_routes
from repro.routing.tables import Route, RoutingTable
from repro.topology.network import Network

__all__ = ["SPFRouting"]


class SPFRouting:
    """Shortest-path-first routing over a network.

    Parameters
    ----------
    network:
        The network to route.  Must contain one intra-PoP link per PoP
        (same-PoP OD flows need somewhere to live).
    ecmp:
        When True, equal-cost paths split traffic evenly at each branching
        node, producing fractional routes; when False (the default, and the
        paper's setting) ties are broken deterministically and every OD
        pair gets exactly one path.

    Examples
    --------
    >>> from repro.topology import toy_network
    >>> table = SPFRouting(toy_network()).compute()
    >>> table.route("a", "b").links
    ('a->b',)
    """

    def __init__(self, network: Network, ecmp: bool = False) -> None:
        self.network = network
        self.ecmp = ecmp
        intra_sources = {link.source for link in network.intra_pop_links}
        missing = [name for name in network.pop_names if name not in intra_sources]
        if missing:
            raise RoutingError(
                "SPFRouting needs an intra-PoP link at every PoP; missing: "
                + ", ".join(sorted(missing))
            )

    def compute(self, exclude_links: Iterable[str] = ()) -> RoutingTable:
        """Run SPF for every OD pair and return the routing table.

        Parameters
        ----------
        exclude_links:
            Canonical names of links to treat as failed.  Excluding an
            intra-PoP link is rejected, since same-PoP traffic has no
            alternative route.
        """
        excluded = frozenset(exclude_links)
        for name in excluded:
            if not self.network.has_link(name):
                raise RoutingError(f"cannot exclude unknown link {name!r}")
            if self.network.link(name).is_intra_pop:
                raise RoutingError(
                    f"cannot exclude intra-PoP link {name!r}: same-PoP "
                    "traffic has no alternative route"
                )

        routes: dict[tuple[str, str], tuple[Route, ...]] = {}
        for origin, destination in self.network.od_pairs:
            if origin == destination:
                link = self.network.intra_pop_link(origin)
                routes[(origin, destination)] = (
                    Route(pops=(origin,), links=(link.name,), fraction=1.0),
                )
            elif self.ecmp:
                routes[(origin, destination)] = ecmp_routes(
                    self.network, origin, destination, exclude_links=excluded
                )
            else:
                pop_path = _paths.shortest_path(
                    self.network, origin, destination, exclude_links=excluded
                )
                link_path = _paths.path_links(self.network, pop_path)
                routes[(origin, destination)] = (
                    Route(
                        pops=tuple(pop_path),
                        links=tuple(link_path),
                        fraction=1.0,
                    ),
                )
        return RoutingTable(routes)
