"""The Jackson–Mudholkar Q-statistic threshold (§5.1, [16]).

Under a multivariate-Gaussian model of normal traffic, the squared
prediction error obeys the distributional result of Jackson & Mudholkar
(Technometrics 1979): with ``φ_i = Σ_{j>r} λ_jⁱ`` over the residual
eigenvalues and ``h₀ = 1 − 2φ₁φ₃ / (3φ₂²)``,

    δ²_α = φ₁ · [ c_α·√(2φ₂h₀²)/φ₁ + 1 + φ₂h₀(h₀−1)/φ₁² ]^(1/h₀)

bounds SPE at confidence level ``1 − α``; ``c_α`` is the ``1 − α``
standard-normal quantile.  The result holds regardless of how many
components the normal subspace retains, and is robust to moderate
non-Gaussianity (Jensen & Solomon, paper's [17]).

Eigenvalues must be *sample-covariance* eigenvalues
(``‖Yv_j‖² / (t−1)``; DESIGN.md §5), so the threshold and the per-sample
SPE live on the same scale.

For pathological eigenvalue spectra the JM expression can leave its
domain (non-positive bracket); :func:`q_threshold` then falls back to
Box's chi-square approximation ``g·χ²_h`` with ``g = φ₂/φ₁`` and
``h = φ₁²/φ₂``, the standard alternative in the process-control
literature the paper draws on ([7, 8]).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.exceptions import ModelError

__all__ = [
    "q_threshold",
    "q_thresholds",
    "box_approx_threshold",
    "residual_phis",
]


def residual_phis(residual_eigenvalues: np.ndarray) -> tuple[float, float, float]:
    """``(φ₁, φ₂, φ₃)`` — power sums of the residual eigenvalues."""
    lam = _check_eigenvalues(residual_eigenvalues)
    return (
        float(np.sum(lam)),
        float(np.sum(lam**2)),
        float(np.sum(lam**3)),
    )


def q_threshold(
    residual_eigenvalues: np.ndarray,
    confidence: float = 0.999,
) -> float:
    """The SPE limit ``δ²_α`` at the given confidence level.

    Parameters
    ----------
    residual_eigenvalues:
        Sample-covariance eigenvalues of the axes assigned to the
        anomalous subspace (``λ_{r+1} .. λ_m``).
    confidence:
        ``1 − α``; the paper reports results at 0.995 and 0.999.

    Returns
    -------
    float
        The threshold; 0.0 when the residual subspace is empty or carries
        no variance (then SPE is identically zero).
    """
    if not 0.0 < confidence < 1.0:
        raise ModelError(f"confidence must lie in (0, 1), got {confidence}")
    lam = _check_eigenvalues(residual_eigenvalues)
    if lam.size == 0:
        return 0.0
    phi1, phi2, phi3 = residual_phis(lam)
    if phi1 == 0.0:
        return 0.0
    if phi2 == 0.0 or phi3 == 0.0:
        # A single non-zero eigenvalue keeps all phis positive, so reaching
        # here means all eigenvalues are zero (handled above) or numerical
        # underflow; be safe.
        return 0.0

    if phi2**2 == 0.0 or phi1**2 == 0.0:
        # Subnormal spectra (λ ≲ 1e-155) underflow the squared power sums
        # to exact zero even though the phis themselves are non-zero; the
        # SPE scale is numerically zero there, like the all-zero case.
        return 0.0
    c_alpha = float(stats.norm.ppf(confidence))
    h0 = 1.0 - (2.0 * phi1 * phi3) / (3.0 * phi2**2)
    if h0 <= 0.0:
        # The JM derivation assumes h0 > 0; spectra dominated by a single
        # large residual eigenvalue can push h0 negative, where the
        # expression decays *below* the SPE mean.  Fall back to Box.
        return box_approx_threshold(lam, confidence)
    bracket = (
        c_alpha * np.sqrt(2.0 * phi2 * h0**2) / phi1
        + 1.0
        + phi2 * h0 * (h0 - 1.0) / phi1**2
    )
    if bracket <= 0.0:
        return box_approx_threshold(lam, confidence)
    threshold = phi1 * bracket ** (1.0 / h0)
    if not np.isfinite(threshold) or threshold < 0:
        return box_approx_threshold(lam, confidence)
    return float(threshold)


def q_thresholds(
    residual_eigenvalues: np.ndarray,
    confidences: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`q_threshold` over an array of confidence levels.

    The eigenvalue power sums ``φ₁, φ₂, φ₃`` and the exponent ``h₀``
    depend only on the spectrum, so a sweep over confidence levels (the
    expensive part of a threshold-sensitivity scenario grid) reduces to
    one normal-quantile evaluation per level plus elementwise algebra.

    Parameters
    ----------
    residual_eigenvalues:
        Sample-covariance eigenvalues of the anomalous subspace, as for
        :func:`q_threshold`.
    confidences:
        Array of ``1 − α`` levels, each in ``(0, 1)``.

    Returns
    -------
    numpy.ndarray
        ``δ²_α`` per confidence level, identical elementwise to calling
        :func:`q_threshold` in a loop (including the Box fallback for
        levels where the JM bracket leaves its domain).
    """
    conf = np.asarray(confidences, dtype=np.float64)
    if conf.ndim != 1:
        raise ModelError(f"confidences must form a vector, got shape {conf.shape}")
    if conf.size and not np.all((conf > 0.0) & (conf < 1.0)):
        raise ModelError("every confidence must lie in (0, 1)")
    lam = _check_eigenvalues(residual_eigenvalues)
    if lam.size == 0 or conf.size == 0:
        return np.zeros(conf.shape)
    phi1, phi2, phi3 = residual_phis(lam)
    if phi1 == 0.0 or phi2 == 0.0 or phi3 == 0.0:
        return np.zeros(conf.shape)
    if phi2**2 == 0.0 or phi1**2 == 0.0:
        # Same subnormal-underflow guard as the scalar path: the squared
        # power sums flush to zero, so the limit is numerically zero.
        return np.zeros(conf.shape)

    g = phi2 / phi1
    h = phi1**2 / phi2
    box = g * stats.chi2.ppf(conf, df=h)

    h0 = 1.0 - (2.0 * phi1 * phi3) / (3.0 * phi2**2)
    if h0 <= 0.0:
        return box
    c_alpha = stats.norm.ppf(conf)
    bracket = (
        c_alpha * np.sqrt(2.0 * phi2 * h0**2) / phi1
        + 1.0
        + phi2 * h0 * (h0 - 1.0) / phi1**2
    )
    valid = bracket > 0.0
    jm = np.full(conf.shape, np.nan)
    with np.errstate(invalid="ignore", over="ignore"):
        jm[valid] = phi1 * bracket[valid] ** (1.0 / h0)
    use_jm = valid & np.isfinite(jm) & (jm >= 0.0)
    return np.where(use_jm, jm, box)


def box_approx_threshold(
    residual_eigenvalues: np.ndarray,
    confidence: float = 0.999,
) -> float:
    """Box's ``g·χ²_h`` approximation to the SPE limit.

    Matches the first two moments of SPE: ``g = φ₂/φ₁``, ``h = φ₁²/φ₂``.
    Used as the fallback when the JM expression is undefined, and exposed
    for ablation benches comparing the two limits.
    """
    if not 0.0 < confidence < 1.0:
        raise ModelError(f"confidence must lie in (0, 1), got {confidence}")
    lam = _check_eigenvalues(residual_eigenvalues)
    if lam.size == 0:
        return 0.0
    phi1 = float(np.sum(lam))
    phi2 = float(np.sum(lam**2))
    if phi1 == 0.0 or phi2 == 0.0:
        return 0.0
    g = phi2 / phi1
    h = phi1**2 / phi2
    return float(g * stats.chi2.ppf(confidence, df=h))


def _check_eigenvalues(residual_eigenvalues: np.ndarray) -> np.ndarray:
    lam = np.asarray(residual_eigenvalues, dtype=np.float64)
    if lam.ndim != 1:
        raise ModelError(
            f"residual eigenvalues must form a vector, got shape {lam.shape}"
        )
    if lam.size and not np.all(np.isfinite(lam)):
        raise ModelError("residual eigenvalues contain non-finite values")
    if np.any(lam < -1e-9):
        raise ModelError("residual eigenvalues must be non-negative")
    return np.maximum(lam, 0.0)
