"""Legacy setup shim.

Allows ``pip install -e .`` in offline environments whose setuptools lacks
the ``wheel`` package required by PEP 517 editable installs.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
