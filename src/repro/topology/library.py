"""Library topologies: the two backbones studied in the paper.

The paper (Table 1) evaluates on:

* **Abilene** — the Internet2 backbone, 11 PoPs and 41 links (30 directed
  inter-PoP links plus 11 intra-PoP links).  We use the canonical 2004
  Abilene map.  The well-documented map has 14 bidirectional edges (28
  directed links); to match the paper's 41-link total we add one further
  edge (``chin``–``atla``), documented here and in DESIGN.md as a
  substitution.  Nothing in the method depends on this choice beyond the
  dimensions of the routing matrix.

* **Sprint-Europe** — the European backbone of a US tier-1 ISP; 13 PoPs and
  49 links (36 directed inter-PoP + 13 intra-PoP).  The paper anonymizes the
  PoPs (``a``..``l`` in its Figure 2) and the topology was never published,
  so we synthesize a plausible 13-city European backbone with 18
  bidirectional edges, which reproduces exactly the paper's link count.

Both functions return fresh :class:`~repro.topology.network.Network`
instances on each call, so callers may mutate them freely.
"""

from __future__ import annotations

from repro.topology.network import Network
from repro.topology.node import PoP

__all__ = ["abilene", "sprint_europe", "toy_network"]

#: Abilene PoPs: (name, city, latitude, longitude, population weight).
_ABILENE_POPS: list[tuple[str, str, float, float, float]] = [
    ("sttl", "Seattle", 47.61, -122.33, 2.2),
    ("snva", "Sunnyvale", 37.37, -122.04, 4.5),
    ("losa", "Los Angeles", 34.05, -118.24, 6.5),
    ("dnvr", "Denver", 39.74, -104.99, 1.6),
    ("kscy", "Kansas City", 39.10, -94.58, 1.2),
    ("hstn", "Houston", 29.76, -95.37, 3.1),
    ("ipls", "Indianapolis", 39.77, -86.16, 1.1),
    ("chin", "Chicago", 41.88, -87.63, 5.2),
    ("atla", "Atlanta", 33.75, -84.39, 3.0),
    ("wash", "Washington DC", 38.91, -77.04, 4.2),
    ("nycm", "New York", 40.71, -74.01, 9.3),
]

#: Abilene bidirectional edges.  The first 14 are the canonical 2004 map;
#: the final (chin, atla) edge is our addition to match Table 1's 41 links.
_ABILENE_EDGES: list[tuple[str, str]] = [
    ("sttl", "snva"),
    ("sttl", "dnvr"),
    ("snva", "losa"),
    ("snva", "dnvr"),
    ("losa", "hstn"),
    ("dnvr", "kscy"),
    ("kscy", "hstn"),
    ("kscy", "ipls"),
    ("hstn", "atla"),
    ("ipls", "chin"),
    ("ipls", "atla"),
    ("chin", "nycm"),
    ("atla", "wash"),
    ("nycm", "wash"),
    ("chin", "atla"),
]

#: Sprint-Europe PoPs (synthesized; see module docstring).
_SPRINT_POPS: list[tuple[str, str, float, float, float]] = [
    ("lon", "London", 51.51, -0.13, 9.0),
    ("par", "Paris", 48.86, 2.35, 7.0),
    ("ams", "Amsterdam", 52.37, 4.90, 2.5),
    ("fra", "Frankfurt", 50.11, 8.68, 5.5),
    ("bru", "Brussels", 50.85, 4.35, 2.0),
    ("mil", "Milan", 45.46, 9.19, 3.2),
    ("mad", "Madrid", 40.42, -3.70, 3.3),
    ("sto", "Stockholm", 59.33, 18.07, 1.6),
    ("cop", "Copenhagen", 55.68, 12.57, 1.3),
    ("zur", "Zurich", 47.37, 8.54, 1.4),
    ("vie", "Vienna", 48.21, 16.37, 1.9),
    ("dub", "Dublin", 53.35, -6.26, 1.2),
    ("mun", "Munich", 48.14, 11.58, 1.5),
]

#: Sprint-Europe bidirectional edges (18, giving 36 directed links).
_SPRINT_EDGES: list[tuple[str, str]] = [
    ("lon", "par"),
    ("lon", "ams"),
    ("lon", "dub"),
    ("lon", "bru"),
    ("par", "mad"),
    ("par", "zur"),
    ("par", "bru"),
    ("ams", "fra"),
    ("ams", "bru"),
    ("fra", "zur"),
    ("fra", "mun"),
    ("fra", "cop"),
    ("fra", "vie"),
    ("mil", "zur"),
    ("mil", "vie"),
    ("mad", "mil"),
    ("sto", "cop"),
    ("mun", "vie"),
]


def _build(
    name: str,
    pop_rows: list[tuple[str, str, float, float, float]],
    edges: list[tuple[str, str]],
) -> Network:
    network = Network(name)
    for pop_name, city, latitude, longitude, population in pop_rows:
        network.add_pop(
            PoP(
                pop_name,
                city=city,
                latitude=latitude,
                longitude=longitude,
                population=population,
            )
        )
    for source, target in edges:
        network.add_bidirectional(source, target)
    network.add_intra_pop_links()
    return network


def abilene() -> Network:
    """The Abilene (Internet2) backbone: 11 PoPs, 41 directed links.

    >>> net = abilene()
    >>> (net.num_pops, net.num_links, len(net.inter_pop_links))
    (11, 41, 30)
    """
    return _build("abilene", _ABILENE_POPS, _ABILENE_EDGES)


def sprint_europe() -> Network:
    """A Sprint-Europe-like backbone: 13 PoPs, 49 directed links.

    >>> net = sprint_europe()
    >>> (net.num_pops, net.num_links, len(net.inter_pop_links))
    (13, 49, 36)
    """
    return _build("sprint-europe", _SPRINT_POPS, _SPRINT_EDGES)


def toy_network() -> Network:
    """A 4-PoP network used in doctests and unit tests.

    Square ``a-b-c-d`` with one diagonal ``a-c``:

    >>> net = toy_network()
    >>> (net.num_pops, net.num_links)
    (4, 14)
    """
    edges = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("a", "c")]
    return Network.from_edges("toy", ["a", "b", "c", "d"], edges)
