"""Routing tables.

A :class:`RoutingTable` records, for every OD pair, the route (or routes,
under ECMP) assigned by the routing protocol together with the fraction of
the flow's traffic carried by each route.  Tables are immutable snapshots;
re-running the protocol after a topology change produces a new table.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.exceptions import RoutingError

__all__ = ["Route", "RoutingTable"]


@dataclass(frozen=True, slots=True)
class Route:
    """One path assigned to an OD pair.

    Parameters
    ----------
    pops:
        The PoP-name sequence, origin first.  A single-element sequence
        denotes a same-PoP flow routed over its intra-PoP link.
    links:
        Canonical link names traversed, in order.
    fraction:
        Fraction of the OD flow's traffic carried on this path (1.0 for
        single-path routing; ECMP assigns fractions summing to 1).
    """

    pops: tuple[str, ...]
    links: tuple[str, ...]
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if not self.pops:
            raise RoutingError("a route must visit at least one PoP")
        if not self.links:
            raise RoutingError("a route must traverse at least one link")
        if not 0.0 < self.fraction <= 1.0:
            raise RoutingError(
                f"route fraction must lie in (0, 1], got {self.fraction!r}"
            )

    @property
    def origin(self) -> str:
        """First PoP of the route."""
        return self.pops[0]

    @property
    def destination(self) -> str:
        """Last PoP of the route."""
        return self.pops[-1]

    @property
    def num_hops(self) -> int:
        """Number of links traversed."""
        return len(self.links)


class RoutingTable:
    """Immutable mapping from OD pair to its route set."""

    def __init__(self, routes: dict[tuple[str, str], tuple[Route, ...]]) -> None:
        for od_pair, route_set in routes.items():
            if not route_set:
                raise RoutingError(f"OD pair {od_pair} has no routes")
            total = sum(route.fraction for route in route_set)
            if abs(total - 1.0) > 1e-9:
                raise RoutingError(
                    f"route fractions for {od_pair} sum to {total}, expected 1"
                )
            for route in route_set:
                if (route.origin, route.destination) != od_pair:
                    raise RoutingError(
                        f"route {route.pops} filed under wrong OD pair {od_pair}"
                    )
        self._routes = dict(routes)

    def routes(self, origin: str, destination: str) -> tuple[Route, ...]:
        """All routes for the OD pair, fractions summing to 1."""
        try:
            return self._routes[(origin, destination)]
        except KeyError:
            raise RoutingError(
                f"no routes recorded for OD pair ({origin!r}, {destination!r})"
            ) from None

    def route(self, origin: str, destination: str) -> Route:
        """The unique route for the OD pair (errors if ECMP split)."""
        route_set = self.routes(origin, destination)
        if len(route_set) != 1:
            raise RoutingError(
                f"OD pair ({origin!r}, {destination!r}) has {len(route_set)} "
                "ECMP routes; use .routes()"
            )
        return route_set[0]

    def od_pairs(self) -> list[tuple[str, str]]:
        """All OD pairs with routes, in insertion order."""
        return list(self._routes.keys())

    def links_used(self) -> set[str]:
        """The set of link names carrying at least one route."""
        used: set[str] = set()
        for route_set in self._routes.values():
            for route in route_set:
                used.update(route.links)
        return used

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._routes)

    def __contains__(self, od_pair: tuple[str, str]) -> bool:
        return od_pair in self._routes
