"""Equal-cost multipath (ECMP) traffic splitting.

Real routers split traffic *per node*: at every branching point of the
shortest-path DAG the flow divides evenly among the next hops that lie on a
shortest path.  This is not the same as splitting evenly per *path* — a
node with two branches that later rejoin sends half the flow down each
branch regardless of how many distinct paths each branch contains.  We
implement the per-node semantics.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable

from repro.exceptions import RoutingError
from repro.routing.tables import Route
from repro.topology.network import Network

__all__ = ["ecmp_link_fractions", "ecmp_routes"]

_EPS = 1e-12


def _shortest_distances(
    network: Network,
    origin: str,
    exclude_links: frozenset[str],
) -> dict[str, float]:
    """Dijkstra distances from ``origin`` over usable inter-PoP links."""
    adjacency: dict[str, list[tuple[str, float]]] = {
        name: [] for name in network.pop_names
    }
    for link in network.inter_pop_links:
        if link.name in exclude_links:
            continue
        adjacency[link.source].append((link.target, link.weight))

    distances: dict[str, float] = {origin: 0.0}
    heap: list[tuple[float, str]] = [(0.0, origin)]
    visited: set[str] = set()
    while heap:
        cost, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        for neighbor, weight in adjacency[node]:
            candidate = cost + weight
            if candidate < distances.get(neighbor, float("inf")) - _EPS:
                distances[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return distances


def ecmp_link_fractions(
    network: Network,
    origin: str,
    destination: str,
    exclude_links: Iterable[str] = (),
) -> dict[str, float]:
    """Fraction of the OD flow carried on each link under ECMP.

    Returns a mapping from canonical link name to the fraction of the
    ``origin -> destination`` flow that traverses it.  Fractions on the
    links entering ``destination`` sum to 1.

    Raises
    ------
    RoutingError
        If the destination is unreachable.
    """
    network.pop(origin)
    network.pop(destination)
    if origin == destination:
        return {network.intra_pop_link(origin).name: 1.0}

    excluded = frozenset(exclude_links)
    distances = _shortest_distances(network, origin, excluded)
    if destination not in distances:
        raise RoutingError(f"no path from {origin!r} to {destination!r}")

    # dag_edges[node] lists the (link_name, next_hop) pairs on shortest paths
    # from `node` toward `destination`.
    dag_edges: dict[str, list[tuple[str, str]]] = {}
    # Distances *to* the destination require a reverse-graph Dijkstra; since
    # our backbones are symmetric this equals forward distance from the
    # destination, but we compute it correctly for asymmetric graphs by
    # checking d(origin, u) + w(u, v) + d_from_v == d(origin, destination)
    # is NOT valid in general; instead test membership on the forward DAG:
    # edge (u, v) is on a shortest origin->destination path iff
    # d(u) + w == d(v) and v can still reach destination at matching cost.
    reachable = _nodes_on_shortest_dag(network, distances, destination, excluded)
    for link in network.inter_pop_links:
        if link.name in excluded:
            continue
        u, v = link.source, link.target
        if u not in reachable or v not in reachable:
            continue
        if u in distances and v in distances:
            if abs(distances[u] + link.weight - distances[v]) < _EPS:
                dag_edges.setdefault(u, []).append((link.name, v))

    # Propagate flow fractions through the DAG in topological
    # (distance-sorted) order.
    fractions: dict[str, float] = {}
    node_share: dict[str, float] = {origin: 1.0}
    for node in sorted(reachable, key=lambda n: distances[n]):
        share = node_share.get(node, 0.0)
        if share <= 0.0 or node == destination:
            continue
        branches = dag_edges.get(node, [])
        if not branches:
            continue
        per_branch = share / len(branches)
        for link_name, next_hop in sorted(branches):
            fractions[link_name] = fractions.get(link_name, 0.0) + per_branch
            node_share[next_hop] = node_share.get(next_hop, 0.0) + per_branch
    if abs(node_share.get(destination, 0.0) - 1.0) > 1e-9:
        raise RoutingError(
            f"ECMP flow conservation failed for {origin!r}->{destination!r}"
        )
    return fractions


def _nodes_on_shortest_dag(
    network: Network,
    distances: dict[str, float],
    destination: str,
    excluded: frozenset[str],
) -> set[str]:
    """Nodes lying on at least one shortest path to ``destination``.

    Walk backwards from the destination along edges satisfying the
    shortest-path condition ``d(u) + w(u, v) == d(v)``.
    """
    incoming: dict[str, list[tuple[str, float]]] = {}
    for link in network.inter_pop_links:
        if link.name in excluded:
            continue
        incoming.setdefault(link.target, []).append((link.source, link.weight))

    on_dag = {destination}
    frontier = [destination]
    while frontier:
        node = frontier.pop()
        for predecessor, weight in incoming.get(node, []):
            if predecessor in on_dag:
                continue
            if predecessor not in distances or node not in distances:
                continue
            if abs(distances[predecessor] + weight - distances[node]) < _EPS:
                on_dag.add(predecessor)
                frontier.append(predecessor)
    return on_dag


def ecmp_routes(
    network: Network,
    origin: str,
    destination: str,
    exclude_links: Iterable[str] = (),
) -> tuple[Route, ...]:
    """All equal-cost paths as :class:`Route` objects with per-path fractions.

    Path fractions follow per-node even splitting: a path's fraction is the
    product of ``1 / branching-factor`` over its nodes.  Fractions sum to 1.
    """
    from repro.routing.paths import all_shortest_paths, path_links

    excluded = frozenset(exclude_links)
    if origin == destination:
        link = network.intra_pop_link(origin).name
        return (Route(pops=(origin,), links=(link,), fraction=1.0),)

    pop_paths = all_shortest_paths(network, origin, destination, excluded)
    if not pop_paths:
        raise RoutingError(f"no path from {origin!r} to {destination!r}")

    distances = _shortest_distances(network, origin, excluded)
    reachable = _nodes_on_shortest_dag(network, distances, destination, excluded)
    # Branching factor of each node: number of DAG successors.
    branching: dict[str, int] = {}
    for link in network.inter_pop_links:
        if link.name in excluded:
            continue
        u, v = link.source, link.target
        if u in reachable and v in reachable and u in distances and v in distances:
            if abs(distances[u] + link.weight - distances[v]) < _EPS:
                branching[u] = branching.get(u, 0) + 1

    routes = []
    for pop_path in pop_paths:
        fraction = 1.0
        for node in pop_path[:-1]:
            fraction /= branching[node]
        routes.append(
            Route(
                pops=tuple(pop_path),
                links=tuple(path_links(network, pop_path)),
                fraction=fraction,
            )
        )
    total = sum(route.fraction for route in routes)
    if abs(total - 1.0) > 1e-9:
        raise RoutingError(
            f"ECMP route fractions for {origin!r}->{destination!r} sum to {total}"
        )
    return tuple(routes)
