"""The asyncio HTTP front end over a real loopback socket."""

import json

import numpy as np

from repro.pipeline import DetectionPipeline
from repro.service import ServiceConfig


class TestIngestRoute:
    def test_batch_ingest_reports_alarms_and_results(
        self, service_split, make_service, run_server
    ):
        dataset, warmup = service_split
        server = run_server(make_service())
        stream = dataset.link_traffic[warmup:]
        status, body = server.post_json("/ingest", {"rows": stream.tolist()})
        assert status == 200
        assert body["accepted"] == stream.shape[0]
        batch = DetectionPipeline(svd_method="gram").fit(
            dataset.link_traffic[:warmup], routing=dataset.routing
        ).detect(stream)
        assert body["alarm_bins"] == [int(b) for b in batch.anomalous_bins]
        assert body["alarms"] == batch.num_alarms
        spe = [result["spe"] for result in body["results"]]
        # JSON round-trips doubles exactly (repr shortest round-trip).
        assert spe == list(batch.spe)

    def test_single_row_form_with_bin(
        self, service_split, make_service, run_server
    ):
        dataset, warmup = service_split
        server = run_server(make_service())
        row = dataset.link_traffic[warmup].tolist()
        status, body = server.post_json("/ingest", {"row": row, "bin": 0})
        assert status == 200 and body["accepted"] == 1
        assert body["results"][0]["bin"] == 0

    def test_rejection_reports_reason_and_accepted_prefix(
        self, service_split, make_service, run_server
    ):
        dataset, warmup = service_split
        server = run_server(make_service())
        good = dataset.link_traffic[warmup].tolist()
        status, body = server.post_json(
            "/ingest", {"rows": [good, [1.0, 2.0], good]}
        )
        assert status == 400
        assert body["reason"] == "wrong_width"
        assert body["accepted"] == 1
        status, health = server.get_json("/health")
        assert health["rows_ingested"] == 1


class TestObservabilityRoutes:
    def test_health_version_and_metrics(
        self, service_split, make_service, run_server
    ):
        dataset, warmup = service_split
        server = run_server(make_service())
        server.post_json(
            "/ingest", {"rows": dataset.link_traffic[warmup : warmup + 5].tolist()}
        )
        status, health = server.get_json("/health")
        assert status == 200 and health["status"] == "ok"
        assert health["rows_ingested"] == 5

        status, version = server.get_json("/version")
        assert status == 200
        assert version["current"]["version"] == 1

        status, text = server.get("/metrics")
        assert status == 200
        assert "repro_rows_ingested_total 5" in text.splitlines()
        assert "# TYPE repro_ingest_latency_seconds histogram" in text

    def test_unknown_route_and_wrong_method(self, make_service, run_server):
        server = run_server(make_service())
        status, body = server.get_json("/nope")
        assert status == 404
        status, body = server.post_json("/metrics", {})
        assert status == 405
        # The daemon still serves after both.
        status, _ = server.get_json("/health")
        assert status == 200

    def test_keep_alive_reuses_one_connection(self, make_service, run_server):
        import http.client

        server = run_server(make_service())
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=10
        )
        try:
            for _ in range(3):
                connection.request("GET", "/health")
                response = connection.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()


class TestRefitRoute:
    def test_synchronous_refit_returns_the_new_version(
        self, service_split, make_service, run_server
    ):
        dataset, warmup = service_split
        server = run_server(make_service())
        server.post_json(
            "/ingest",
            {"rows": dataset.link_traffic[warmup : warmup + 10].tolist()},
        )
        status, body = server.post_json("/refit", {"wait": True})
        assert status == 200
        assert body["refit"] == "done"
        assert body["version"] == 2
        assert body["trained_rows"] == warmup + 10

    def test_background_refit_returns_202(
        self, service_split, make_service, run_server
    ):
        dataset, warmup = service_split
        service = make_service()
        server = run_server(service)
        server.post_json(
            "/ingest",
            {"rows": dataset.link_traffic[warmup : warmup + 5].tolist()},
        )
        status, body = server.post_json("/refit", {"wait": False})
        assert status == 202
        assert body["refit"] in ("started", "already running")
        service.wait_for_refit(timeout=30)
        status, version = server.get_json("/version")
        assert version["current"]["version"] == 2


class TestShutdown:
    def test_shutdown_stops_the_daemon_cleanly(
        self, make_service, run_server
    ):
        server = run_server(make_service())
        status, body = server.post_json("/shutdown", {})
        assert status == 200
        assert body["status"] == "shutting down"
        server._thread.join(timeout=10)
        assert not server.alive
        stop_events = [
            e
            for e in server.service.events.tail()
            if e["kind"] == "service_stop"
        ]
        assert len(stop_events) == 1


class TestHotSwapParityOverHTTP:
    def test_alarms_match_batch_refits_at_reported_boundaries(
        self, service_split, make_service, run_server
    ):
        """End-to-end: rows over the wire, synchronous auto-refits, and
        the alarm stream still matches offline refits bit for bit."""
        dataset, warmup = service_split
        config = ServiceConfig(refit_interval=30, synchronous_refit=True)
        server = run_server(make_service(config=config))
        stream = dataset.link_traffic[warmup:]
        # Chunked posting across the swap boundaries.
        collected = []
        for start in range(0, stream.shape[0], 17):
            status, body = server.post_json(
                "/ingest",
                {"rows": stream[start : start + 17].tolist()},
            )
            assert status == 200
            collected.extend(body["results"])
        assert [r["bin"] for r in collected] == list(range(stream.shape[0]))

        service = server.service
        reference_spe = np.empty(stream.shape[0])
        reference_flags = np.empty(stream.shape[0], dtype=bool)
        for version in service.lifecycle.version_history():
            lo = version.activated_at_row - warmup
            hi = (
                version.retired_at_row - warmup
                if version.retired_at_row is not None
                else stream.shape[0]
            )
            if hi <= lo:
                continue
            offline = DetectionPipeline(svd_method="gram").fit(
                dataset.link_traffic[: version.trained_rows],
                routing=dataset.routing,
            )
            result = offline.detect(stream[lo:hi])
            reference_spe[lo:hi] = result.spe
            reference_flags[lo:hi] = result.flags
        assert [r["spe"] for r in collected] == list(reference_spe)
        assert [r["bin"] for r in collected if r["flag"]] == [
            int(b) for b in np.nonzero(reference_flags)[0]
        ]
