"""repro — a reproduction of Lakhina, Crovella & Diot,
"Diagnosing Network-Wide Traffic Anomalies" (SIGCOMM 2004).

The package implements the paper's subspace method for diagnosing
network-wide volume anomalies from per-link byte counts, together with
every substrate the evaluation needs: backbone topologies, shortest-path
routing and routing matrices, synthetic OD-flow traffic with ground-truth
anomalies, a sampled-flow / SNMP measurement plane, the temporal baselines
(EWMA, Fourier, Holt-Winters, wavelet), and the full validation harness
reproducing the paper's tables and figures.

Quickstart
----------
>>> from repro import build_dataset, AnomalyDiagnoser
>>> ds = build_dataset("abilene")
>>> diagnoser = AnomalyDiagnoser().fit(ds.link_traffic, ds.routing)
>>> diagnoses = diagnoser.diagnose(ds.link_traffic)

See ``examples/quickstart.py`` for a narrated walk-through and DESIGN.md
for the experiment index.
"""

from repro import detectors
from repro.core import (
    PCA,
    AnomalyDiagnoser,
    Diagnosis,
    DetectionResult,
    MultiscaleDetector,
    OnlineSubspaceDetector,
    SPEDetector,
    SubspaceModel,
    detectability_thresholds,
    identify_multi_flow,
    identify_single_flow,
    q_threshold,
    quantify,
)
from repro.datasets import Dataset, build_dataset, load_dataset, save_dataset
from repro.exceptions import ReproError
from repro.pipeline import (
    BatchRunner,
    ComparisonReport,
    ComparisonRunner,
    DetectionPipeline,
    PipelineResult,
    StreamingDetector,
)
from repro.routing import RoutingMatrix, SPFRouting, build_routing_matrix
from repro.topology import Network, abilene, sprint_europe
from repro.traffic import AnomalyEvent, ODFlowGenerator, TrafficMatrix

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "PCA",
    "SubspaceModel",
    "SPEDetector",
    "DetectionResult",
    "AnomalyDiagnoser",
    "Diagnosis",
    "OnlineSubspaceDetector",
    "MultiscaleDetector",
    "q_threshold",
    "quantify",
    "identify_single_flow",
    "identify_multi_flow",
    "detectability_thresholds",
    # pipeline
    "DetectionPipeline",
    "PipelineResult",
    "BatchRunner",
    "ComparisonRunner",
    "ComparisonReport",
    "StreamingDetector",
    # detectors
    "detectors",
    # data layer
    "Dataset",
    "build_dataset",
    "save_dataset",
    "load_dataset",
    "Network",
    "abilene",
    "sprint_europe",
    "SPFRouting",
    "RoutingMatrix",
    "build_routing_matrix",
    "TrafficMatrix",
    "ODFlowGenerator",
    "AnomalyEvent",
    # errors
    "ReproError",
]
