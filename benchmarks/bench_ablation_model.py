"""Ablations: PCA refit sensitivity and measurement-plane sensitivity.

Two design choices called out in DESIGN.md §5:

1. **Refit policy for injections** — the vectorized §6.3 driver reuses
   the PCA fitted on the unmodified week.  Here we verify a single
   injected spike barely moves the model: refitting with the spike
   *included* changes detection on a sample of cells almost nowhere.
2. **Measurement-plane sensitivity** — the method consumes SNMP link
   counts; here we check detection outcomes are essentially unchanged
   when the input is the NetFlow-sampled OD estimate mapped to links
   (the paper's validation data path) instead of exact link counts.
"""

import numpy as np

from repro.core import SPEDetector
from repro.measurement import MeasurementPipeline
from repro.validation import InjectionStudy

from conftest import write_result


def test_ablation_refit_policy(benchmark, sprint1, results_dir):
    study = InjectionStudy(sprint1)
    rng = np.random.default_rng(5)
    cells = [
        (int(t), int(f))
        for t, f in zip(
            rng.integers(0, 144, size=30), rng.integers(0, 169, size=30)
        )
    ]

    def compare():
        agree = 0
        for time_bin, flow in cells:
            fixed, _, _ = study.run_naive_cell(3.0e7, time_bin, flow)
            # Refit with the injected spike included in the training data.
            perturbed = sprint1.link_traffic.copy()
            perturbed[time_bin] += 3.0e7 * sprint1.routing.column(flow)
            refit = SPEDetector().fit(perturbed)
            spe = float(refit.model.spe(perturbed[time_bin]))
            refit_detected = spe > refit.threshold
            agree += int(refit_detected == fixed)
        return agree

    agree = benchmark.pedantic(compare, rounds=1, iterations=1)
    text = (
        f"fixed-model vs refit-per-injection detection agreement: "
        f"{agree}/{len(cells)} sampled cells"
    )
    write_result(results_dir, "ablation_refit", text)
    assert agree >= len(cells) - 3


def test_ablation_measured_vs_exact_links(benchmark, sprint1, results_dir):
    def compare():
        pipeline = MeasurementPipeline.sprint_style(sprint1.routing, seed=99)
        measured = pipeline.run(sprint1.od_traffic)
        exact = SPEDetector().fit(sprint1.link_traffic)
        sampled_links = sprint1.routing.link_loads(measured.od_estimates)
        sampled = SPEDetector().fit(sampled_links)
        flags_exact = exact.detect(sprint1.link_traffic).flags
        flags_sampled = sampled.detect(sampled_links).flags
        agreement = float(np.mean(flags_exact == flags_sampled))
        return agreement, flags_exact.sum(), flags_sampled.sum()

    agreement, n_exact, n_sampled = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    text = (
        f"exact-SNMP vs sampled-NetFlow detection agreement: "
        f"{agreement * 100:.1f}% of bins "
        f"({n_exact} vs {n_sampled} alarms)"
    )
    write_result(results_dir, "ablation_measurement", text)
    assert agreement > 0.97
