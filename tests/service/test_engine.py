"""The transport-agnostic engine: scoring, accounting, refits, health."""

import numpy as np
import pytest

from repro.exceptions import IngestError, ServiceError
from repro.pipeline import DetectionPipeline
from repro.service import ServiceConfig


class TestIngestScoring:
    def test_rows_score_bit_identically_to_batch_detect(
        self, service_split, make_service
    ):
        dataset, warmup = service_split
        service = make_service()
        stream = dataset.link_traffic[warmup:]
        outcomes = [service.ingest_row(row) for row in stream]
        batch = DetectionPipeline(svd_method="gram").fit(
            dataset.link_traffic[:warmup], routing=dataset.routing
        ).detect(stream)
        assert np.array_equal(
            np.array([o.spe for o in outcomes]), batch.spe
        )
        assert [o.bin for o in outcomes if o.flag] == [
            int(b) for b in batch.anomalous_bins
        ]
        assert all(o.threshold == batch.threshold for o in outcomes)
        assert all(o.model_version == 1 for o in outcomes)

    def test_flagged_rows_are_identified_and_quantified(
        self, service_split, make_service
    ):
        dataset, warmup = service_split
        service = make_service()
        flow = dataset.routing.od_index("lon", "zur")
        spike = dataset.link_traffic[warmup] + 5.0e8 * dataset.routing.column(
            flow
        )
        outcome = service.ingest_row(spike)
        assert outcome.flag
        assert outcome.flow_index == flow
        assert outcome.od_pair == ("lon", "zur")
        assert outcome.estimated_bytes is not None
        payload = outcome.to_json()
        assert payload["flow_index"] == flow
        assert payload["od_pair"] == ["lon", "zur"]

    def test_detection_only_without_routing(self, service_split, make_service):
        dataset, warmup = service_split
        service = make_service(routing=False)
        flow = dataset.routing.od_index("lon", "zur")
        spike = dataset.link_traffic[warmup] + 5.0e8 * dataset.routing.column(
            flow
        )
        outcome = service.ingest_row(spike)
        assert outcome.flag
        assert outcome.flow_index is None
        assert "flow_index" not in outcome.to_json()

    def test_counters_gauges_and_events_track_ingest(
        self, service_split, make_service
    ):
        dataset, warmup = service_split
        service = make_service()
        flow = dataset.routing.od_index("lon", "zur")
        spike = dataset.link_traffic[warmup] + 5.0e8 * dataset.routing.column(
            flow
        )
        service.ingest_row(dataset.link_traffic[warmup])
        service.ingest_row(spike)
        registry = service.metrics
        assert registry["repro_rows_ingested_total"].value() == 2
        assert registry["repro_alarms_total"].value() == 1
        assert registry["repro_ingest_latency_seconds"].count == 2
        alarms = [e for e in service.events.tail() if e["kind"] == "alarm"]
        assert len(alarms) == 1
        assert alarms[0]["bin"] == 1
        assert alarms[0]["model_version"] == 1


class TestIngestValidation:
    @pytest.mark.parametrize(
        "row, reason",
        [
            ("not a row", "bad_payload"),
            ([[1.0, 2.0]], "bad_payload"),
            ([1.0, 2.0, 3.0], "wrong_width"),
        ],
    )
    def test_malformed_rows_rejected_with_reason(
        self, make_service, row, reason
    ):
        service = make_service()
        with pytest.raises(IngestError) as excinfo:
            service.ingest_row(row)
        assert excinfo.value.reason == reason
        assert service.metrics["repro_ingest_errors_total"].value(reason) == 1
        assert service.rows_ingested == 0

    def test_non_finite_rows_rejected(self, service_split, make_service):
        dataset, warmup = service_split
        service = make_service()
        row = dataset.link_traffic[warmup].copy()
        row[0] = np.nan
        with pytest.raises(IngestError) as excinfo:
            service.ingest_row(row)
        assert excinfo.value.reason == "non_finite"

    def test_bin_sequencing(self, service_split, make_service):
        dataset, warmup = service_split
        service = make_service()
        stream = dataset.link_traffic[warmup:]
        service.ingest_row(stream[0], bin_id=0)
        with pytest.raises(IngestError) as excinfo:
            service.ingest_row(stream[1], bin_id=0)
        assert excinfo.value.reason == "duplicate_bin"
        with pytest.raises(IngestError) as excinfo:
            service.ingest_row(stream[1], bin_id=5)
        assert excinfo.value.reason == "out_of_order_bin"
        # The stream position never advanced on the rejects.
        assert service.ingest_row(stream[1], bin_id=1).bin == 1

    def test_rejections_log_events_and_leave_state_clean(
        self, service_split, make_service
    ):
        dataset, warmup = service_split
        service = make_service()
        with pytest.raises(IngestError):
            service.ingest_row([1.0])
        errors = [
            e for e in service.events.tail() if e["kind"] == "ingest_error"
        ]
        assert len(errors) == 1
        assert errors[0]["reason"] == "wrong_width"
        outcome = service.ingest_row(dataset.link_traffic[warmup])
        assert outcome.bin == 0

    def test_batch_ingest_stops_at_first_rejection(
        self, service_split, make_service
    ):
        dataset, warmup = service_split
        service = make_service()
        rows = [
            dataset.link_traffic[warmup],
            [1.0, 2.0],
            dataset.link_traffic[warmup + 1],
        ]
        with pytest.raises(IngestError):
            service.ingest_rows(rows)
        assert service.rows_ingested == 1  # the first row stayed

    def test_unknown_error_reason_rejected(self, make_service):
        service = make_service()
        with pytest.raises(ServiceError, match="unknown error reason"):
            service.record_error("no_such_reason")


class TestRefits:
    def test_manual_refit_swaps_and_accounts(self, service_split, make_service):
        dataset, warmup = service_split
        service = make_service()
        for row in dataset.link_traffic[warmup : warmup + 20]:
            service.ingest_row(row)
        version = service.refit()
        assert version.version == 2
        assert version.trained_rows == warmup + 20
        registry = service.metrics
        assert registry["repro_refits_total"].value() == 1
        assert registry["repro_model_swaps_total"].value() == 1
        swaps = [
            e for e in service.events.tail() if e["kind"] == "model_swap"
        ]
        assert len(swaps) == 1 and swaps[0]["version"] == 2

    def test_synchronous_auto_refit_has_deterministic_boundaries(
        self, service_split, make_service
    ):
        dataset, warmup = service_split
        service = make_service(
            config=ServiceConfig(refit_interval=10, synchronous_refit=True)
        )
        for row in dataset.link_traffic[warmup : warmup + 25]:
            service.ingest_row(row)
        history = service.lifecycle.version_history()
        assert [v.activated_at_row for v in history] == [
            warmup,
            warmup + 10,
            warmup + 20,
        ]

    def test_background_auto_refit_completes(self, service_split, make_service):
        dataset, warmup = service_split
        service = make_service(config=ServiceConfig(refit_interval=15))
        for row in dataset.link_traffic[warmup : warmup + 15]:
            service.ingest_row(row)
        service.wait_for_refit(timeout=30)
        assert service.lifecycle.current.version == 2
        assert service.metrics["repro_refits_total"].value() == 1

    def test_failed_refit_is_counted_and_survivable(
        self, service_split, make_service
    ):
        dataset, warmup = service_split
        boom = {"armed": False}

        def hook():
            if boom["armed"]:
                raise RuntimeError("injected refit failure")

        service = make_service(refit_hook=hook)
        service.ingest_row(dataset.link_traffic[warmup])
        boom["armed"] = True
        with pytest.raises(ServiceError, match="refit failed"):
            service.refit()
        assert service.lifecycle.current.version == 1
        registry = service.metrics
        assert registry["repro_refit_failures_total"].value() == 1
        assert registry["repro_ingest_errors_total"].value("refit_failed") == 1
        assert service.health()["status"] == "ok"
        assert service.health()["last_refit_error"] is not None
        boom["armed"] = False
        assert service.refit().version == 2
        assert service.health()["last_refit_error"] is None


class TestObservability:
    def test_health_payload(self, service_split, make_service):
        dataset, warmup = service_split
        service = make_service()
        service.ingest_row(dataset.link_traffic[warmup])
        health = service.health()
        assert health["status"] == "ok"
        assert health["model_version"] == 1
        assert health["rows_ingested"] == 1
        assert health["warmup_rows"] == warmup
        assert health["num_links"] == dataset.num_links

    def test_version_info_reports_history(self, service_split, make_service):
        dataset, warmup = service_split
        service = make_service()
        service.ingest_row(dataset.link_traffic[warmup])
        service.refit()
        info = service.version_info()
        assert info["current"]["version"] == 2
        assert [v["version"] for v in info["history"]] == [1, 2]
        assert info["history"][0]["retired_at_row"] == warmup + 1

    def test_metrics_text_exposes_the_catalog(
        self, service_split, make_service
    ):
        dataset, warmup = service_split
        service = make_service()
        service.ingest_row(dataset.link_traffic[warmup])
        text = service.metrics_text()
        for name in (
            "repro_rows_ingested_total",
            "repro_alarms_total",
            "repro_ingest_errors_total",
            "repro_refits_total",
            "repro_refit_failures_total",
            "repro_model_swaps_total",
            "repro_spe_last",
            "repro_spe_threshold",
            "repro_normal_rank",
            "repro_model_version",
            "repro_model_refresh_age_rows",
            "repro_tracker_threshold",
            "repro_tracker_drift_radians",
            "repro_ingest_latency_seconds",
        ):
            assert f"# TYPE {name} " in text

    def test_drift_tracker_follows_but_never_scores(
        self, service_split, make_service
    ):
        """The tracker folds every arrival (telemetry moves) while the
        scoring threshold stays pinned to the active version."""
        dataset, warmup = service_split
        service = make_service(
            config=ServiceConfig(forgetting=1.0 / 36.0)
        )
        version = service.lifecycle.current
        thresholds = set()
        for row in dataset.link_traffic[warmup : warmup + 40]:
            thresholds.add(service.ingest_row(row).threshold)
        assert thresholds == {version.threshold}  # scoring never drifted
        tracker_threshold = service.metrics["repro_tracker_threshold"].value()
        assert tracker_threshold != version.threshold  # telemetry did

    def test_close_emits_stop_event(self, service_split, make_service):
        dataset, warmup = service_split
        service = make_service()
        service.ingest_row(dataset.link_traffic[warmup])
        service.close()
        stop = [
            e for e in service.events.tail() if e["kind"] == "service_stop"
        ]
        assert len(stop) == 1
        assert stop[0]["rows_ingested"] == 1
