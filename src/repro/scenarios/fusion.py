"""Spatial alarm fusion, scored against the monolithic detector.

The spatial sharded plane (:mod:`repro.pipeline.sharded`) trades the
global subspace view for per-zone locality, so its value is an
*empirical* question: how much recall does each fusion mode give back,
at the same false-alarm spend, compared to the one-model-over-all-links
detector the paper studies?  This module answers it over the scenario
suites — every anomaly family, exact ground truth — in one pass per
scenario:

* the monolithic subspace detector and the spatial plane are fitted on
  the same (clean-plus-anomalies) trace the suite's
  :class:`~repro.scenarios.runner.ScenarioRunner` diagnoses;
* every fusion mode's continuous fused score and the monolithic SPE are
  swept through the same ROC harness, and **recall at the shared
  false-alarm budget** is read off each curve — the equal-budget
  comparison the acceptance gate pins;
* native operating points (each detector thresholding at its own
  calibration) are reported alongside, so the budget comparison can be
  sanity-checked against what the detectors would actually alarm.

:func:`run_fusion_suite` drives a whole suite and aggregates per
anomaly family; ``repro shard run --mode spatial`` prints the tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.detection import SPEDetector
from repro.exceptions import ValidationError
from repro.pipeline.sharded import FUSION_MODES, SpatialCoordinator
from repro.scenarios.runner import _rounded
from repro.scenarios.spec import compile_scenario
from repro.scenarios.suite import get_suite
from repro.validation.roc import operating_point, roc_curve

__all__ = [
    "FusionScenarioScore",
    "FusionSuiteReport",
    "run_fusion_suite",
]

#: Version of the :meth:`FusionSuiteReport.to_json` payload layout.
FUSION_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FusionScenarioScore:
    """Equal-budget and native scores of one scenario.

    ``recall_at_budget`` maps ``"monolithic"`` and every fusion mode to
    the best detection rate achievable with false alarms at or below
    ``fa_budget`` (read off each score's exact ROC).  ``native`` maps
    the same keys to ``(recall, false_alarm_rate)`` at each detector's
    own calibrated threshold.
    """

    scenario: str
    topology: str
    families: tuple[str, ...]
    num_truth_bins: int
    fa_budget: float
    recall_at_budget: dict[str, float]
    native: dict[str, tuple[float, float]]


@dataclass(frozen=True)
class FusionSuiteReport:
    """All fusion-vs-monolithic scores of one suite pass."""

    suite: str
    confidence: float
    num_zones: int
    scheme: str
    fa_budget: float
    modes: tuple[str, ...]
    scores: tuple[FusionScenarioScore, ...]

    def __len__(self) -> int:
        return len(self.scores)

    def __iter__(self):
        return iter(self.scores)

    # ------------------------------------------------------------------
    def families(self) -> tuple[str, ...]:
        """Distinct anomaly families scored, first-seen order."""
        seen: list[str] = []
        for score in self.scores:
            for family in score.families:
                if family not in seen:
                    seen.append(family)
        return tuple(seen)

    def mean_recall(self, key: str) -> float:
        """Suite-mean recall at the shared budget for one detector key."""
        return float(
            np.mean([score.recall_at_budget[key] for score in self.scores])
        )

    def family_recall(self, family: str, key: str) -> float:
        """Mean recall at budget over the scenarios exercising a family."""
        values = [
            score.recall_at_budget[key]
            for score in self.scores
            if family in score.families
        ]
        if not values:
            raise ValidationError(f"no scenarios exercise family {family!r}")
        return float(np.mean(values))

    def modes_within(self, tolerance: float = 0.05) -> tuple[str, ...]:
        """Fusion modes whose suite-mean recall at the shared budget is
        within ``tolerance`` of the monolithic detector's."""
        floor = self.mean_recall("monolithic") - tolerance
        return tuple(
            mode for mode in self.modes if self.mean_recall(mode) >= floor
        )

    def best_mode(self) -> str:
        """The fusion mode with the highest suite-mean recall at budget."""
        return max(self.modes, key=self.mean_recall)

    # ------------------------------------------------------------------
    def table(self) -> str:
        """Per-scenario and per-family recall at the shared FA budget."""
        keys = ("monolithic",) + self.modes
        header = f"{'scenario':<22} {'families':<26}" + "".join(
            f" {key:>11}" for key in keys
        )
        lines = [
            f"recall at false-alarm budget {self.fa_budget:.3%} "
            f"({self.num_zones} zones, {self.scheme})",
            header,
            "-" * len(header),
        ]
        for score in self.scores:
            lines.append(
                f"{score.scenario:<22} {','.join(score.families):<26}"
                + "".join(
                    f" {score.recall_at_budget[key] * 100:>10.1f}%"
                    for key in keys
                )
            )
        lines.append("")
        lines.append(f"{'per family':<22} {'':<26}" + "".join(
            f" {key:>11}" for key in keys
        ))
        lines.append("-" * len(header))
        for family in self.families():
            lines.append(
                f"{family:<22} {'':<26}"
                + "".join(
                    f" {self.family_recall(family, key) * 100:>10.1f}%"
                    for key in keys
                )
            )
        lines.append("")
        lines.append(
            "suite mean: "
            + ", ".join(
                f"{key}={self.mean_recall(key):.3f}" for key in keys
            )
        )
        return "\n".join(lines)

    def to_json(self) -> dict:
        """The canonical payload (golden-stable float rounding)."""
        keys = ("monolithic",) + self.modes
        return {
            "schema_version": FUSION_SCHEMA_VERSION,
            "suite": self.suite,
            "confidence": _rounded(self.confidence),
            "num_zones": self.num_zones,
            "scheme": self.scheme,
            "fa_budget": _rounded(self.fa_budget),
            "modes": list(self.modes),
            "mean_recall": {
                key: _rounded(self.mean_recall(key)) for key in keys
            },
            "family_recall": {
                family: {
                    key: _rounded(self.family_recall(family, key))
                    for key in keys
                }
                for family in self.families()
            },
            "scenarios": [
                {
                    "name": score.scenario,
                    "topology": score.topology,
                    "families": list(score.families),
                    "num_truth_bins": score.num_truth_bins,
                    "recall_at_budget": {
                        key: _rounded(value)
                        for key, value in sorted(
                            score.recall_at_budget.items()
                        )
                    },
                    "native": {
                        key: [_rounded(recall), _rounded(fa)]
                        for key, (recall, fa) in sorted(
                            score.native.items()
                        )
                    },
                }
                for score in self.scores
            ],
        }


def run_fusion_suite(
    suite: str = "core",
    num_zones: int = 2,
    scheme: str = "contiguous",
    votes: int | None = None,
    confidence: float = 0.999,
    fa_budget: float = 0.01,
    modes: tuple[str, ...] = FUSION_MODES,
) -> FusionSuiteReport:
    """Score every fusion mode against the monolithic detector.

    Each scenario of the suite is compiled once; the monolithic
    subspace detector and the spatial plane fit the same trace, and
    recalls are read off exact ROCs at the shared ``fa_budget``.
    """
    if not 0.0 < fa_budget < 1.0:
        raise ValidationError(
            f"fa_budget must lie in (0, 1), got {fa_budget}"
        )
    unknown = set(modes) - set(FUSION_MODES)
    if unknown:
        raise ValidationError(
            f"unknown fusion modes {sorted(unknown)}; "
            f"choose from {FUSION_MODES}"
        )
    specs = get_suite(suite) if isinstance(suite, str) else tuple(suite)
    suite_name = suite if isinstance(suite, str) else "custom"
    scores: list[FusionScenarioScore] = []
    for spec in specs:
        compiled = compile_scenario(spec)
        traffic = compiled.dataset.link_traffic
        truth = compiled.truth_bins()

        monolithic = SPEDetector(confidence=confidence).fit(traffic)
        spe = np.atleast_1d(np.asarray(monolithic.spe(traffic)))
        recall_at = {
            "monolithic": roc_curve(spe, truth).detection_at(fa_budget)
        }
        native = {
            "monolithic": operating_point(spe, truth, monolithic.threshold)
        }

        plane = SpatialCoordinator(
            num_zones=min(num_zones, compiled.dataset.num_links),
            scheme=scheme,
            votes=votes,
            workers=1,
            confidence=confidence,
        ).fit(traffic)
        zone_spe = plane.model.zone_spe(traffic)
        for mode in modes:
            fused = plane.model.fuse(zone_spe, mode)
            recall_at[mode] = roc_curve(fused, truth).detection_at(fa_budget)
            native[mode] = operating_point(
                fused, truth, plane.model.fusion_threshold(mode)
            )
        scores.append(
            FusionScenarioScore(
                scenario=spec.name,
                topology=spec.topology,
                families=spec.families(),
                num_truth_bins=int(truth.size),
                fa_budget=fa_budget,
                recall_at_budget=recall_at,
                native=native,
            )
        )
    return FusionSuiteReport(
        suite=suite_name,
        confidence=confidence,
        num_zones=num_zones,
        scheme=scheme,
        fa_budget=fa_budget,
        modes=tuple(modes),
        scores=tuple(scores),
    )
