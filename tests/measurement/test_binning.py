"""Tests for repro.measurement.binning."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.measurement import rebin_matrix, rebin_vector, subdivide_matrix


class TestRebinVector:
    def test_sums_groups(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        assert np.array_equal(rebin_vector(values, 2), [3.0, 7.0, 11.0])

    def test_factor_one_is_identity(self):
        values = np.array([1.0, 2.0])
        assert np.array_equal(rebin_vector(values, 1), values)

    def test_partial_window_rejected(self):
        with pytest.raises(MeasurementError):
            rebin_vector(np.arange(5, dtype=float), 2)

    def test_not_vector_rejected(self):
        with pytest.raises(MeasurementError):
            rebin_vector(np.ones((2, 2)), 2)


class TestRebinMatrix:
    def test_mass_conservation(self, rng):
        values = rng.uniform(0, 10, size=(30, 4))
        rebinned = rebin_matrix(values, 5)
        assert rebinned.shape == (6, 4)
        assert np.allclose(rebinned.sum(axis=0), values.sum(axis=0))

    def test_matches_vector_rebin(self, rng):
        values = rng.uniform(0, 10, size=(12, 3))
        rebinned = rebin_matrix(values, 3)
        for j in range(3):
            assert np.allclose(rebinned[:, j], rebin_vector(values[:, j], 3))

    def test_validation(self):
        with pytest.raises(MeasurementError):
            rebin_matrix(np.ones(6), 2)
        with pytest.raises(MeasurementError):
            rebin_matrix(np.ones((5, 2)), 2)
        with pytest.raises(MeasurementError):
            rebin_matrix(np.ones((4, 2)), 0)


class TestSubdivideMatrix:
    def test_mass_conserved_per_cell(self, rng):
        values = rng.uniform(0, 1e6, size=(10, 5))
        fine = subdivide_matrix(values, 4, roughness=0.2, seed=1)
        assert fine.shape == (40, 5)
        coarse = rebin_matrix(fine, 4)
        assert np.allclose(coarse, values)

    def test_zero_roughness_splits_evenly(self):
        values = np.array([[8.0, 4.0]])
        fine = subdivide_matrix(values, 4, roughness=0.0)
        assert np.allclose(fine, [[2.0, 1.0]] * 4)

    def test_non_negative(self, rng):
        values = rng.uniform(0, 1e3, size=(20, 3))
        fine = subdivide_matrix(values, 10, roughness=0.5, seed=2)
        assert np.all(fine >= 0)

    def test_factor_one_copies(self, rng):
        values = rng.uniform(0, 1, size=(5, 2))
        fine = subdivide_matrix(values, 1)
        assert np.array_equal(fine, values)
        fine[0, 0] = 99.0
        assert values[0, 0] != 99.0

    def test_deterministic_with_seed(self):
        values = np.ones((5, 2)) * 100
        a = subdivide_matrix(values, 3, seed=7)
        b = subdivide_matrix(values, 3, seed=7)
        assert np.array_equal(a, b)

    def test_negative_values_rejected(self):
        with pytest.raises(MeasurementError):
            subdivide_matrix(np.array([[-1.0]]), 2)

    def test_roundtrip_rebin_subdivide(self, rng):
        """subdivide -> rebin is the identity (up to float error)."""
        values = rng.uniform(0, 1e8, size=(8, 6))
        for roughness in (0.0, 0.1, 0.4):
            fine = subdivide_matrix(values, 6, roughness=roughness, seed=3)
            assert np.allclose(rebin_matrix(fine, 6), values)
