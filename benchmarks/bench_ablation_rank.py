"""Ablation: sensitivity to the normal-subspace rank r.

DESIGN.md calls out the 3-sigma separation rule as a design choice; this
ablation sweeps the rank directly and measures Table-3-style injection
rates.  Expected shape: performance is flat near the rule's chosen rank
and degrades when r swallows too much of the residual space.
"""

import numpy as np

from repro.core import SPEDetector
from repro.validation import InjectionStudy

from conftest import write_result


def test_ablation_normal_rank(benchmark, sprint1, results_dir):
    chosen = SPEDetector().fit(sprint1.link_traffic).normal_rank

    def sweep():
        rows = []
        for rank in (1, 2, 3, 4, 6, 10, 20):
            study = InjectionStudy(sprint1, normal_rank=rank)
            large = study.run(3.0e7, time_bins=np.arange(48))
            small = study.run(1.5e7, time_bins=np.arange(48))
            rows.append(
                (
                    rank,
                    study.threshold,
                    large.detection_rate,
                    small.detection_rate,
                    large.identification_rate,
                )
            )
        return rows

    rows = benchmark(sweep)
    lines = [
        f"separation rule chooses r = {chosen}",
        "rank  threshold    det(large)  det(small)  ident(large)",
    ]
    for rank, threshold, large_rate, small_rate, ident in rows:
        marker = "  <== rule" if rank == chosen else ""
        lines.append(
            f"{rank:<5} {threshold:>10.3e}  {large_rate:>9.2f}  "
            f"{small_rate:>9.2f}  {ident:>11.2f}{marker}"
        )
    write_result(results_dir, "ablation_rank", "\n".join(lines))

    by_rank = {row[0]: row for row in rows}
    # The rule's rank performs at (or near) the best large-detection rate
    # while keeping small-injection detections low.
    best_large = max(row[2] for row in rows)
    assert by_rank[chosen][2] >= best_large - 0.1
    assert by_rank[chosen][3] < 0.5
    # Swallowing most axes into S hurts large-injection detection.
    assert by_rank[20][2] < by_rank[chosen][2]
