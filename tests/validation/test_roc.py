"""Tests for repro.validation.roc."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.validation import operating_point, roc_curve


class TestRocCurve:
    def test_perfect_separation(self):
        energy = np.array([1.0, 2.0, 100.0, 3.0, 200.0])
        curve = roc_curve(energy, np.array([2, 4]))
        assert curve.auc == pytest.approx(1.0)
        assert curve.detection_at(0.0) == 1.0

    def test_no_separation(self, rng):
        energy = rng.uniform(size=2000)
        anomaly_bins = rng.choice(2000, size=200, replace=False)
        curve = roc_curve(energy, anomaly_bins)
        assert curve.auc == pytest.approx(0.5, abs=0.06)

    def test_monotone_curve(self, rng):
        energy = rng.exponential(size=500)
        curve = roc_curve(energy, np.array([3, 100, 400]))
        # Descending thresholds produce nondecreasing rates.
        assert np.all(np.diff(curve.detection_rates) >= 0)
        assert np.all(np.diff(curve.false_alarm_rates) >= 0)

    def test_detection_at_budget(self):
        energy = np.array([1.0, 5.0, 10.0, 2.0, 8.0])
        curve = roc_curve(energy, np.array([2, 4]))  # 10 and 8
        # Zero-FA threshold must sit above 5 -> catches both anomalies.
        assert curve.detection_at(0.0) == 1.0

    def test_subspace_auc_on_sprint(self, sprint1):
        from repro.core import SPEDetector

        detector = SPEDetector().fit(sprint1.link_traffic)
        spe = np.asarray(detector.model.spe(sprint1.link_traffic))
        events = np.array(
            sorted(
                e.time_bin
                for e in sprint1.true_events
                if abs(e.amplitude_bytes) >= 2e7
            )
        )
        curve = roc_curve(spe, events)
        assert curve.auc > 0.95

    def test_validation(self):
        with pytest.raises(ValidationError):
            roc_curve(np.ones((2, 2)), np.array([0]))
        with pytest.raises(ValidationError):
            roc_curve(np.ones(5), np.array([], dtype=int))
        with pytest.raises(ValidationError):
            roc_curve(np.ones(5), np.array([99]))


class TestOperatingPoint:
    def test_exact_rates(self):
        energy = np.array([1.0, 5.0, 10.0, 2.0])
        detection, false_alarm = operating_point(energy, np.array([2]), 4.0)
        assert detection == 1.0
        assert false_alarm == pytest.approx(1 / 3)

    def test_q_statistic_point_lies_on_curve(self, sprint1):
        from repro.core import SPEDetector

        detector = SPEDetector().fit(sprint1.link_traffic)
        spe = np.asarray(detector.model.spe(sprint1.link_traffic))
        events = np.array(sorted(
            e.time_bin
            for e in sprint1.true_events
            if abs(e.amplitude_bytes) >= 2e7
        ))
        detection, false_alarm = operating_point(spe, events, detector.threshold)
        # The paper's chosen operating point: high detection, ~1e-3 FA.
        assert detection >= 0.75
        assert false_alarm < 0.01
