"""Property-based tests for the temporal baselines and the Haar DWT."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines.ewma import ewma_forecast
from repro.core.multiscale import haar_dwt, haar_idwt
from repro.core.qstatistic import box_approx_threshold, q_threshold


def bounded_series(min_len=8, max_len=200):
    lengths = st.integers(min_len, max_len)
    return lengths.flatmap(
        lambda n: hnp.arrays(
            dtype=np.float64,
            shape=n,
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )


@settings(max_examples=60, deadline=None)
@given(bounded_series(), st.floats(0.0, 1.0))
def test_ewma_forecast_bounded_by_history(series, alpha):
    """Every EWMA forecast is a convex combination of past values, so it
    stays inside the running min/max envelope."""
    forecasts = ewma_forecast(series, alpha)
    running_min = np.minimum.accumulate(series)
    running_max = np.maximum.accumulate(series)
    tolerance = 1e-9 * max(1.0, np.max(np.abs(series)))
    assert np.all(forecasts[1:] >= running_min[:-1] - tolerance)
    assert np.all(forecasts[1:] <= running_max[:-1] + tolerance)


@settings(max_examples=60, deadline=None)
@given(bounded_series(min_len=16, max_len=128), st.integers(1, 3))
def test_haar_roundtrip_and_energy(series, levels):
    block = 2**levels
    usable = (series.size // block) * block
    if usable < block:
        return
    trimmed = series[:usable]
    details, approx = haar_dwt(trimmed, levels)
    rebuilt = haar_idwt(details, approx)
    scale = max(1.0, float(np.max(np.abs(trimmed))))
    assert np.allclose(rebuilt, trimmed, atol=1e-9 * scale)
    energy = sum(float(d @ d) for d in details) + float(approx @ approx)
    assert energy == pytest.approx(float(trimmed @ trimmed), rel=1e-9, abs=1e-6)


def eigen_spectra():
    sizes = st.integers(1, 12)
    return sizes.flatmap(
        lambda n: hnp.arrays(
            dtype=np.float64,
            shape=n,
            elements=st.floats(1e-6, 1e6, allow_nan=False),
        )
    )


@settings(max_examples=80, deadline=None)
@given(eigen_spectra(), st.floats(0.9, 0.9999))
def test_q_threshold_above_mean_spe(spectrum, confidence):
    """Any valid limit at confidence >= 0.9 sits above E[SPE] = phi1."""
    threshold = q_threshold(spectrum, confidence=confidence)
    assert threshold >= spectrum.sum() * 0.999


@settings(max_examples=80, deadline=None)
@given(eigen_spectra())
def test_q_threshold_monotone_in_confidence(spectrum):
    t_low = q_threshold(spectrum, confidence=0.95)
    t_high = q_threshold(spectrum, confidence=0.999)
    assert t_high >= t_low


@settings(max_examples=80, deadline=None)
@given(eigen_spectra(), st.floats(1e-3, 1e3))
def test_q_threshold_scale_equivariant(spectrum, scale):
    base = q_threshold(spectrum, confidence=0.995)
    scaled = q_threshold(spectrum * scale, confidence=0.995)
    assert scaled == pytest.approx(base * scale, rel=1e-6)


@settings(max_examples=60, deadline=None)
@given(eigen_spectra())
def test_box_threshold_positive_and_scaled(spectrum):
    threshold = box_approx_threshold(spectrum, confidence=0.995)
    assert threshold > 0
    assert box_approx_threshold(spectrum * 2, 0.995) == pytest.approx(
        2 * threshold, rel=1e-9
    )
