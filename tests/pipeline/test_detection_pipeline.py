"""DetectionPipeline: end-to-end behavior and per-module parity."""

import numpy as np
import pytest

from repro.core import AnomalyDiagnoser, SPEDetector
from repro.datasets.synthetic import dataset_from_config
from repro.exceptions import ModelError
from repro.pipeline import DetectionPipeline
from repro.traffic.workloads import workload_for


@pytest.fixture(scope="module")
def clean_abilene():
    """Two Abilene-style days with no planted anomalies."""
    config = workload_for("abilene").with_overrides(
        name="abilene-clean",
        num_bins=288,
        num_anomalies=0,
        traffic_seed=4242,
    )
    return dataset_from_config(config)


@pytest.fixture(scope="module")
def injected_world(clean_abilene):
    """Clean traffic plus three hand-planted spikes on known flows."""
    routing = clean_abilene.routing
    measurements = clean_abilene.link_traffic.copy()
    spikes = {
        40: routing.od_index("nycm", "losa"),
        150: routing.od_index("chin", "atla"),
        250: routing.od_index("dnvr", "hstn"),
    }
    for time_bin, flow in spikes.items():
        measurements[time_bin] += 2.5e8 * routing.matrix[:, flow]
    return clean_abilene, measurements, spikes


class TestEndToEnd:
    def test_injected_anomalies_are_flagged_and_identified(self, injected_world):
        dataset, measurements, spikes = injected_world
        pipeline = DetectionPipeline(confidence=0.999).fit(
            dataset.link_traffic, routing=dataset.routing
        )
        result = pipeline.detect(measurements)
        flagged = set(result.anomalous_bins.tolist())
        assert set(spikes) <= flagged
        by_bin = dict(zip(result.anomalous_bins.tolist(), result.flow_indices))
        for time_bin, flow in spikes.items():
            assert by_bin[time_bin] == flow

    def test_quantification_recovers_spike_size(self, injected_world):
        dataset, measurements, spikes = injected_world
        pipeline = DetectionPipeline().fit(
            dataset.link_traffic, routing=dataset.routing
        )
        result = pipeline.detect(measurements)
        estimates = dict(
            zip(result.anomalous_bins.tolist(), result.estimated_bytes)
        )
        for time_bin in spikes:
            assert estimates[time_bin] == pytest.approx(2.5e8, rel=0.2)

    def test_from_dataset_equals_manual_fit(self, clean_abilene):
        auto = DetectionPipeline.from_dataset(clean_abilene)
        manual = DetectionPipeline().fit(
            clean_abilene.link_traffic, routing=clean_abilene.routing
        )
        assert auto.threshold == manual.threshold
        assert auto.normal_rank == manual.normal_rank


class TestPerModuleParity:
    """The acceptance bar: identical results to the per-module path."""

    def test_flags_match_spedetector(self, injected_world):
        dataset, measurements, _ = injected_world
        pipeline = DetectionPipeline(confidence=0.999).fit(
            dataset.link_traffic, routing=dataset.routing
        )
        reference = SPEDetector(confidence=0.999).fit(dataset.link_traffic)
        expected = reference.detect(measurements)
        result = pipeline.detect(measurements)
        assert result.threshold == expected.threshold
        assert np.array_equal(result.flags, expected.flags)
        assert np.allclose(result.spe, expected.spe, rtol=1e-12)

    def test_diagnoses_match_anomaly_diagnoser(self, injected_world):
        dataset, measurements, _ = injected_world
        pipeline = DetectionPipeline(confidence=0.999).fit(
            dataset.link_traffic, routing=dataset.routing
        )
        reference = AnomalyDiagnoser(confidence=0.999).fit(
            dataset.link_traffic, dataset.routing
        )
        expected = reference.diagnose(measurements)
        got = pipeline.detect(measurements).diagnoses()
        assert len(got) == len(expected)
        for ours, theirs in zip(got, expected):
            assert ours.time_bin == theirs.time_bin
            assert ours.flow_index == theirs.flow_index
            assert ours.od_pair == theirs.od_pair
            assert ours.spe == pytest.approx(theirs.spe, rel=1e-12)
            assert ours.magnitude == pytest.approx(theirs.magnitude, rel=1e-9)
            assert ours.estimated_bytes == pytest.approx(
                theirs.estimated_bytes, rel=1e-9
            )

    def test_confidence_override_matches(self, injected_world):
        dataset, measurements, _ = injected_world
        pipeline = DetectionPipeline(confidence=0.999).fit(
            dataset.link_traffic, routing=dataset.routing
        )
        reference = SPEDetector(confidence=0.999).fit(dataset.link_traffic)
        result = pipeline.detect(measurements, confidence=0.995)
        expected = reference.detect(measurements, confidence=0.995)
        assert result.threshold == expected.threshold
        assert np.array_equal(result.flags, expected.flags)


class TestApiEdges:
    def test_detection_only_without_routing(self, injected_world):
        dataset, measurements, spikes = injected_world
        pipeline = DetectionPipeline().fit(dataset.link_traffic)
        result = pipeline.detect(measurements)
        assert set(spikes) <= set(result.anomalous_bins.tolist())
        assert result.flow_indices.size == 0
        assert not result.identified
        with pytest.raises(ModelError):
            result.diagnoses()

    def test_single_vector_detect(self, injected_world):
        dataset, measurements, spikes = injected_world
        pipeline = DetectionPipeline().fit(
            dataset.link_traffic, routing=dataset.routing
        )
        time_bin = next(iter(spikes))
        result = pipeline.detect(measurements[time_bin])
        assert result.flags.shape == (1,)
        assert result.num_alarms == 1

    def test_unfitted_pipeline_reports_state(self):
        pipeline = DetectionPipeline()
        assert not pipeline.is_fitted
        with pytest.raises(ModelError):
            pipeline.detect(np.zeros((4, 3)))

    def test_routing_dimension_mismatch_rejected(self, clean_abilene):
        with pytest.raises(ModelError):
            DetectionPipeline().fit(
                clean_abilene.link_traffic[:, :5], routing=clean_abilene.routing
            )

    def test_non_2d_training_rejected(self, clean_abilene):
        with pytest.raises(ModelError):
            DetectionPipeline().fit(clean_abilene.link_traffic[0])
