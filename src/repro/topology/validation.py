"""Structural validation of networks.

:func:`check_network` enforces the invariants the rest of the library
assumes; it is called by dataset builders before any traffic is generated so
that configuration mistakes fail fast with a clear message.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.exceptions import TopologyError
from repro.topology.network import Network

__all__ = ["check_network", "connectivity_report", "ConnectivityReport"]


@dataclass(frozen=True, slots=True)
class ConnectivityReport:
    """Summary of a network's connectivity structure."""

    is_connected: bool
    num_components: int
    largest_component_size: int
    isolated_pops: tuple[str, ...]
    diameter: int | None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        state = "connected" if self.is_connected else "DISCONNECTED"
        return (
            f"{state}: {self.num_components} component(s), largest "
            f"{self.largest_component_size}, diameter {self.diameter}"
        )


def check_network(
    network: Network,
    require_connected: bool = True,
    require_intra_pop: bool = False,
    require_symmetric: bool = True,
) -> None:
    """Validate structural invariants, raising :class:`TopologyError` on failure.

    Parameters
    ----------
    network:
        The network to check.
    require_connected:
        Every PoP must reach every other PoP over inter-PoP links.
    require_intra_pop:
        Every PoP must own exactly one intra-PoP self-link (needed when
        same-PoP OD flows will carry traffic).
    require_symmetric:
        Every inter-PoP link must have a reverse link (backbones in the
        paper are bidirectional).
    """
    if network.num_pops == 0:
        raise TopologyError("network has no PoPs")

    if require_symmetric:
        for link in network.inter_pop_links:
            reverse = f"{link.target}->{link.source}"
            if not network.has_link(reverse):
                raise TopologyError(
                    f"link {link.name} has no reverse link {reverse}; the "
                    "backbone model assumes bidirectional connectivity"
                )

    if require_intra_pop:
        intra_sources = {link.source for link in network.intra_pop_links}
        missing = [name for name in network.pop_names if name not in intra_sources]
        if missing:
            raise TopologyError(
                "PoPs missing intra-PoP self-links: " + ", ".join(sorted(missing))
            )
        if len(network.intra_pop_links) != network.num_pops:
            raise TopologyError("each PoP must own exactly one intra-PoP link")

    if require_connected and not network.is_connected():
        report = connectivity_report(network)
        raise TopologyError(
            f"network {network.name!r} is not strongly connected: {report}"
        )


def connectivity_report(network: Network) -> ConnectivityReport:
    """Compute a :class:`ConnectivityReport` over the inter-PoP graph."""
    graph = network.to_networkx()
    for name in network.pop_names:
        if name not in graph:
            graph.add_node(name)
    components = list(nx.strongly_connected_components(graph))
    largest = max((len(c) for c in components), default=0)
    isolated = tuple(
        sorted(name for name in graph if graph.degree(name) == 0)
    )
    is_connected = len(components) == 1 and largest == network.num_pops
    diameter: int | None = None
    if is_connected and network.num_pops > 1:
        diameter = nx.diameter(graph)
    return ConnectivityReport(
        is_connected=is_connected,
        num_components=len(components),
        largest_component_size=largest,
        isolated_pops=isolated,
        diameter=diameter,
    )
