"""Detectability conditions (§5.4).

An anomaly lying entirely inside the normal subspace is invisible to the
subspace method (``C̃ θ_i = 0``).  Short of that, the sufficient condition
for guaranteed detection of a one-dimensional anomaly ``F_i`` at
confidence ``1 − α`` is

    f_i > 2 δ_α / ‖C̃ θ_i‖

and, translated to bytes for a single-flow anomaly (where ``f = b·‖A_i‖``),

    b_i > 2 δ_α / (‖C̃ θ_i‖ · ‖A_i‖).

Flows whose direction aligns closely with the normal subspace (typically
the *largest-variance* flows) have small ``‖C̃ θ_i‖`` and thus higher byte
thresholds — the effect behind the paper's Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.subspace import SubspaceModel
from repro.exceptions import ModelError
from repro.routing.routing_matrix import RoutingMatrix

__all__ = ["DetectabilityReport", "detectability_thresholds"]


@dataclass(frozen=True)
class DetectabilityReport:
    """Per-flow detectability at one confidence level.

    Attributes
    ----------
    residual_alignment:
        ``‖C̃ θ_i‖`` per flow — 1 means the anomaly lands entirely in the
        residual subspace, 0 means it is undetectable.
    min_magnitude:
        ``f`` threshold per flow (∞ for undetectable flows).
    min_bytes:
        Byte threshold per flow (∞ for undetectable flows).
    delta:
        ``δ_α`` — the square root of the SPE limit used.
    """

    residual_alignment: np.ndarray
    min_magnitude: np.ndarray
    min_bytes: np.ndarray
    delta: float

    def undetectable_flows(self) -> np.ndarray:
        """Indices of flows with (numerically) zero residual alignment."""
        return np.nonzero(~np.isfinite(self.min_bytes))[0]

    def hardest_flows(self, count: int = 5) -> np.ndarray:
        """Indices of the ``count`` detectable flows with the largest byte
        thresholds (the flows the method struggles with most)."""
        finite = np.where(np.isfinite(self.min_bytes), self.min_bytes, -np.inf)
        order = np.argsort(finite)[::-1]
        order = order[np.isfinite(self.min_bytes[order])]
        return order[:count]


def detectability_thresholds(
    model: SubspaceModel,
    routing: RoutingMatrix,
    spe_threshold: float,
    alignment_floor: float = 1e-9,
) -> DetectabilityReport:
    """Compute §5.4's sufficient-detection thresholds for every flow.

    Parameters
    ----------
    model:
        Fitted subspace model.
    routing:
        Routing matrix defining the candidate flows.
    spe_threshold:
        The SPE limit ``δ²_α`` (e.g. ``SPEDetector.threshold``).
    alignment_floor:
        Alignments below this count as undetectable.
    """
    if routing.num_links != model.num_links:
        raise ModelError(
            f"routing matrix covers {routing.num_links} links but the model "
            f"expects {model.num_links}"
        )
    if spe_threshold < 0:
        raise ModelError(f"spe_threshold must be >= 0, got {spe_threshold}")

    delta = float(np.sqrt(spe_threshold))
    theta = routing.normalized_columns()
    theta_tilde = model.anomalous_projector @ theta
    alignment = np.linalg.norm(theta_tilde, axis=0)
    column_norms = np.linalg.norm(routing.matrix, axis=0)

    with np.errstate(divide="ignore"):
        min_magnitude = np.where(
            alignment > alignment_floor, 2.0 * delta / alignment, np.inf
        )
        min_bytes = np.where(
            alignment > alignment_floor,
            2.0 * delta / (alignment * column_norms),
            np.inf,
        )
    return DetectabilityReport(
        residual_alignment=alignment,
        min_magnitude=min_magnitude,
        min_bytes=min_bytes,
        delta=delta,
    )
