"""Multi-tenant front for the always-on detection service.

:class:`MultiTenantService` routes ingest traffic to one
:class:`~repro.service.engine.DetectionService` engine per tenant and
adds the fleet-level plumbing the single-tenant engine deliberately
lacks:

* **per-tenant routes** — the HTTP server maps ``POST /ingest/<tenant>``
  here (see :mod:`repro.service.http`); unknown tenants are a typed
  rejection, never a crash;
* **per-tenant metrics labels** — a fleet registry tracks
  ``repro_tenant_rows_ingested_total{tenant=...}``,
  ``repro_tenant_alarms_total{tenant=...}`` and
  ``repro_tenant_ingest_errors_total{tenant=...}`` so one scrape shows
  every tenant's traffic without colliding with the per-engine
  registries (each engine keeps its own unlabeled metrics);
* **namespaced checkpoints** — :meth:`checkpoint` writes every tenant
  under :func:`~repro.pipeline.fleet.tenant_checkpoint_path` inside
  one directory, so concurrent tenant (and fleet) checkpoints never
  clobber each other and :meth:`restore` brings every tenant back
  bit-identically.
"""

from __future__ import annotations

from collections.abc import Mapping
from pathlib import Path
from urllib.parse import unquote

import numpy as np

from repro.exceptions import IngestError, ServiceError
from repro.pipeline.fleet import (
    _CHECKPOINT_SUFFIX,
    _validate_tenant_id,
    tenant_checkpoint_path,
)
from repro.service.engine import (
    BlockResult,
    DetectionService,
    RowOutcome,
    ServiceConfig,
)
from repro.service.metrics import MetricsRegistry

__all__ = ["MultiTenantService"]


class MultiTenantService:
    """One detection engine per tenant behind shared routes and metrics."""

    def __init__(
        self,
        services: Mapping[str, DetectionService],
        checkpoint_dir: str | Path | None = None,
    ) -> None:
        if not services:
            raise ServiceError("a multi-tenant service needs >= 1 tenant")
        self._services: dict[str, DetectionService] = {}
        for tenant_id, service in services.items():
            self._services[_validate_tenant_id(tenant_id)] = service
        self.checkpoint_dir = (
            None if checkpoint_dir is None else Path(checkpoint_dir)
        )
        registry = MetricsRegistry()
        self.metrics = registry
        self._m_tenants = registry.gauge(
            "repro_tenants", "Tenants currently served."
        )
        self._m_rows = registry.counter(
            "repro_tenant_rows_ingested_total",
            "Rows accepted and scored, by tenant.",
            label="tenant",
        )
        self._m_alarms = registry.counter(
            "repro_tenant_alarms_total",
            "Rows whose SPE exceeded the threshold, by tenant.",
            label="tenant",
        )
        self._m_errors = registry.counter(
            "repro_tenant_ingest_errors_total",
            "Rejected rows, by tenant.",
            label="tenant",
        )
        self._m_tenants.set(len(self._services))

    # ------------------------------------------------------------------
    @classmethod
    def from_warmups(
        cls,
        warmups: Mapping[str, np.ndarray],
        config: ServiceConfig | None = None,
        checkpoint_dir: str | Path | None = None,
    ) -> "MultiTenantService":
        """Bootstrap one engine per tenant from per-tenant warmups.

        Every engine shares ``config`` except the checkpoint path,
        which is tenant-namespaced under ``checkpoint_dir`` so the
        engines' own checkpoint-on-close writes can never collide.
        """
        config = config or ServiceConfig()
        services = {}
        for tenant_id, warmup in warmups.items():
            tenant_config = config
            if checkpoint_dir is not None:
                tenant_config = config.with_overrides(
                    checkpoint_path=str(
                        tenant_checkpoint_path(checkpoint_dir, tenant_id)
                    )
                )
            services[tenant_id] = DetectionService.from_warmup(
                warmup, config=tenant_config
            )
        return cls(services, checkpoint_dir=checkpoint_dir)

    @classmethod
    def restore(
        cls,
        checkpoint_dir: str | Path,
        config: ServiceConfig | None = None,
    ) -> "MultiTenantService":
        """Rebuild every tenant engine from a namespaced directory.

        Each restored engine refits from its checkpointed statistics,
        so every tenant scores bit-identically to the service that
        wrote the checkpoints.
        """
        root = Path(checkpoint_dir)
        tenant_dir = root / "tenants"
        paths = sorted(tenant_dir.glob(f"*{_CHECKPOINT_SUFFIX}"))
        if not paths:
            raise ServiceError(f"no tenant checkpoints under {tenant_dir}")
        config = config or ServiceConfig()
        services = {}
        for path in paths:
            tenant_id = unquote(path.name[: -len(_CHECKPOINT_SUFFIX)])
            services[tenant_id] = DetectionService.from_checkpoint(
                path,
                config=config.with_overrides(checkpoint_path=str(path)),
            )
        return cls(services, checkpoint_dir=root)

    # ------------------------------------------------------------------
    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(self._services)

    def service(self, tenant_id: str) -> DetectionService:
        """The tenant's engine; unknown tenants raise a typed error."""
        try:
            return self._services[tenant_id]
        except KeyError:
            raise ServiceError(f"unknown tenant {tenant_id!r}") from None

    def ingest_row(
        self, tenant_id: str, row, bin_id: int | None = None
    ) -> RowOutcome:
        """Route one row to its tenant; account it under its label."""
        service = self.service(tenant_id)
        try:
            outcome = service.ingest_row(row, bin_id=bin_id)
        except IngestError:
            self._m_errors.inc(label_value=tenant_id)
            raise
        self._m_rows.inc(label_value=tenant_id)
        if outcome.flag:
            self._m_alarms.inc(label_value=tenant_id)
        return outcome

    def ingest_block(
        self, tenant_id: str, rows, bins=None
    ) -> BlockResult:
        """Route one block to its tenant in a single pass.

        One engine lookup and one labeled-counter update per block
        instead of per row: the tenant's
        :meth:`~repro.service.engine.DetectionService.ingest_block`
        does the batched scoring (bit-identical to per-row routing),
        and the fleet counters fold the block's accepted/alarm/reject
        totals in one increment each — the counter values match a
        per-row replay exactly.
        """
        service = self.service(tenant_id)
        result = service.ingest_block(rows, bins=bins)
        if result.accepted:
            self._m_rows.inc(float(result.accepted), label_value=tenant_id)
        alarms = result.alarms
        if alarms:
            self._m_alarms.inc(float(alarms), label_value=tenant_id)
        if result.rejected is not None:
            self._m_errors.inc(label_value=tenant_id)
        return result

    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        """Fleet-level exposition (tenant-labeled counters only)."""
        return self.metrics.render()

    def health(self) -> dict:
        tenants = {t: s.health() for t, s in self._services.items()}
        ok = all(h.get("status") == "ok" for h in tenants.values())
        return {
            "status": "ok" if ok else "degraded",
            "tenants": tenants,
        }

    def checkpoint(self, root: str | Path | None = None) -> dict[str, dict]:
        """Checkpoint every tenant engine under namespaced paths."""
        root = self.checkpoint_dir if root is None else Path(root)
        if root is None:
            raise ServiceError(
                "no checkpoint directory: pass root= or set checkpoint_dir"
            )
        written = {}
        for tenant_id, service in self._services.items():
            path = tenant_checkpoint_path(root, tenant_id)
            written[tenant_id] = service.checkpoint(str(path))
        return written

    def close(self) -> None:
        for service in self._services.values():
            service.close()
