"""Tests for repro.validation.experiments."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.validation import fig6_series, fig10_series
from repro.validation.experiments import (
    run_actual_anomaly_experiment,
    run_synthetic_experiment,
    separability,
)


class TestActualAnomalyExperiment:
    def test_paper_table2_shape_sprint1(self, sprint1):
        """Sprint-1, Fourier: nearly all above-knee anomalies detected
        and identified; false alarms in the handful range."""
        row = run_actual_anomaly_experiment(sprint1, method="fourier")
        assert row.score.detection_rate >= 0.8
        assert row.score.identification_rate >= 0.8
        assert row.score.false_alarms <= 15
        assert row.cutoff_bytes == pytest.approx(2e7)

    def test_ewma_and_fourier_agree_roughly(self, sprint1):
        fourier = run_actual_anomaly_experiment(sprint1, method="fourier")
        ewma = run_actual_anomaly_experiment(sprint1, method="ewma")
        assert abs(fourier.score.detection_rate - ewma.score.detection_rate) < 0.4

    def test_custom_cutoff(self, sprint1):
        row = run_actual_anomaly_experiment(sprint1, cutoff_bytes=1e7)
        assert row.cutoff_bytes == 1e7
        assert row.score.num_true >= 9

    def test_quantification_in_paper_band(self, sprint1):
        """Paper Table 2 reports 15-33% error against method-estimated
        sizes; our synthetic world is cleaner, so the band is <= 35%."""
        row = run_actual_anomaly_experiment(sprint1, method="fourier")
        assert row.score.mean_quantification_error < 0.35

    def test_unknown_dataset_needs_explicit_cutoff(self, small_dataset):
        with pytest.raises(ValidationError):
            run_actual_anomaly_experiment(small_dataset)


class TestSyntheticExperiment:
    def test_paper_table3_shape(self, sprint1):
        large, small, raw = run_synthetic_experiment(sprint1)
        assert large.size_bytes == pytest.approx(3e7)
        assert small.size_bytes == pytest.approx(1.5e7)
        # Shape of Table 3: large >> small in both detection and the
        # product of detection x identification.
        assert large.detection_rate > 0.85
        assert small.detection_rate < 0.35
        assert large.identification_rate > 0.8
        assert set(raw) == {"large", "small"}

    def test_custom_sizes(self, sprint1):
        large, small, _ = run_synthetic_experiment(
            sprint1, large_bytes=5e7, small_bytes=1e7,
            time_bins=np.arange(12),
        )
        assert large.size_bytes == 5e7
        assert small.detection_rate <= large.detection_rate


class TestFig6Series:
    def test_series_aligned(self, sprint1):
        series = fig6_series(sprint1, method="fourier", top_k=40)
        assert len(series.anomalies) == 40
        assert series.detected.shape == (40,)
        # identified implies detected.
        assert np.all(series.detected[series.identified])
        # estimates exist exactly where identified.
        assert np.array_equal(~np.isnan(series.estimated_sizes), series.identified)

    def test_knee_detected_above_knee_mostly_hit(self, sprint1):
        series = fig6_series(sprint1, method="fourier", top_k=40)
        sizes = np.array([a.size_bytes for a in series.anomalies])
        above = sizes >= 2e7
        assert series.detected[above].mean() > 0.8
        assert series.detected[~above].mean() < 0.3


class TestFig10:
    def test_series_lengths(self, sprint1):
        data = fig10_series(sprint1)
        for key in ("subspace", "fourier", "ewma"):
            assert data[key].shape == (1008,)
        assert data["threshold"] > 0

    def test_subspace_separates_best(self, sprint1):
        """The paper's Fig. 10 claim: a clean threshold exists for the
        subspace residual but not for the temporal baselines."""
        data = fig10_series(sprint1)
        anomaly_bins = np.array(
            sorted(
                e.time_bin
                for e in sprint1.true_events
                if abs(e.amplitude_bytes) >= 2e7
            )
        )
        subspace = separability(data["subspace"], anomaly_bins)
        fourier = separability(data["fourier"], anomaly_bins)
        ewma = separability(data["ewma"], anomaly_bins)
        assert (
            subspace["detection_at_zero_fa"] >= fourier["detection_at_zero_fa"]
        )
        assert subspace["fa_at_full_detection"] <= fourier["fa_at_full_detection"]
        assert subspace["fa_at_full_detection"] <= ewma["fa_at_full_detection"]
        # And in absolute terms the subspace method separates well.
        assert subspace["detection_at_zero_fa"] >= 0.6
        assert subspace["fa_at_full_detection"] <= 0.05


class TestSeparability:
    def test_perfect_separation(self):
        energy = np.array([1.0, 1.0, 10.0, 1.0])
        result = separability(energy, np.array([2]))
        assert result["detection_at_zero_fa"] == 1.0
        assert result["fa_at_full_detection"] == 0.0

    def test_no_separation(self):
        energy = np.array([10.0, 1.0, 5.0, 1.0])
        result = separability(energy, np.array([2]))
        assert result["detection_at_zero_fa"] == 0.0
        assert result["fa_at_full_detection"] > 0.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            separability(np.ones((2, 2)), np.array([0]))
        with pytest.raises(ValidationError):
            separability(np.ones(5), np.array([], dtype=int))
