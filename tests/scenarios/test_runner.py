"""ScenarioRunner end-to-end contracts and grid-engine wiring."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.pipeline import BatchRunner, ComparisonRunner, DetectionPipeline
from repro.scenarios import (
    CORE_SUITE,
    ScenarioRunner,
    compile_scenario,
    get_spec,
    streaming_matches_batch,
    suite_datasets,
)
from repro.scenarios.runner import SCHEMA_VERSION, canonical_json


class TestCoreOutcomes:
    def test_one_outcome_per_scenario(self, core_report):
        assert len(core_report) == len(CORE_SUITE)
        assert [o.name for o in core_report] == [s.name for s in CORE_SUITE]

    def test_exercises_at_least_six_families(self, core_report):
        assert len(core_report.families()) >= 6

    def test_streaming_parity_holds_everywhere(self, core_report):
        assert all(o.streaming_parity for o in core_report)

    def test_large_events_are_detected(self, core_report):
        """Every family built to be visible actually raises alarms."""
        for name in (
            "ddos-ramp-victim",
            "flash-crowd-rush",
            "ingress-outage-dark",
            "routing-shift-exodus",
            "multi-flow-overlap",
        ):
            outcome = core_report.outcome(name)
            assert outcome.num_detected_events >= 1, name

    def test_multi_flow_recovery_where_single_flow_fails(self, core_report):
        """The flash crowd defeats single-flow identification but the
        true member set wins the generalized §7.2 hypothesis contest."""
        outcome = core_report.outcome("flash-crowd-rush")
        event = outcome.events[0]
        assert event.detected
        assert event.multi_flow_identified

    def test_alarm_bins_fall_inside_trace(self, core_report):
        for outcome in core_report:
            for time_bin in outcome.anomalous_bins:
                assert 0 <= time_bin < outcome.num_bins
            assert len(outcome.identified_flows) == len(
                outcome.anomalous_bins
            )

    def test_outcome_lookup(self, core_report):
        assert core_report.outcome("spike-classic").topology == "toy"
        with pytest.raises(ValidationError, match="no outcome"):
            core_report.outcome("missing")

    def test_report_json_is_versioned_and_canonical(self, core_report):
        payload = core_report.to_json()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["suite"] == "core"
        assert len(payload["scenarios"]) == len(CORE_SUITE)
        # Canonicalization is idempotent and newline-terminated.
        text = canonical_json(payload)
        assert text.endswith("}\n")
        assert canonical_json(payload) == text

    def test_table_renders_every_scenario(self, core_report):
        table = core_report.table()
        for spec in CORE_SUITE:
            assert spec.name in table


class TestRunnerValidation:
    def test_confidence_range(self):
        with pytest.raises(ValidationError, match="confidence"):
            ScenarioRunner(confidence=1.5)

    def test_empty_specs(self):
        with pytest.raises(ValidationError, match="at least one"):
            ScenarioRunner().run(())

    def test_streaming_check_can_be_skipped(self):
        runner = ScenarioRunner(check_streaming=False)
        outcome = runner.run_spec(get_spec("spike-classic"))
        assert outcome.streaming_parity is True  # vacuous by contract


class TestGridEngineWiring:
    """Compiled scenarios are first-class datasets for the grid engines."""

    @pytest.fixture(scope="class")
    def scenario_datasets(self):
        names = ("spike-classic", "ingress-outage-dark")
        return [compile_scenario(get_spec(n)).dataset for n in names]

    def test_suite_datasets_compiles_the_whole_suite(self):
        datasets = suite_datasets("core")
        assert [d.name for d in datasets] == [s.name for s in CORE_SUITE]
        for dataset in datasets:
            assert dataset.true_events  # every scenario carries truth

    def test_batch_runner_accepts_scenario_datasets(self, scenario_datasets):
        report = BatchRunner(
            scenario_datasets, confidences=(0.995, 0.999)
        ).run()
        assert len(report) == 4
        baseline = report.baseline("spike-classic", 0.999)
        assert baseline.num_alarms >= 1

    def test_comparison_runner_accepts_scenario_datasets(
        self, scenario_datasets
    ):
        report = ComparisonRunner(
            scenario_datasets,
            detectors=("subspace", "ewma"),
            workers=1,
        ).run()
        assert set(report.datasets) == {
            "spike-classic",
            "ingress-outage-dark",
        }
        for cell in report:
            assert 0.0 <= cell.auc <= 1.0

    def test_serial_and_parallel_reports_are_identical(
        self, scenario_datasets
    ):
        kwargs = dict(
            datasets=scenario_datasets,
            detectors=("subspace", "ewma"),
            injection_sizes=(2.0e9,),
            num_injections=4,
        )
        serial = ComparisonRunner(workers=1, **kwargs).run()
        parallel = ComparisonRunner(workers=2, **kwargs).run()
        assert serial.to_json(include_timings=False) == parallel.to_json(
            include_timings=False
        )


class TestStreamingBatchParity:
    def test_parity_helper_on_clean_pipeline(self, compiled_core):
        compiled = compiled_core["spike-classic"]
        pipeline = DetectionPipeline(confidence=0.999).fit(
            compiled.dataset.link_traffic, routing=compiled.dataset.routing
        )
        assert streaming_matches_batch(
            pipeline, compiled.dataset.link_traffic
        )

    def test_parity_helper_detects_real_divergence(self, compiled_core):
        """A genuinely different model must not be excused as borderline."""
        compiled = compiled_core["spike-classic"]
        trace = compiled.dataset.link_traffic
        pipeline = DetectionPipeline(confidence=0.999).fit(
            trace, routing=compiled.dataset.routing
        )
        other = DetectionPipeline(confidence=0.5).fit(trace[: trace.shape[0] // 4])
        window = other.streaming().process_window(trace)
        detector = pipeline.detector
        spe = np.asarray(detector.spe(trace))
        batch_flags = spe > detector.threshold
        assert not np.array_equal(window.flags, batch_flags)
