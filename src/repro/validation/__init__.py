"""Validation harness (paper §6).

Two evaluation protocols:

1. **Actual anomalies** (§6.2) — extract "true" volume anomalies from the
   OD-flow timeseries with EWMA and Fourier analysis, then measure the
   subspace method's detection / false-alarm / identification /
   quantification performance against them (Table 2, Fig. 6).
2. **Synthetic injections** (§6.3) — inject spikes of controlled size
   into every OD flow at every timestep of a day and measure diagnosis
   success as a function of flow, time, and size (Table 3, Figs. 7-9).
"""

from repro.validation.ground_truth import (
    TrueAnomaly,
    extract_true_anomalies,
    find_knee,
)
from repro.validation.metrics import (
    DiagnosisScore,
    score_against_truth,
    match_diagnoses,
)
from repro.validation.injection import InjectionResult, InjectionStudy
from repro.validation.multiflow import MultiFlowResult, MultiFlowStudy
from repro.validation.roc import (
    RocCurve,
    detector_roc,
    operating_point,
    roc_curve,
)
from repro.validation.sensitivity import SensitivityPoint, sweep_workload_knob
from repro.validation.experiments import (
    ActualAnomalyRow,
    SyntheticRow,
    run_actual_anomaly_experiment,
    run_synthetic_experiment,
    fig6_series,
    fig10_series,
)
from repro.validation.reporting import (
    render_table2,
    render_table3,
    render_ranked_anomalies,
)

__all__ = [
    "TrueAnomaly",
    "extract_true_anomalies",
    "find_knee",
    "DiagnosisScore",
    "score_against_truth",
    "match_diagnoses",
    "InjectionStudy",
    "InjectionResult",
    "MultiFlowStudy",
    "MultiFlowResult",
    "RocCurve",
    "roc_curve",
    "operating_point",
    "detector_roc",
    "SensitivityPoint",
    "sweep_workload_knob",
    "ActualAnomalyRow",
    "SyntheticRow",
    "run_actual_anomaly_experiment",
    "run_synthetic_experiment",
    "fig6_series",
    "fig10_series",
    "render_table2",
    "render_table3",
    "render_ranked_anomalies",
]
