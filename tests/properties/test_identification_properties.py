"""Property-based tests for identification/quantification algebra."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PCA, SubspaceModel
from repro.core.identification import (
    identify_single_flow,
    identify_single_flow_naive,
)
from repro.core.quantification import quantify_from_magnitude
from repro.routing import SPFRouting, build_routing_matrix
from repro.topology.builders import ring_network


@st.composite
def fitted_world(draw):
    """A small ring world with a fitted rank-2 subspace model."""
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    network = ring_network(5)
    routing = build_routing_matrix(network, SPFRouting(network).compute())
    m = routing.num_links
    t = 60
    modes = rng.normal(size=(2, m))
    clock = np.arange(t)
    data = (
        np.outer(np.sin(2 * np.pi * clock / 20), modes[0] * 100)
        + np.outer(np.cos(2 * np.pi * clock / 15), modes[1] * 40)
        + rng.normal(0, 1.0, size=(t, m))
        + 1000.0
    )
    pca = PCA().fit(data)
    model = SubspaceModel.with_rank(pca, 2)
    return model, routing, data, rng


@settings(max_examples=30, deadline=None)
@given(fitted_world(), st.integers(0, 24), st.floats(1e3, 1e6))
def test_closed_form_equals_naive(world, flow_seed, size):
    """argmin over Eq. 1 == argmax of explained residual energy."""
    model, routing, data, rng = world
    flow = flow_seed % routing.num_flows
    theta = routing.normalized_columns()
    y = data[7] + size * routing.column(flow)
    fast = identify_single_flow(model, theta, y)
    naive = identify_single_flow_naive(model, theta, y)
    assert fast.flow_index == naive.flow_index
    assert fast.magnitude == pytest.approx(naive.magnitude, rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(fitted_world(), st.integers(0, 24), st.floats(1e4, 1e6))
def test_removing_identified_anomaly_never_increases_residual(world, flow_seed, size):
    model, routing, data, rng = world
    flow = flow_seed % routing.num_flows
    theta = routing.normalized_columns()
    y = data[3] + size * routing.column(flow)
    result = identify_single_flow(model, theta, y)
    assert result.residual_spe <= float(model.spe(y)) + 1e-6


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 24), st.floats(1e-3, 1e8), st.sampled_from([-1.0, 1.0]))
def test_quantification_linear_in_magnitude(flow_seed, size, sign):
    network = ring_network(5)
    routing = build_routing_matrix(network, SPFRouting(network).compute())
    flow = flow_seed % routing.num_flows
    magnitude = sign * size
    single = quantify_from_magnitude(routing, flow, magnitude)
    double = quantify_from_magnitude(routing, flow, 2 * magnitude)
    assert double == pytest.approx(2 * single, rel=1e-12)
    # Sign is preserved.
    assert np.sign(single) == np.sign(magnitude)
