"""Benchmark fixtures.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md §4).  Expensive artifacts are session-scoped; every benchmark
also writes its rendered output to ``results/`` so the artifacts survive
the run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.datasets import build_dataset

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def sprint1():
    return build_dataset("sprint-1")


@pytest.fixture(scope="session")
def sprint2():
    return build_dataset("sprint-2")


@pytest.fixture(scope="session")
def abilene_ds():
    return build_dataset("abilene")


@pytest.fixture(scope="session")
def all_datasets(sprint1, sprint2, abilene_ds):
    return [sprint1, sprint2, abilene_ds]


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered artifact and echo it to stdout."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")


def write_json_result(results_dir: Path, name: str, payload: dict) -> Path:
    """Persist a machine-readable ``BENCH_<name>.json`` artifact.

    Performance benchmarks emit these so speedups, wall-clock times and
    grid sizes stay diffable across PRs (the txt artifacts are for
    humans).
    """
    path = Path(results_dir) / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[{name}] wrote {path}")
    return path
