"""Tests for repro.measurement.netflow."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.measurement import FlowCollector, PeriodicSampler, RandomSampler


@pytest.fixture
def true_bytes(rng):
    # 20 bins x 5 flows, 1e6..1e8 bytes per cell.
    return rng.uniform(1e6, 1e8, size=(20, 5))


class TestEstimateMatrix:
    def test_shape(self, true_bytes):
        collector = FlowCollector(PeriodicSampler(250), seed=0)
        estimates = collector.estimate_matrix(true_bytes)
        assert estimates.shape == true_bytes.shape

    def test_periodic_estimates_close(self, true_bytes):
        """Periodic 1-in-250 on large flows: percent-level accuracy, as
        the paper's SNMP agreement check found (1-5%)."""
        collector = FlowCollector(PeriodicSampler(250), seed=0)
        estimates = collector.estimate_matrix(true_bytes)
        rel = np.abs(estimates - true_bytes) / true_bytes
        assert np.median(rel) < 0.05

    def test_random_estimates_unbiased(self, rng):
        collector = FlowCollector(RandomSampler(0.01), seed=1)
        truth = np.full((2000, 1), 5e7)
        estimates = collector.estimate_matrix(truth)
        assert estimates.mean() == pytest.approx(5e7, rel=0.01)

    def test_random_noisier_than_periodic_at_equal_rate(self, rng):
        # At the same sampling rate, random sampling adds binomial
        # count noise on top of the shared packet-size noise, so its
        # byte estimates spread wider than periodic sampling's.
        truth = np.full((2000, 1), 5e7)
        periodic = FlowCollector(PeriodicSampler(250), seed=2).estimate_matrix(truth)
        random = FlowCollector(RandomSampler(1 / 250), seed=3).estimate_matrix(truth)
        assert random.std() > 1.2 * periodic.std()

    def test_wrong_ndim_rejected(self):
        collector = FlowCollector(PeriodicSampler(250))
        with pytest.raises(MeasurementError):
            collector.estimate_matrix(np.ones(5))


class TestCollect:
    def test_records_cover_active_cells(self, true_bytes):
        od_pairs = [(f"o{j}", f"d{j}") for j in range(5)]
        collector = FlowCollector(PeriodicSampler(250), seed=0)
        batch = collector.collect(true_bytes, od_pairs)
        # Every cell has >= thousands of packets, so every cell yields
        # at least one sampled packet with period 250.
        assert len(batch) == true_bytes.size
        matrix = batch.to_matrix(od_pairs, num_bins=20)
        rel = np.abs(matrix - true_bytes) / true_bytes
        assert np.median(rel) < 0.05

    def test_idle_flows_emit_no_records(self):
        od_pairs = [("a", "b")]
        collector = FlowCollector(RandomSampler(0.01), seed=0)
        batch = collector.collect(np.zeros((5, 1)), od_pairs)
        assert len(batch) == 0

    def test_emit_zero_records_forces_records(self):
        od_pairs = [("a", "b")]
        collector = FlowCollector(RandomSampler(0.01), seed=0)
        batch = collector.collect(
            np.zeros((5, 1)), od_pairs, emit_zero_records=True
        )
        assert len(batch) == 5

    def test_od_pair_count_mismatch_rejected(self, true_bytes):
        collector = FlowCollector(PeriodicSampler(250))
        with pytest.raises(MeasurementError):
            collector.collect(true_bytes, [("a", "b")])

    def test_records_carry_sampling_rate(self, true_bytes):
        od_pairs = [(f"o{j}", f"d{j}") for j in range(5)]
        collector = FlowCollector(RandomSampler(0.01), seed=0)
        batch = collector.collect(true_bytes, od_pairs)
        assert all(r.sampling_rate == pytest.approx(0.01) for r in batch)
