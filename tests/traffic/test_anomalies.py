"""Tests for repro.traffic.anomalies."""

import numpy as np
import pytest

from repro.exceptions import TrafficError
from repro.traffic import (
    AnomalyEvent,
    AnomalyShape,
    TrafficMatrix,
    inject_anomalies,
    make_anomaly_events,
)


@pytest.fixture
def flat_traffic(toy_net):
    values = np.full((50, toy_net.num_od_pairs), 1000.0)
    return TrafficMatrix(values, toy_net.od_pairs)


class TestAnomalyEvent:
    def test_spike_deltas(self):
        event = AnomalyEvent(time_bin=3, flow_index=0, amplitude_bytes=500.0)
        assert np.array_equal(event.deltas(), [500.0])

    def test_square_deltas(self):
        event = AnomalyEvent(
            time_bin=3,
            flow_index=0,
            amplitude_bytes=500.0,
            shape=AnomalyShape.SQUARE,
            duration_bins=3,
        )
        assert np.array_equal(event.deltas(), [500.0] * 3)

    def test_ramp_deltas(self):
        event = AnomalyEvent(
            time_bin=3,
            flow_index=0,
            amplitude_bytes=900.0,
            shape=AnomalyShape.RAMP,
            duration_bins=3,
        )
        assert np.allclose(event.deltas(), [300.0, 600.0, 900.0])

    def test_last_bin(self):
        event = AnomalyEvent(0, 0, 1.0, AnomalyShape.SQUARE, duration_bins=4)
        assert event.last_bin == 3

    def test_validation(self):
        with pytest.raises(TrafficError):
            AnomalyEvent(-1, 0, 1.0)
        with pytest.raises(TrafficError):
            AnomalyEvent(0, -1, 1.0)
        with pytest.raises(TrafficError):
            AnomalyEvent(0, 0, 0.0)
        with pytest.raises(TrafficError):
            AnomalyEvent(0, 0, 1.0, AnomalyShape.SPIKE, duration_bins=2)


class TestInjectAnomalies:
    def test_positive_spike_adds_bytes(self, flat_traffic):
        event = AnomalyEvent(time_bin=10, flow_index=2, amplitude_bytes=5000.0)
        injected, effective = inject_anomalies(flat_traffic, [event])
        assert injected.values[10, 2] == pytest.approx(6000.0)
        assert effective == [event]

    def test_other_cells_untouched(self, flat_traffic):
        event = AnomalyEvent(time_bin=10, flow_index=2, amplitude_bytes=5000.0)
        injected, _ = inject_anomalies(flat_traffic, [event])
        mask = np.ones_like(flat_traffic.values, dtype=bool)
        mask[10, 2] = False
        assert np.array_equal(injected.values[mask], flat_traffic.values[mask])

    def test_negative_spike_clips_at_zero(self, flat_traffic):
        event = AnomalyEvent(time_bin=5, flow_index=1, amplitude_bytes=-5000.0)
        injected, effective = inject_anomalies(flat_traffic, [event])
        assert injected.values[5, 1] == 0.0
        # The effective amplitude records only what was actually removed.
        assert effective[0].amplitude_bytes == pytest.approx(-1000.0)

    def test_fully_clipped_event_dropped(self, toy_net):
        values = np.zeros((10, toy_net.num_od_pairs))
        traffic = TrafficMatrix(values, toy_net.od_pairs)
        event = AnomalyEvent(time_bin=5, flow_index=0, amplitude_bytes=-100.0)
        _, effective = inject_anomalies(traffic, [event])
        assert effective == []

    def test_square_injection(self, flat_traffic):
        event = AnomalyEvent(
            time_bin=10,
            flow_index=0,
            amplitude_bytes=100.0,
            shape=AnomalyShape.SQUARE,
            duration_bins=4,
        )
        injected, _ = inject_anomalies(flat_traffic, [event])
        assert np.allclose(injected.values[10:14, 0], 1100.0)

    def test_out_of_range_rejected(self, flat_traffic):
        with pytest.raises(TrafficError):
            inject_anomalies(
                flat_traffic, [AnomalyEvent(time_bin=99, flow_index=0, amplitude_bytes=1.0)]
            )
        with pytest.raises(TrafficError):
            inject_anomalies(
                flat_traffic, [AnomalyEvent(time_bin=0, flow_index=99, amplitude_bytes=1.0)]
            )

    def test_original_not_mutated(self, flat_traffic):
        event = AnomalyEvent(time_bin=10, flow_index=2, amplitude_bytes=5000.0)
        inject_anomalies(flat_traffic, [event])
        assert flat_traffic.values[10, 2] == pytest.approx(1000.0)


class TestMakeAnomalyEvents:
    def test_count_and_bounds(self):
        events = make_anomaly_events(
            20, num_bins=500, num_flows=50, size_range=(1e3, 1e5), seed=1
        )
        assert len(events) == 20
        for event in events:
            assert 6 <= event.time_bin < 494  # default margin
            assert 0 <= event.flow_index < 50
            assert 1e3 <= abs(event.amplitude_bytes) <= 1e5

    def test_deterministic_with_seed(self):
        a = make_anomaly_events(10, 500, 50, (1e3, 1e5), seed=42)
        b = make_anomaly_events(10, 500, 50, (1e3, 1e5), seed=42)
        assert a == b

    def test_minimum_separation(self):
        events = make_anomaly_events(
            30, 1000, 50, (1e3, 1e5), seed=2, min_separation_bins=5
        )
        bins = sorted(e.time_bin for e in events)
        assert all(b2 - b1 >= 5 for b1, b2 in zip(bins, bins[1:]))

    def test_negative_fraction(self):
        events = make_anomaly_events(
            200, 5000, 50, (1e3, 1e5), seed=3, negative_fraction=0.5,
            min_separation_bins=1, margin_bins=6,
        )
        negatives = sum(1 for e in events if e.amplitude_bytes < 0)
        assert 60 < negatives < 140

    def test_heavy_tail_produces_knee(self):
        events = make_anomaly_events(
            100, 5000, 50, (1e3, 1e6), seed=4, pareto_shape=1.5,
            min_separation_bins=1,
        )
        sizes = sorted((abs(e.amplitude_bytes) for e in events), reverse=True)
        # Pareto tail: the top decile carries most of the mass.
        assert sizes[0] / sizes[50] > 3.0

    def test_impossible_packing_raises(self):
        with pytest.raises(TrafficError, match="separation"):
            make_anomaly_events(
                100, num_bins=120, num_flows=5, size_range=(1.0, 2.0),
                seed=5, min_separation_bins=10,
            )

    def test_trace_too_short_rejected(self):
        with pytest.raises(TrafficError):
            make_anomaly_events(1, num_bins=10, num_flows=5, size_range=(1.0, 2.0))
