"""Synthetic anomaly injection study (§6.3).

The paper's most systematic experiment: insert a spike of a chosen size
into *every* OD flow at *every* timestep of a day, and record whether the
subspace method detects it, identifies the right flow, and estimates its
size.  Naively that is ``T × N`` full diagnosis runs; this module
vectorizes the whole sweep with the algebra below, and keeps a naive
per-cell implementation for cross-validation.

For an injection of ``b`` bytes into flow ``i`` at time ``t`` the link
vector becomes ``y + b·A_i``, so with ``R`` the residual matrix of the
unmodified trace:

* ``SPE′(t, i) = SPE(t) + 2b·(R Bᵀ)(t, i) + b²·‖B_i‖²`` with ``B = C̃A``;
* identification scores over candidates ``j``:
  ``(G(t, j) + b·M(j, i))² / d_j`` with ``G = R Θ``, ``M = Θᵀ C̃ A``,
  ``d_j = ‖C̃ θ_j‖²``;
* the winning candidate's magnitude
  ``f̂ = (G(t, ĵ) + b·M(ĵ, i)) / d_ĵ`` quantifies as
  ``f̂·‖A_ĵ‖ / ΣA_ĵ``.

The PCA model is fitted once on the unmodified week (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.detection import SPEDetector
from repro.core.identification import identify_single_flow
from repro.core.quantification import quantify
from repro.datasets.dataset import Dataset
from repro.exceptions import ValidationError

__all__ = ["InjectionStudy", "InjectionResult"]


@dataclass(frozen=True)
class InjectionResult:
    """Outcome of one injection sweep.

    Arrays are ``(num_times, num_flows)``; cell ``(t, i)`` describes the
    experiment that injected into flow ``i`` at time bin ``time_bins[t]``.

    Attributes
    ----------
    size_bytes:
        The injected spike size.
    time_bins, flow_indices:
        The sweep's axes.
    detected:
        Did SPE exceed the threshold after injection?
    identified:
        Was the injected flow the identification winner?  (Evaluated
        regardless of detection; mask with ``detected`` for the paper's
        conditional metric.)
    estimated_bytes:
        Quantification estimate for the *identified* flow.
    spe_after:
        The post-injection ``SPE′(t, i)`` grid the detections came from;
        kept so threshold sweeps (e.g. the pipeline ``BatchRunner``) can
        re-threshold without recomputing it.
    """

    size_bytes: float
    time_bins: np.ndarray
    flow_indices: np.ndarray
    detected: np.ndarray
    identified: np.ndarray
    estimated_bytes: np.ndarray
    spe_after: np.ndarray | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def detection_rate(self) -> float:
        """Overall fraction of injections detected."""
        return float(self.detected.mean()) if self.detected.size else 0.0

    @property
    def identification_rate(self) -> float:
        """Fraction of *detected* injections correctly identified."""
        detected = self.detected
        if not detected.any():
            return 0.0
        return float(self.identified[detected].mean())

    @property
    def mean_quantification_error(self) -> float:
        """Mean |estimate − size| / size over detected + identified cells."""
        mask = self.detected & self.identified
        if not mask.any():
            return float("nan")
        errors = (
            np.abs(np.abs(self.estimated_bytes[mask]) - self.size_bytes)
            / self.size_bytes
        )
        return float(errors.mean())

    def detection_rate_by_flow(self) -> np.ndarray:
        """Per-flow detection rate (over time) — paper Fig. 7 / Fig. 9."""
        return self.detected.mean(axis=0)

    def detection_rate_by_time(self) -> np.ndarray:
        """Per-timestep detection rate (over flows) — paper Fig. 8."""
        return self.detected.mean(axis=1)


class InjectionStudy:
    """Vectorized §6.3 injection experiments over one dataset.

    Parameters
    ----------
    dataset:
        The evaluation world; the detector is fitted on its (unmodified)
        link traffic.
    confidence:
        Q-statistic confidence level (paper: 0.999).
    normal_rank:
        Optional explicit subspace rank (ablations).
    detector:
        An already-fitted :class:`~repro.core.detection.SPEDetector` to
        reuse instead of fitting a fresh one (``confidence`` and
        ``normal_rank`` are then ignored).  Lets scenario drivers share
        one model between their baseline and injection passes.
    """

    def __init__(
        self,
        dataset: Dataset,
        confidence: float = 0.999,
        normal_rank: int | None = None,
        detector: SPEDetector | None = None,
    ) -> None:
        self.dataset = dataset
        if detector is None:
            detector = SPEDetector(
                confidence=confidence, normal_rank=normal_rank
            ).fit(dataset.link_traffic)
        self.detector = detector
        model = self.detector.model
        routing = dataset.routing

        self._a = routing.matrix  # (m, n)
        self._theta = routing.normalized_columns()  # (m, n)
        c_tilde = model.anomalous_projector
        self._b_mat = c_tilde @ self._a  # C̃ A
        self._theta_tilde_energy = np.einsum(
            "ij,ij->j", c_tilde @ self._theta, c_tilde @ self._theta
        )  # d_j = ‖C̃ θ_j‖²
        self._m_mat = self._theta.T @ self._b_mat  # M = Θᵀ C̃ A  (n, n)
        self._quant_ratio = routing.quantification_ratios()
        self._residuals = model.residual(dataset.link_traffic)  # (t, m)
        self._spe = np.einsum("ij,ij->i", self._residuals, self._residuals)

    # ------------------------------------------------------------------
    @property
    def threshold(self) -> float:
        """The fitted SPE limit."""
        return self.detector.threshold

    def spe_after(
        self, size_bytes: float, time_bins: np.ndarray, flow_indices: np.ndarray
    ) -> np.ndarray:
        """``SPE′(t, i)`` after injecting ``size_bytes`` into each cell.

        The closed form of the module docstring, vectorized over the
        whole ``times × flows`` grid.  Exposed so threshold sweeps (e.g.
        the pipeline :class:`~repro.pipeline.batch.BatchRunner`) can
        compare one grid against many limits without re-deriving it.
        """
        b = float(size_bytes)
        b_sel = self._b_mat[:, flow_indices]  # (m, n_sel)
        cross = self._residuals[time_bins] @ b_sel  # (T, n_sel)
        energy = np.einsum("ij,ij->j", b_sel, b_sel)  # (n_sel,)
        return self._spe[time_bins, None] + 2.0 * b * cross + b * b * energy

    def run(
        self,
        size_bytes: float,
        time_bins: np.ndarray | None = None,
        flow_indices: np.ndarray | None = None,
        chunk_bins: int = 24,
    ) -> InjectionResult:
        """Sweep injections of ``size_bytes`` over times × flows.

        Parameters
        ----------
        size_bytes:
            Spike magnitude (positive adds traffic; the paper injects
            positive spikes).
        time_bins:
            Bins to inject at; defaults to the first day (144 bins).
        flow_indices:
            Flows to inject into; defaults to all.
        chunk_bins:
            Time bins processed per vectorized block (memory knob: each
            block materializes a ``chunk × n × n`` score tensor).
        """
        if size_bytes == 0:
            raise ValidationError("size_bytes must be non-zero")
        if chunk_bins < 1:
            raise ValidationError(f"chunk_bins must be >= 1, got {chunk_bins}")
        t_total = self.dataset.num_bins
        if time_bins is None:
            time_bins = np.arange(min(144, t_total))
        time_bins = np.asarray(time_bins, dtype=np.int64)
        if time_bins.size == 0:
            raise ValidationError("time_bins is empty")
        if time_bins.min() < 0 or time_bins.max() >= t_total:
            raise ValidationError(
                f"time_bins outside trace of {t_total} bins"
            )
        if flow_indices is None:
            flow_indices = np.arange(self.dataset.num_flows)
        flow_indices = np.asarray(flow_indices, dtype=np.int64)
        if flow_indices.size == 0:
            raise ValidationError("flow_indices is empty")
        if flow_indices.min() < 0 or flow_indices.max() >= self.dataset.num_flows:
            raise ValidationError("flow_indices out of range")

        b = float(size_bytes)
        threshold = self.detector.threshold
        n_sel = flow_indices.size

        # Detection: SPE'(t, i) for the selected flows.
        spe_grid = self.spe_after(b, time_bins, flow_indices)
        detected = spe_grid > threshold

        # Identification + quantification, chunked over time.
        d = self._theta_tilde_energy  # (n,)
        valid = d > 1e-12
        g_all = self._residuals[time_bins] @ self._theta  # (T, n)
        m_sel = self._m_mat[:, flow_indices]  # (n, n_sel)

        identified = np.zeros((time_bins.size, n_sel), dtype=bool)
        estimated = np.full((time_bins.size, n_sel), np.nan)
        inv_d = np.where(valid, 1.0 / np.maximum(d, 1e-300), 0.0)
        for start in range(0, time_bins.size, chunk_bins):
            stop = min(start + chunk_bins, time_bins.size)
            g_chunk = g_all[start:stop]  # (c, n)
            # inner(t, i, j) = G(t, j) + b·M(j, i)
            inner = g_chunk[:, None, :] + b * m_sel.T[None, :, :]
            scores = inner**2 * inv_d[None, None, :]
            scores[:, :, ~valid] = -np.inf
            winners = np.argmax(scores, axis=2)  # (c, n_sel)
            identified[start:stop] = winners == flow_indices[None, :]
            take = np.take_along_axis(inner, winners[:, :, None], axis=2)[:, :, 0]
            f_hat = take * inv_d[winners]
            estimated[start:stop] = f_hat * self._quant_ratio[winners]

        return InjectionResult(
            size_bytes=b,
            time_bins=time_bins,
            flow_indices=flow_indices,
            detected=detected,
            identified=identified,
            estimated_bytes=estimated,
            spe_after=spe_grid,
        )

    # ------------------------------------------------------------------
    def run_naive_cell(
        self, size_bytes: float, time_bin: int, flow_index: int
    ) -> tuple[bool, bool, float]:
        """One injection via the full (slow) diagnosis path.

        Used by the test suite to cross-validate the vectorized sweep.
        Returns ``(detected, identified, estimated_bytes)``.
        """
        y = self.dataset.link_traffic[time_bin].copy()
        y = y + size_bytes * self._a[:, flow_index]
        model = self.detector.model
        spe = float(model.spe(y))
        detected = spe > self.detector.threshold
        identification = identify_single_flow(model, self._theta, y)
        identified = identification.flow_index == flow_index
        estimated = quantify(
            model, self.dataset.routing, y, identification
        )
        return detected, identified, estimated
